//! Policy showdown: compare the five replacement policies the CRAID I/O
//! monitor supports, first in isolation (hit/replacement ratios, as in the
//! paper's Tables 2-3) and then end to end inside a CRAID-5 array — the
//! end-to-end comparison declared as a `Campaign` and run in parallel.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example policy_showdown [workload]
//! ```
//!
//! where `workload` is one of `cello99`, `deasna`, `home02`, `webresearch`,
//! `webusers`, `wdev` (default) or `proj`.

use craid::{policy_quality, Campaign, CraidError, Scenario, StrategyKind};
use craid_cache::PolicyKind;
use craid_trace::{SyntheticWorkload, WorkloadId};

fn main() -> Result<(), CraidError> {
    let workload: WorkloadId = std::env::args()
        .nth(1)
        .map(|arg| arg.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or(WorkloadId::Wdev);
    let trace = SyntheticWorkload::paper_scaled_to(workload, 6_000).generate(11);
    println!(
        "workload {} — {} requests, footprint {} blocks\n",
        workload,
        trace.len(),
        trace.footprint_blocks()
    );

    println!("-- policy quality in isolation (cache = 5% of footprint, instant disks) --");
    println!("{:>10} {:>12} {:>16}", "policy", "hit ratio", "replacement");
    for policy in PolicyKind::paper_set() {
        let q = policy_quality(policy, &trace, 0.05);
        println!(
            "{:>10} {:>11.1}% {:>15.1}%",
            policy.to_string(),
            q.hit_ratio * 100.0,
            q.replacement_ratio * 100.0
        );
    }

    println!("\n-- end to end inside a CRAID-5 array (cache partition = 10% of footprint) --");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}",
        "policy", "read ms", "write ms", "hit ratio", "dirty evicts"
    );
    let policies = PolicyKind::paper_set();
    let scenarios = policies
        .iter()
        .map(|&policy| {
            Scenario::builder()
                .name(format!("showdown/{policy}"))
                .strategy(StrategyKind::Craid5)
                .workload(workload)
                .requests(6_000)
                .seed(11)
                .paper()
                .pc_fraction(0.1)
                .policy(policy)
                .build()
        })
        .collect();
    let outcomes = Campaign::new(scenarios).run()?;
    for (policy, outcome) in policies.iter().zip(&outcomes) {
        let report = &outcome.report;
        let craid = report.craid.expect("CRAID strategy reports cache stats");
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>11.1}% {:>14}",
            policy.to_string(),
            report.read.mean_ms,
            report.write.mean_ms,
            craid.hit_ratio * 100.0,
            craid.dirty_evictions
        );
    }
    println!();
    println!("The paper picks WLRU(0.5): hit ratios on par with ARC/LRU but fewer dirty");
    println!("evictions, i.e. fewer 4-I/O parity write-backs to the archive partition.");
    Ok(())
}
