//! Run an experiment declared in a TOML scenario file.
//!
//! Scenarios are plain data: the file names a strategy, a workload, an
//! array shape, and a timeline of scheduled events. This example loads
//! `examples/scenarios/upgrade_drill.toml` (or a path given as the first
//! argument), runs it, and prints the outcome.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scenario_file [path/to/scenario.toml] [--json | --check [--deny]]
//! ```
//!
//! With `--json` the full `SimulationReport` is printed as JSON (and
//! nothing else), which makes the output byte-diffable: CI runs the
//! online-upgrade drill twice and diffs the two reports to pin scheduler
//! determinism.
//!
//! With `--trace-out=PATH` the run executes under a deterministic tracer
//! and the captured virtual-time trace is written to `PATH` —
//! `--trace-format=chrome` (default; Perfetto / `chrome://tracing`
//! loadable) or `--trace-format=jsonl`. The report (plain or `--json`)
//! then carries an `obs` snapshot reconciling span counts against the
//! metrics registry. Tracing is record-only: the simulated results are
//! bit-identical to an untraced run.
//!
//! With `--check` nothing runs at all: the static analyser is applied to
//! the scenario and every diagnostic is printed (stable code, field
//! path, help). The exit status is non-zero when any error-severity
//! finding exists — or, with `--deny` (the CI mode), when any finding
//! exists at all.
//!
//! With `--explore[=scope]` the small-scope model checker runs instead:
//! the scenario is projected down to a bounded geometry, every scheduler
//! decision point is enumerated, and each branch is judged against the
//! invariant oracle library. A violation prints its diagnostics plus the
//! minimized decision path, writes a reproducer TOML next to the
//! scenario, and exits non-zero. `scope` is `quick`, `default`, `wide`,
//! or comma-separated overrides like `requests=32,events=3`.

use craid::{ExploreScope, Scenario, ScenarioOutcome};

const DEFAULT_SCENARIO: &str = include_str!("scenarios/upgrade_drill.toml");

/// Runs the scenario, installing a tracer and writing the exported trace
/// to `trace_out` when one was requested. Prints nothing either way, so
/// the `--json` output stays byte-diffable.
fn run_maybe_traced(
    scenario: &Scenario,
    trace_out: Option<&str>,
    format: craid_obs::TraceFormat,
) -> Result<ScenarioOutcome, Box<dyn std::error::Error>> {
    match trace_out {
        Some(path) => {
            let (outcome, trace) = scenario.run_traced(craid_obs::DEFAULT_CAPACITY, 1)?;
            std::fs::write(path, trace.export(format))?;
            Ok(outcome)
        }
        None => Ok(scenario.run()?),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (paths, flags): (Vec<String>, Vec<String>) =
        std::env::args().skip(1).partition(|a| !a.starts_with("--"));
    let json_only = flags.iter().any(|f| f == "--json");
    let check_only = flags.iter().any(|f| f == "--check");
    let deny_warnings = flags.iter().any(|f| f == "--deny");
    let explore_scope = flags
        .iter()
        .find_map(|f| match f.strip_prefix("--explore") {
            Some("") => Some(ExploreScope::parse("default")),
            Some(rest) => rest.strip_prefix('=').map(ExploreScope::parse),
            None => None,
        })
        .transpose()
        .map_err(|e| format!("bad --explore scope: {e}"))?;
    let trace_out = flags
        .iter()
        .find_map(|f| f.strip_prefix("--trace-out=").map(str::to_string));
    let trace_format: craid_obs::TraceFormat = flags
        .iter()
        .find_map(|f| f.strip_prefix("--trace-format="))
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --trace-format: {e}"))?
        .unwrap_or_default();
    let text = match paths.first() {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEFAULT_SCENARIO.to_string(),
    };
    let scenario = Scenario::from_toml(&text)?;
    if let Some(scope) = explore_scope {
        let exploration = scenario.explore(&scope);
        print!("{}", exploration.analysis);
        println!(
            "scenario '{}': explored {} run(s) ({} errored, {} pruned{})",
            scenario.name,
            exploration.runs,
            exploration.errored_runs,
            exploration.pruned,
            if exploration.truncated {
                ", truncated"
            } else {
                ""
            }
        );
        if let Some(counterexample) = &exploration.counterexample {
            println!(
                "counterexample ({}): path [{}]",
                counterexample.codes().join(", "),
                counterexample.path_string()
            );
            let reproducer = match paths.first() {
                Some(path) => std::path::Path::new(path).with_extension("counterexample.toml"),
                None => std::path::PathBuf::from("counterexample.toml"),
            };
            std::fs::write(&reproducer, counterexample.reproducer_toml()?)?;
            println!("reproducer written to {}", reproducer.display());
        }
        std::process::exit(if exploration.is_clean() { 0 } else { 1 });
    }
    if check_only {
        let analysis = scenario.analyze();
        print!("{analysis}");
        let errors = analysis.errors().count();
        let warnings = analysis.warnings().count();
        println!(
            "scenario '{}': {errors} error(s), {warnings} warning(s)",
            scenario.name
        );
        let failed = errors > 0 || (deny_warnings && warnings > 0);
        std::process::exit(if failed { 1 } else { 0 });
    }
    if json_only {
        let outcome = run_maybe_traced(&scenario, trace_out.as_deref(), trace_format)?;
        println!("{}", outcome.report.to_json());
        return Ok(());
    }
    println!(
        "scenario '{}': {} on {} ({} requests, seed {})",
        scenario.name,
        scenario.strategy,
        scenario.workload.id,
        scenario.workload.requests,
        scenario.workload.seed
    );
    println!("timeline:");
    for event in &scenario.events {
        println!("  t = {:>8.1}s  {}", event.at().as_secs(), event.describe());
    }

    let outcome = run_maybe_traced(&scenario, trace_out.as_deref(), trace_format)?;
    let report = &outcome.report;
    println!();
    println!("applied {} events:", outcome.applied_events.len());
    for applied in &outcome.applied_events {
        println!(
            "  t = {:>8.1}s  {}{}",
            applied.at.as_secs(),
            applied.description,
            if applied.during_replay {
                ""
            } else {
                "  (after the last request)"
            }
        );
    }
    for (i, upgrade) in outcome.expansions.iter().enumerate() {
        println!(
            "upgrade {}: +{} disks, migrated {} blocks, wrote back {}",
            i + 1,
            upgrade.added_disks,
            upgrade.migrated_blocks,
            upgrade.writeback_blocks
        );
    }
    if report.fault.any_faults() {
        println!(
            "faults: {} degraded reads ({} reconstruction I/Os), rebuilt {} blocks, MTTR {:.1}s",
            report.fault.degraded_reads,
            report.fault.reconstruction_ios,
            report.fault.rebuild_write_blocks,
            report.fault.mttr_secs()
        );
    }
    if report.migration.any_migrations() {
        println!(
            "online upgrade: {:.1}s window, {} blocks moved in the background \
             ({} superseded by client traffic, {} still pending at the end, \
             effective order {})",
            report.migration.migration_secs,
            report.migration.migrated_blocks,
            report.migration.superseded_blocks,
            report.migration.pending_blocks,
            report
                .migration
                .effective_priority
                .map(|p| p.name())
                .unwrap_or("n/a"),
        );
    }
    if report.migration.any_archive_restripes() {
        println!(
            "archive restripe: {:.1}s window, {} blocks reshaped \
             ({} superseded, {} still pending at the end)",
            report.migration.archive_restripe_secs,
            report.migration.archive_migrated_blocks,
            report.migration.archive_superseded_blocks,
            report.migration.archive_pending_blocks
        );
    }
    if report.qos.enabled {
        println!(
            "qos: {} decisions, {} throttle changes, {:.1}s in violation of the SLO, \
             {:.1}s at the floor / {:.1}s at full rate, effective maintenance \
             {:.0} blocks/s (final throttle {:.0}%)",
            report.qos.decisions,
            report.qos.throttle_changes,
            report.qos.slo_violation_secs,
            report.qos.time_at_floor_secs,
            report.qos.time_at_ceiling_secs,
            report.qos.effective_maintenance_rate,
            report.qos.final_scale * 100.0
        );
    }
    if report.background_drain_secs > 0.0 {
        println!(
            "end-of-trace drain: background work ran {:.1}s past the last request",
            report.background_drain_secs
        );
    }
    if let (Some(path), Some(obs)) = (trace_out.as_deref(), report.obs.as_ref()) {
        println!(
            "trace: {} events recorded ({} dropped) to {} ({trace_format})",
            obs.recorded, obs.dropped, path
        );
    }
    println!();
    println!(
        "read {:.2} ms / write {:.2} ms over {} requests; hit ratio {:.1}%",
        report.read.mean_ms,
        report.write.mean_ms,
        report.requests,
        report.craid.map(|c| c.hit_ratio * 100.0).unwrap_or(0.0)
    );
    println!();
    println!("The same scenario serializes back with `scenario.to_toml()`; edit the file,");
    println!("rerun, and the engine replays the identical workload against the new timeline.");
    Ok(())
}
