//! Online upgrades: grow an array from 10 to 50 disks mid-workload and
//! compare how much data each approach has to migrate.
//!
//! This is the scenario CRAID was designed for (paper §1/§3): a conventional
//! restripe moves (nearly) the whole dataset on every upgrade, while CRAID
//! only invalidates and refills its small cache partition.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_upgrade
//! ```

use craid::{ArrayConfig, Simulation, StrategyKind};
use craid_raid::{minimal_migration_blocks, ExpansionSchedule};
use craid_simkit::SimTime;
use craid_trace::{SyntheticWorkload, WorkloadId};

fn main() {
    let trace = SyntheticWorkload::paper_scaled_to(WorkloadId::Webusers, 5_000).generate(7);
    let footprint = trace.footprint_blocks();
    let schedule = ExpansionSchedule::paper();
    println!(
        "workload: {} ({} requests, {} block footprint)",
        trace.name(),
        trace.len(),
        footprint
    );
    println!("expansion schedule: {:?} disks", schedule.sizes());

    // A CRAID-5+ array that starts at 10 disks and is upgraded six times
    // while serving the workload.
    let mut config = ArrayConfig::paper(StrategyKind::Craid5Plus, footprint, footprint / 10);
    config.disks = 10;
    config.expansion_sets = vec![10];

    let span = trace.duration().as_secs();
    let expansions: Vec<(SimTime, usize)> = schedule
        .additions()
        .iter()
        .enumerate()
        .map(|(i, &added)| {
            let when = SimTime::from_secs(span * (i + 1) as f64 / (schedule.steps() + 1) as f64);
            (when, added)
        })
        .collect();

    let (report, upgrades) = Simulation::new(config).run_with_expansions(&trace, &expansions);

    println!();
    println!("per-upgrade migration (blocks):");
    println!("{:>10} {:>12} {:>12} {:>16} {:>14}", "step", "disks", "CRAID", "full restripe", "minimal");
    let mut craid_total = 0;
    for ((i, (old, new)), upgrade) in schedule.transitions().enumerate().zip(&upgrades) {
        let minimal = minimal_migration_blocks(footprint, old, new);
        craid_total += upgrade.migrated_blocks;
        println!(
            "{:>10} {:>12} {:>12} {:>16} {:>14}",
            i + 1,
            format!("{old}->{new}"),
            upgrade.migrated_blocks,
            footprint,
            minimal
        );
    }
    println!();
    println!(
        "CRAID moved {craid_total} blocks over the whole schedule; a round-robin restripe\n\
         would have moved ~{} blocks ({}x more), and even the theoretical minimum-migration\n\
         rebalance moves more than CRAID's cache partition.",
        footprint * schedule.steps() as u64,
        (footprint * schedule.steps() as u64) / craid_total.max(1)
    );
    println!();
    println!(
        "while upgrading, the array still served every request: mean write response {:.2} ms, \
         cache hit ratio {:.1}%",
        report.write.mean_ms,
        report.craid.map(|c| c.hit_ratio * 100.0).unwrap_or(0.0)
    );
}
