//! Online upgrades: grow an array from 10 to 50 disks mid-workload and
//! compare how much data each approach has to migrate.
//!
//! This is the scenario CRAID was designed for (paper §1/§3): a conventional
//! restripe moves (nearly) the whole dataset on every upgrade, while CRAID
//! only invalidates and refills its small cache partition. The upgrade
//! schedule is declared as a `Scenario` timeline of `Expand` events.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_upgrade
//! ```

use craid::{CraidError, Scenario, StrategyKind};
use craid_raid::{minimal_migration_blocks, ExpansionSchedule};
use craid_simkit::SimTime;
use craid_trace::WorkloadId;

fn main() -> Result<(), CraidError> {
    let schedule = ExpansionSchedule::paper();

    // A CRAID-5+ array that starts at 10 disks and is upgraded six times
    // while serving the workload, at evenly spaced times.
    let mut builder = Scenario::builder()
        .name("online-upgrade")
        .strategy(StrategyKind::Craid5Plus)
        .workload(WorkloadId::Webusers)
        .requests(5_000)
        .seed(7)
        .paper()
        .pc_fraction(0.1)
        .disks(10)
        .expansion_sets(vec![10]);

    // Spacing the upgrades needs the trace's duration, which is itself a
    // function of the declared workload.
    let span = builder.clone().build().trace().duration().as_secs();
    for (i, &added) in schedule.additions().iter().enumerate() {
        let when = SimTime::from_secs(span * (i + 1) as f64 / (schedule.steps() + 1) as f64);
        builder = builder.expand_at(when, added);
    }
    let scenario = builder.build();

    // Generate the workload once and reuse it for printing and the run.
    let trace = scenario.trace();
    let footprint = trace.footprint_blocks();
    println!(
        "workload: {} ({} requests, {} block footprint)",
        trace.name(),
        trace.len(),
        footprint
    );
    println!("expansion schedule: {:?} disks", schedule.sizes());

    let outcome = scenario.run_on(&trace, &mut craid::NullObserver)?;
    let report = &outcome.report;
    let upgrades = &outcome.expansions;

    println!();
    println!("per-upgrade migration (blocks):");
    println!(
        "{:>10} {:>12} {:>12} {:>16} {:>14}",
        "step", "disks", "CRAID", "full restripe", "minimal"
    );
    let mut craid_total = 0;
    for ((i, (old, new)), upgrade) in schedule.transitions().enumerate().zip(upgrades) {
        let minimal = minimal_migration_blocks(footprint, old, new);
        craid_total += upgrade.migrated_blocks;
        println!(
            "{:>10} {:>12} {:>12} {:>16} {:>14}",
            i + 1,
            format!("{old}->{new}"),
            upgrade.migrated_blocks,
            footprint,
            minimal
        );
    }
    println!();
    println!(
        "CRAID moved {craid_total} blocks over the whole schedule; a round-robin restripe\n\
         would have moved ~{} blocks ({}x more), and even the theoretical minimum-migration\n\
         rebalance moves more than CRAID's cache partition.",
        footprint * schedule.steps() as u64,
        (footprint * schedule.steps() as u64) / craid_total.max(1)
    );
    println!();
    println!(
        "while upgrading, the array still served every request: mean write response {:.2} ms, \
         cache hit ratio {:.1}%",
        report.write.mean_ms,
        report.craid.map(|c| c.hit_ratio * 100.0).unwrap_or(0.0)
    );
    Ok(())
}
