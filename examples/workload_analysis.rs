//! Workload analysis: reproduce the paper's §2 characterisation (Table 1 and
//! Figure 1) for any of the seven workloads.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example workload_analysis [workload]
//! ```

use craid_trace::{stats, SyntheticWorkload, WorkloadId, WorkloadSpec};

fn main() {
    let workload: WorkloadId = std::env::args()
        .nth(1)
        .map(|arg| arg.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or(WorkloadId::Deasna);
    let spec = WorkloadSpec::paper(workload);
    let trace = SyntheticWorkload::paper_scaled_to(workload, 10_000).generate(3);

    println!("== {} ==", workload);
    println!(
        "published (Table 1): {:.1} GB read / {:.1} GB written, R/W {:.2}, top-20% share {:.1}%",
        spec.read_gb,
        spec.write_gb,
        spec.rw_ratio(),
        spec.top20_share * 100.0
    );

    let summary = stats::summarize(&trace);
    println!(
        "synthetic (scaled):  {:.3} GB read / {:.3} GB written, R/W {:.2}, top-20% share {:.1}%, {} requests",
        summary.read_gb,
        summary.write_gb,
        summary.rw_ratio,
        summary.top20_access_share * 100.0,
        summary.requests
    );

    println!("\n-- block access frequency CDF (Fig. 1, top) --");
    let cdf = stats::frequency_cdf(&trace, None);
    for f in [1u64, 2, 5, 10, 25, 50, 100] {
        println!(
            "  {:5.1}% of blocks are accessed at most {f} times",
            cdf.fraction_at(f) * 100.0
        );
    }

    println!("\n-- day-over-day working-set overlap (Fig. 1, bottom) --");
    let overlap = stats::overlap_series(&trace, 7);
    for (day, (all, hot)) in overlap
        .overlap_all
        .iter()
        .zip(&overlap.overlap_top20)
        .enumerate()
    {
        println!(
            "  day {} -> {}: {:5.1}% of all blocks, {:5.1}% of the top-20% blocks",
            day + 1,
            day + 2,
            all * 100.0,
            hot * 100.0
        );
    }
    println!(
        "  mean: {:.1}% (all) / {:.1}% (top-20%)",
        overlap.mean_all() * 100.0,
        overlap.mean_top20() * 100.0
    );
    println!();
    println!("These two properties — skewed access frequency and a slowly drifting working");
    println!("set — are exactly what CRAID's cache partition exploits.");
}
