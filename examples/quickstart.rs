//! Quick start: declare a scenario — a CRAID-5 array serving a scaled-down
//! version of the MSR `wdev` workload — run it, and print the headline
//! measurements.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use craid::{CraidError, Scenario, StrategyKind};
use craid_trace::WorkloadId;

fn main() -> Result<(), CraidError> {
    // 1. Declare the experiment: the paper's 50-disk testbed, a cache
    //    partition at 10% of the workload footprint, and a synthetic week
    //    of the wdev test-server workload scaled down so this example runs
    //    in well under a second.
    let scenario = Scenario::builder()
        .name("quickstart")
        .strategy(StrategyKind::Craid5)
        .workload(WorkloadId::Wdev)
        .requests(5_000)
        .seed(42)
        .paper()
        .pc_fraction(0.1)
        .build();

    let trace = scenario.trace();
    println!(
        "workload: {} — {} requests over {:.0}s, footprint {} blocks",
        trace.name(),
        trace.len(),
        trace.duration().as_secs(),
        trace.footprint_blocks()
    );
    let config = scenario.array_config(&trace);
    println!(
        "array: {} disks, stripe unit {} blocks, cache partition {} blocks ({:.4}% of each disk)",
        config.disks,
        config.stripe_unit,
        config.pc_capacity_blocks,
        config.pc_percent_per_disk()
    );

    // 2. Run it. `Scenario::run` is fallible: configuration mistakes come
    //    back as a `CraidError` instead of a panic.
    let outcome = scenario.run_on(&trace, &mut craid::NullObserver)?;
    let report = &outcome.report;

    println!();
    println!(
        "read  response: mean {:.2} ms (p99 {:.2} ms) over {} requests",
        report.read.mean_ms, report.read.p99_ms, report.read.count
    );
    println!(
        "write response: mean {:.2} ms (p99 {:.2} ms) over {} requests",
        report.write.mean_ms, report.write.p99_ms, report.write.count
    );
    let craid = report
        .craid
        .expect("a CRAID strategy always reports cache statistics");
    println!(
        "cache partition: hit ratio {:.1}% (reads {:.1}%, writes {:.1}%), {} dirty evictions",
        craid.hit_ratio * 100.0,
        craid.read_hit_ratio * 100.0,
        craid.write_hit_ratio * 100.0,
        craid.dirty_evictions
    );
    println!(
        "load balance: mean per-second cv {:.3}, sequential accesses {:.1}%",
        report.load_balance.mean_cv,
        report.sequential_fraction * 100.0
    );
    println!();
    println!("Scenarios are plain data: `scenario.to_toml()` prints this experiment as a");
    println!("version-controllable file (see examples/scenario_file.rs), and Campaign::sweep");
    println!("runs whole {{strategy x workload x partition}} matrices in parallel.");
    println!("For the paper's full evaluation, run the bench targets in crates/bench");
    println!("(e.g. `cargo bench -p craid-bench --bench figure4_read_response`).");
    Ok(())
}
