//! Quick start: simulate a CRAID-5 array serving a scaled-down version of
//! the MSR `wdev` workload and print the headline measurements.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use craid::{ArrayConfig, Simulation, StrategyKind};
use craid_trace::{SyntheticWorkload, WorkloadId};

fn main() {
    // 1. Generate a synthetic week of the wdev test-server workload, heavily
    //    scaled down so this example runs in well under a second.
    let workload = SyntheticWorkload::paper_scaled_to(WorkloadId::Wdev, 5_000);
    let trace = workload.generate(42);
    println!(
        "workload: {} — {} requests over {:.0}s, footprint {} blocks",
        trace.name(),
        trace.len(),
        trace.duration().as_secs(),
        trace.footprint_blocks()
    );

    // 2. Describe the array: the paper's 50-disk testbed with a cache
    //    partition sized at 10% of the workload footprint.
    let pc_blocks = trace.footprint_blocks() / 10;
    let config = ArrayConfig::paper(StrategyKind::Craid5, trace.footprint_blocks(), pc_blocks);
    println!(
        "array: {} disks, stripe unit {} blocks, cache partition {} blocks ({:.4}% of each disk)",
        config.disks,
        config.stripe_unit,
        config.pc_capacity_blocks,
        config.pc_percent_per_disk()
    );

    // 3. Replay the workload and look at what CRAID did.
    let report = Simulation::new(config).run(&trace);
    println!();
    println!("read  response: mean {:.2} ms (p99 {:.2} ms) over {} requests", report.read.mean_ms, report.read.p99_ms, report.read.count);
    println!("write response: mean {:.2} ms (p99 {:.2} ms) over {} requests", report.write.mean_ms, report.write.p99_ms, report.write.count);
    let craid = report.craid.expect("a CRAID strategy always reports cache statistics");
    println!(
        "cache partition: hit ratio {:.1}% (reads {:.1}%, writes {:.1}%), {} dirty evictions",
        craid.hit_ratio * 100.0,
        craid.read_hit_ratio * 100.0,
        craid.write_hit_ratio * 100.0,
        craid.dirty_evictions
    );
    println!(
        "load balance: mean per-second cv {:.3}, sequential accesses {:.1}%",
        report.load_balance.mean_cv,
        report.sequential_fraction * 100.0
    );
    println!();
    println!("For the paper's full evaluation, run the bench targets in crates/bench");
    println!("(e.g. `cargo bench -p craid-bench --bench figure4_read_response`).");
}
