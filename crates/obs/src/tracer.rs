//! The virtual-time tracer: bounded ring-buffer storage plus the
//! thread-local installation hooks subsystems emit through.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use craid_simkit::{SimDuration, SimTime};

use crate::registry::MetricsRegistry;

/// Default ring-buffer capacity (events). Big enough to hold every event a
/// shipped drill emits; a long campaign overflowing it drops the *oldest*
/// events (flight-recorder semantics) and counts them in
/// [`Trace::dropped`].
pub const DEFAULT_CAPACITY: usize = 262_144;

/// The lane a trace event belongs to. Exporters map each category to its
/// own track so Perfetto renders one swim-lane per subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanCategory {
    /// Client request lifecycle: one complete span per replayed trace
    /// record, lasting the request's worst device latency.
    Request,
    /// Background maintenance tasks: one complete span per finished
    /// rebuild / expansion migration / archive restripe, spanning the
    /// task's service window.
    Background,
    /// QoS throttle transitions (the notable retargets the controller
    /// reports).
    Throttle,
    /// Deferred expansion activations leaving the activation queue.
    Activation,
    /// Cache-partition admissions and evictions decided by the I/O
    /// monitor.
    Cache,
}

impl SpanCategory {
    /// Every category, in rendering order.
    pub const ALL: [SpanCategory; 5] = [
        SpanCategory::Request,
        SpanCategory::Background,
        SpanCategory::Throttle,
        SpanCategory::Activation,
        SpanCategory::Cache,
    ];

    /// The stable serialized name.
    pub fn name(self) -> &'static str {
        match self {
            SpanCategory::Request => "request",
            SpanCategory::Background => "background",
            SpanCategory::Throttle => "throttle",
            SpanCategory::Activation => "activation",
            SpanCategory::Cache => "cache",
        }
    }

    fn index(self) -> usize {
        match self {
            SpanCategory::Request => 0,
            SpanCategory::Background => 1,
            SpanCategory::Throttle => 2,
            SpanCategory::Activation => 3,
            SpanCategory::Cache => 4,
        }
    }
}

impl std::fmt::Display for SpanCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One argument value attached to a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// An unsigned counter-ish value (block numbers, task ids, ...).
    U64(u64),
    /// A float (throttle scales, window seconds, ...).
    F64(f64),
    /// A static label (task kinds, decision names, ...).
    Str(&'static str),
    /// A flag (dirty bits, ...).
    Bool(bool),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// One trace event: a complete span (`dur` present) or an instant, stamped
/// with the simulation clock.
///
/// ```
/// use craid_obs::{SpanCategory, TraceEvent};
/// use craid_simkit::{SimDuration, SimTime};
///
/// let span = TraceEvent::span(
///     SpanCategory::Request,
///     "read",
///     SimTime::from_millis(10.0),
///     SimDuration::from_millis(2.5),
/// )
/// .arg("blocks", 8u64);
/// assert_eq!(span.category, SpanCategory::Request);
/// assert_eq!(span.dur.unwrap().as_millis(), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Start instant (simulated).
    pub at: SimTime,
    /// Span length; `None` marks an instant event.
    pub dur: Option<SimDuration>,
    /// The lane this event belongs to.
    pub category: SpanCategory,
    /// Short stable event name (`"read"`, `"rebuild"`, ...).
    pub name: &'static str,
    /// Auxiliary key/value payload, in insertion order.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// A complete span starting at `at` and lasting `dur`.
    pub fn span(category: SpanCategory, name: &'static str, at: SimTime, dur: SimDuration) -> Self {
        TraceEvent {
            at,
            dur: Some(dur),
            category,
            name,
            args: Vec::new(),
        }
    }

    /// An instant event at `at`.
    pub fn instant(category: SpanCategory, name: &'static str, at: SimTime) -> Self {
        TraceEvent {
            at,
            dur: None,
            category,
            name,
            args: Vec::new(),
        }
    }

    /// Attaches one argument (builder style).
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }
}

/// The bounded virtual-time event recorder.
///
/// Normally installed thread-locally via [`with_tracer`] so emission sites
/// stay free functions, but usable standalone:
///
/// ```
/// use craid_obs::{SpanCategory, Tracer, TraceEvent};
/// use craid_simkit::SimTime;
///
/// let mut tracer = Tracer::with_capacity(2);
/// for i in 0..3 {
///     tracer.record(TraceEvent::instant(
///         SpanCategory::Cache,
///         "admit",
///         SimTime::from_millis(i as f64),
///     ));
/// }
/// let trace = tracer.finish();
/// assert_eq!(trace.events.len(), 2, "the ring keeps the newest events");
/// assert_eq!(trace.dropped, 1);
/// assert_eq!(trace.emitted(SpanCategory::Cache), 3, "counts include drops");
/// ```
#[derive(Debug, Default)]
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    /// Total events emitted per category, *including* ones the ring later
    /// dropped — these are the counts reports reconcile against.
    emitted: [u64; SpanCategory::ALL.len()],
    registry: MetricsRegistry,
}

impl Tracer {
    /// A tracer with the [`DEFAULT_CAPACITY`] ring.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A tracer whose ring holds at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "the trace ring needs room for at least one event"
        );
        Tracer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            emitted: [0; SpanCategory::ALL.len()],
            registry: MetricsRegistry::new(),
        }
    }

    /// Records one event, evicting the oldest when the ring is full.
    pub fn record(&mut self, event: TraceEvent) {
        self.emitted[event.category.index()] += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The metrics registry riding along with this tracer.
    pub fn registry(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Consumes the tracer into its finished [`Trace`].
    pub fn finish(self) -> Trace {
        Trace {
            events: self.events.into(),
            dropped: self.dropped,
            emitted: self.emitted,
            registry: self.registry,
        }
    }
}

/// A finished recording: the retained events plus the emission ledger and
/// the metrics registry that accumulated alongside.
#[derive(Debug, Default)]
pub struct Trace {
    /// The retained events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Events the ring evicted (emission exceeded capacity).
    pub dropped: u64,
    emitted: [u64; SpanCategory::ALL.len()],
    registry: MetricsRegistry,
}

impl Trace {
    /// Total events emitted in `category`, including any the ring dropped.
    pub fn emitted(&self, category: SpanCategory) -> u64 {
        self.emitted[category.index()]
    }

    /// Total events emitted across all categories, including drops.
    pub fn total_emitted(&self) -> u64 {
        self.emitted.iter().sum()
    }

    /// Number of distinct categories that saw at least one event.
    pub fn categories_seen(&self) -> usize {
        self.emitted.iter().filter(|&&n| n > 0).count()
    }

    /// The metrics registry that accumulated during the recording.
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Snapshots the whole recording (emission ledger + metrics) into the
    /// serializable [`ObsSnapshot`](crate::ObsSnapshot) reports embed.
    pub fn snapshot(&mut self) -> crate::ObsSnapshot {
        let mut spans = std::collections::BTreeMap::new();
        for category in SpanCategory::ALL {
            let n = self.emitted(category);
            if n > 0 {
                spans.insert(category.name().to_string(), n);
            }
        }
        crate::ObsSnapshot {
            events: self.total_emitted(),
            recorded: self.events.len() as u64,
            dropped: self.dropped,
            spans,
            metrics: self.registry.snapshot(),
        }
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Tracer>> = const { RefCell::new(None) };
    static INSTALLED: Cell<bool> = const { Cell::new(false) };
    /// The ambient simulation clock (nanos), advanced by the replay loop so
    /// emission sites deep in subsystems (the I/O monitor has no time
    /// parameter) can stamp events without signature changes.
    static NOW: Cell<u64> = const { Cell::new(0) };
}

/// True while a tracer is installed on this thread. Emission sites use it
/// to skip building events (and observers' span hooks) on the untraced
/// path, which therefore costs one thread-local flag test.
pub fn active() -> bool {
    INSTALLED.get()
}

/// Advances the ambient simulation clock emission sites stamp events with.
/// A no-op unless a tracer is installed.
pub fn set_now(now: SimTime) {
    if INSTALLED.get() {
        NOW.set(now.as_nanos());
    }
}

/// Emits one event into the installed tracer, building it lazily — with no
/// tracer installed the closure never runs. The closure receives the
/// ambient clock ([`set_now`]) for sites without a time parameter.
pub fn emit(build: impl FnOnce(SimTime) -> TraceEvent) {
    if !INSTALLED.get() {
        return;
    }
    let now = SimTime::from_nanos(NOW.get());
    ACTIVE.with(|slot| {
        if let Some(tracer) = slot.borrow_mut().as_mut() {
            tracer.record(build(now));
        }
    });
}

/// Adds `delta` to the named counter in the installed tracer's registry.
/// A no-op with no tracer installed.
pub fn counter_add(name: &'static str, delta: u64) {
    if !INSTALLED.get() {
        return;
    }
    ACTIVE.with(|slot| {
        if let Some(tracer) = slot.borrow_mut().as_mut() {
            tracer.registry().counter_add(name, delta);
        }
    });
}

/// Sets the named gauge in the installed tracer's registry. A no-op with
/// no tracer installed.
pub fn gauge_set(name: &'static str, value: f64) {
    if !INSTALLED.get() {
        return;
    }
    ACTIVE.with(|slot| {
        if let Some(tracer) = slot.borrow_mut().as_mut() {
            tracer.registry().gauge_set(name, value);
        }
    });
}

/// Records one histogram sample in the installed tracer's registry. A
/// no-op with no tracer installed.
pub fn histogram_record(name: &'static str, sample: f64) {
    if !INSTALLED.get() {
        return;
    }
    ACTIVE.with(|slot| {
        if let Some(tracer) = slot.borrow_mut().as_mut() {
            tracer.registry().histogram_record(name, sample);
        }
    });
}

/// Clears the installed tracer even when the traced body panics, so the
/// thread outlives a failing run without leaking a tracer into the next.
struct InstallGuard;

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ACTIVE.with(|slot| *slot.borrow_mut() = None);
        INSTALLED.set(false);
        NOW.set(0);
    }
}

/// Runs `body` with `tracer` installed as this thread's recorder, then
/// returns the body's result alongside the finished [`Trace`].
///
/// ```
/// use craid_obs::{SpanCategory, Tracer, TraceEvent};
/// use craid_simkit::SimTime;
///
/// let (sum, trace) = craid_obs::with_tracer(Tracer::new(), || {
///     craid_obs::set_now(SimTime::from_millis(5.0));
///     craid_obs::emit(|now| TraceEvent::instant(SpanCategory::Throttle, "backoff", now));
///     craid_obs::counter_add("qos.retargets", 1);
///     2 + 2
/// });
/// assert_eq!(sum, 4);
/// assert_eq!(trace.events.len(), 1);
/// assert_eq!(trace.events[0].at, SimTime::from_millis(5.0));
/// ```
///
/// # Panics
///
/// Panics if a tracer is already installed on this thread (nested traced
/// runs are not supported).
pub fn with_tracer<R>(tracer: Tracer, body: impl FnOnce() -> R) -> (R, Trace) {
    assert!(
        !INSTALLED.get(),
        "a tracer is already installed on this thread"
    );
    ACTIVE.with(|slot| *slot.borrow_mut() = Some(tracer));
    INSTALLED.set(true);
    let guard = InstallGuard;
    let result = body();
    let tracer = ACTIVE.with(|slot| slot.borrow_mut().take());
    drop(guard);
    let trace = tracer
        .expect("the installed tracer survives the traced body")
        .finish();
    (result, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_thread_emits_nothing() {
        assert!(!active());
        emit(|_| unreachable!("no tracer installed"));
        counter_add("x", 1);
        gauge_set("y", 1.0);
        histogram_record("z", 1.0);
        set_now(SimTime::from_secs(1.0));
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut tracer = Tracer::with_capacity(3);
        for i in 0..5u64 {
            tracer.record(
                TraceEvent::instant(SpanCategory::Cache, "admit", SimTime::from_nanos(i))
                    .arg("block", i),
            );
        }
        let trace = tracer.finish();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.dropped, 2);
        assert_eq!(trace.emitted(SpanCategory::Cache), 5);
        assert_eq!(trace.total_emitted(), 5);
        assert_eq!(trace.categories_seen(), 1);
        let first: Vec<u64> = trace.events.iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(first, vec![2, 3, 4], "the oldest events were evicted");
    }

    #[test]
    fn install_cycle_collects_events_and_metrics() {
        let (value, mut trace) = with_tracer(Tracer::new(), || {
            assert!(active());
            set_now(SimTime::from_millis(1.0));
            emit(|now| {
                TraceEvent::span(
                    SpanCategory::Request,
                    "read",
                    now,
                    SimDuration::from_millis(2.0),
                )
            });
            counter_add("requests", 2);
            gauge_set("throttle.scale", 0.5);
            histogram_record("latency_ms", 2.0);
            7
        });
        assert!(!active());
        assert_eq!(value, 7);
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].at, SimTime::from_millis(1.0));
        let snapshot = trace.snapshot();
        assert_eq!(snapshot.events, 1);
        assert_eq!(snapshot.recorded, 1);
        assert_eq!(snapshot.dropped, 0);
        assert_eq!(snapshot.spans.get("request"), Some(&1));
        assert_eq!(snapshot.metrics.counters.get("requests"), Some(&2));
    }

    #[test]
    fn panicking_body_uninstalls_the_tracer() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_tracer(Tracer::new(), || panic!("traced body blew up"));
        }));
        assert!(result.is_err());
        assert!(!active(), "a panicking body must not leak the tracer");
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn nested_installs_are_rejected() {
        with_tracer(Tracer::new(), || {
            with_tracer(Tracer::new(), || ());
        });
    }

    #[test]
    #[should_panic(expected = "room for at least one event")]
    fn zero_capacity_is_rejected() {
        Tracer::with_capacity(0);
    }
}
