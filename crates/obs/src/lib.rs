//! Deterministic observability for the CRAID simulator.
//!
//! Everything in this crate is stamped with the *simulation clock*
//! ([`SimTime`](craid_simkit::SimTime)), never the host clock, so a traced
//! run is as reproducible as an untraced one: replaying the same scenario
//! twice produces byte-identical trace files. The one deliberate exception
//! is the [`profile`] module — wall-clock stage timers for the replay loop
//! itself — which is isolated in its own file and grandfathered in the
//! workspace determinism lint.
//!
//! The crate has four pieces:
//!
//! * [`Tracer`] — a bounded ring buffer of virtual-time [`TraceEvent`]s
//!   (spans and instants across the [`SpanCategory`] lanes), installed
//!   thread-locally via [`with_tracer`] so subsystems emit through the
//!   free functions ([`emit`], [`set_now`]) without threading a handle
//!   everywhere. With no tracer installed every hook is a single
//!   thread-local flag test and builds nothing.
//! * exporters ([`Trace::to_chrome_json`], [`Trace::to_jsonl`]) — the
//!   Chrome trace-event format (loadable in Perfetto / `chrome://tracing`)
//!   and a compact JSONL stream.
//! * [`MetricsRegistry`] — named counters / gauges / histograms (the
//!   histograms reuse [`craid_metrics::Quantiles`]) that snapshot
//!   deterministically (sorted by name) into an [`ObsSnapshot`].
//! * [`profile`] — the wall-clock per-stage timers behind
//!   `replay_throughput`'s stage breakdown.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
pub mod profile;
mod registry;
mod tracer;

pub use export::TraceFormat;
pub use registry::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot, ObsSnapshot};
pub use tracer::{
    active, counter_add, emit, gauge_set, histogram_record, set_now, with_tracer, ArgValue,
    SpanCategory, Trace, TraceEvent, Tracer, DEFAULT_CAPACITY,
};
