//! The unified metrics registry: named counters, gauges, and histograms
//! with deterministic (name-sorted) snapshots.

use std::collections::BTreeMap;

use craid_metrics::Quantiles;
use serde::{Deserialize, Serialize};

/// Counters, gauges, and histograms subsystems register into by name.
///
/// Names are `&'static str` so the hot path never allocates for a lookup;
/// snapshots convert them to owned strings sorted by `BTreeMap` order, so
/// two runs that record the same values snapshot to identical bytes
/// regardless of registration order.
///
/// ```
/// use craid_obs::MetricsRegistry;
///
/// let mut registry = MetricsRegistry::new();
/// registry.counter_add("cache.admissions", 3);
/// registry.gauge_set("throttle.scale", 0.25);
/// registry.histogram_record("latency_ms", 4.0);
/// registry.histogram_record("latency_ms", 8.0);
///
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.counters["cache.admissions"], 3);
/// assert_eq!(snapshot.histograms["latency_ms"].count, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Quantiles>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (registering it at zero first).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// The named counter's current value (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Records one sample into the named histogram.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is not finite (the [`Quantiles`] contract).
    pub fn histogram_record(&mut self, name: &'static str, sample: f64) {
        self.histograms.entry(name).or_default().record(sample);
    }

    /// Snapshots every registered metric, sorted by name. Histograms are
    /// summarized (count / min / p50 / p95 / p99 / max) rather than dumped
    /// sample-by-sample.
    pub fn snapshot(&mut self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .iter_mut()
                .map(|(&k, q)| (k.to_string(), HistogramSnapshot::of(q)))
                .collect(),
        }
    }
}

/// A summarized histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl HistogramSnapshot {
    fn of(quantiles: &mut Quantiles) -> Self {
        HistogramSnapshot {
            count: quantiles.count() as u64,
            min: quantiles.min().unwrap_or(0.0),
            p50: quantiles.quantile(0.5).unwrap_or(0.0),
            p95: quantiles.quantile(0.95).unwrap_or(0.0),
            p99: quantiles.quantile(0.99).unwrap_or(0.0),
            max: quantiles.max().unwrap_or(0.0),
        }
    }
}

/// The registry's serializable snapshot: every metric sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The whole observability snapshot a traced run embeds into its
/// `SimulationReport`: the tracer's emission ledger plus the metrics
/// snapshot. The CI observability job reconciles `spans` against the
/// exported trace file's event counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Total events emitted, including any the ring dropped.
    pub events: u64,
    /// Events retained in the ring at the end of the run.
    pub recorded: u64,
    /// Events the ring evicted.
    pub dropped: u64,
    /// Emitted events per span category (categories with zero events are
    /// omitted).
    pub spans: BTreeMap<String, u64>,
    /// The metrics registry snapshot.
    pub metrics: MetricsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_sorted_and_registration_order_free() {
        let mut a = MetricsRegistry::new();
        a.counter_add("zeta", 1);
        a.counter_add("alpha", 2);
        a.histogram_record("lat", 5.0);
        a.histogram_record("lat", 1.0);
        a.gauge_set("g", 0.5);

        let mut b = MetricsRegistry::new();
        b.gauge_set("g", 0.5);
        b.histogram_record("lat", 1.0);
        b.histogram_record("lat", 5.0);
        b.counter_add("alpha", 2);
        b.counter_add("zeta", 1);

        let sa = a.snapshot();
        let sb = b.snapshot();
        assert_eq!(sa, sb);
        assert_eq!(
            serde_json::to_string(&sa).unwrap(),
            serde_json::to_string(&sb).unwrap(),
            "snapshots of the same values must serialize identically"
        );
        assert_eq!(
            sa.counters.keys().collect::<Vec<_>>(),
            vec!["alpha", "zeta"]
        );
    }

    #[test]
    fn histogram_summary_reports_quantiles() {
        let mut registry = MetricsRegistry::new();
        for i in 1..=100 {
            registry.histogram_record("lat", i as f64);
        }
        let snap = registry.snapshot();
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.p50, 50.0);
        assert_eq!(h.p95, 95.0);
        assert_eq!(h.p99, 99.0);
        assert_eq!(h.max, 100.0);
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut registry = MetricsRegistry::new();
        assert_eq!(registry.counter("missing"), 0);
        registry.counter_add("hits", 1);
        registry.counter_add("hits", 4);
        assert_eq!(registry.counter("hits"), 5);
    }

    #[test]
    fn skip_serializing_if_omits_the_key_entirely() {
        // The report embeds `obs: Option<ObsSnapshot>` behind
        // `skip_serializing_if = "Option::is_none"`; byte-identity of
        // tracing-off reports depends on the None key vanishing (not
        // serializing as null).
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Wrapper {
            kept: u64,
            #[serde(skip_serializing_if = "Option::is_none")]
            obs: Option<ObsSnapshot>,
        }

        let off = Wrapper { kept: 7, obs: None };
        let json = serde_json::to_string(&off).unwrap();
        assert!(!json.contains("obs"), "None field must be omitted: {json}");
        let back: Wrapper = serde_json::from_str(&json).unwrap();
        assert_eq!(back, off);

        let on = Wrapper {
            kept: 7,
            obs: Some(ObsSnapshot::default()),
        };
        let json = serde_json::to_string(&on).unwrap();
        assert!(
            json.contains("\"obs\""),
            "Some field must serialize: {json}"
        );
        let back: Wrapper = serde_json::from_str(&json).unwrap();
        assert_eq!(back, on);
    }

    #[test]
    fn obs_snapshot_round_trips_through_json() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("requests", 9);
        let snapshot = ObsSnapshot {
            events: 12,
            recorded: 10,
            dropped: 2,
            spans: [("request".to_string(), 9u64)].into_iter().collect(),
            metrics: registry.snapshot(),
        };
        let json = serde_json::to_string_pretty(&snapshot).unwrap();
        let back: ObsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);
    }
}
