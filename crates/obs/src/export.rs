//! Trace exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`)
//! and compact JSONL.
//!
//! Both formats are rendered through the workspace serde shim's
//! shortest-round-trip float printing, so a trace exports to identical
//! bytes on every run of the same scenario.

use serde::Value;

use crate::tracer::{ArgValue, SpanCategory, Trace, TraceEvent};

/// The serialized trace formats `scenario_file --trace-format` accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// Chrome trace-event JSON, loadable in Perfetto and `chrome://tracing`.
    #[default]
    Chrome,
    /// One compact JSON object per line.
    Jsonl,
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "chrome" => Ok(TraceFormat::Chrome),
            "jsonl" => Ok(TraceFormat::Jsonl),
            other => Err(format!(
                "unknown trace format '{other}' (expected chrome or jsonl)"
            )),
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceFormat::Chrome => "chrome",
            TraceFormat::Jsonl => "jsonl",
        })
    }
}

fn arg_value(value: &ArgValue) -> Value {
    match *value {
        ArgValue::U64(v) => Value::UInt(v),
        ArgValue::F64(v) => Value::Float(v),
        ArgValue::Str(v) => Value::Str(v.to_string()),
        ArgValue::Bool(v) => Value::Bool(v),
    }
}

fn args_map(event: &TraceEvent) -> Value {
    Value::Map(
        event
            .args
            .iter()
            .map(|(k, v)| (k.to_string(), arg_value(v)))
            .collect(),
    )
}

/// One Chrome trace-event object. Complete spans use phase `"X"`
/// (`ts` + `dur` in microseconds); instants use phase `"i"` with
/// thread scope. Each category renders as its own track (`tid`).
fn chrome_event(event: &TraceEvent) -> Value {
    let mut entries = vec![
        ("name".to_string(), Value::Str(event.name.to_string())),
        (
            "cat".to_string(),
            Value::Str(event.category.name().to_string()),
        ),
    ];
    match event.dur {
        Some(dur) => {
            entries.push(("ph".to_string(), Value::Str("X".to_string())));
            entries.push(("ts".to_string(), Value::Float(event.at.as_micros())));
            entries.push(("dur".to_string(), Value::Float(dur.as_micros())));
        }
        None => {
            entries.push(("ph".to_string(), Value::Str("i".to_string())));
            entries.push(("ts".to_string(), Value::Float(event.at.as_micros())));
            entries.push(("s".to_string(), Value::Str("t".to_string())));
        }
    }
    entries.push(("pid".to_string(), Value::UInt(1)));
    entries.push((
        "tid".to_string(),
        Value::UInt(track_id(event.category) as u64),
    ));
    entries.push(("args".to_string(), args_map(event)));
    Value::Map(entries)
}

/// The per-category track id (1-based, in [`SpanCategory::ALL`] order).
fn track_id(category: SpanCategory) -> usize {
    1 + SpanCategory::ALL
        .iter()
        .position(|&c| c == category)
        .expect("every category is listed in ALL")
}

/// Thread-name metadata so Perfetto labels each track with its category.
fn track_metadata() -> Vec<Value> {
    SpanCategory::ALL
        .iter()
        .map(|&category| {
            Value::Map(vec![
                ("name".to_string(), Value::Str("thread_name".to_string())),
                ("ph".to_string(), Value::Str("M".to_string())),
                ("pid".to_string(), Value::UInt(1)),
                ("tid".to_string(), Value::UInt(track_id(category) as u64)),
                (
                    "args".to_string(),
                    Value::Map(vec![(
                        "name".to_string(),
                        Value::Str(category.name().to_string()),
                    )]),
                ),
            ])
        })
        .collect()
}

impl Trace {
    /// Renders the trace as Chrome trace-event JSON: a `traceEvents` array
    /// of `"X"` (complete span) and `"i"` (instant) events plus one
    /// `thread_name` metadata record per category, timestamps in simulated
    /// microseconds. Loadable in Perfetto and `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut events = track_metadata();
        events.extend(self.events.iter().map(chrome_event));
        let root = Value::Map(vec![
            ("traceEvents".to_string(), Value::Seq(events)),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
            ("droppedEvents".to_string(), Value::UInt(self.dropped)),
        ]);
        serde_json::to_string_pretty(&root).expect("value-model serialization cannot fail")
    }

    /// Renders the trace as compact JSONL: one event object per line with
    /// nanosecond-precision virtual timestamps (`at_ns`, span `dur_ns`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let mut entries = vec![
                ("at_ns".to_string(), Value::UInt(event.at.as_nanos())),
                (
                    "cat".to_string(),
                    Value::Str(event.category.name().to_string()),
                ),
                ("name".to_string(), Value::Str(event.name.to_string())),
            ];
            if let Some(dur) = event.dur {
                entries.push(("dur_ns".to_string(), Value::UInt(dur.as_nanos())));
            }
            if !event.args.is_empty() {
                entries.push(("args".to_string(), args_map(event)));
            }
            let line = serde_json::to_string(&Value::Map(entries))
                .expect("value-model serialization cannot fail");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Renders the trace in `format` — [`Trace::to_chrome_json`] or
    /// [`Trace::to_jsonl`].
    pub fn export(&self, format: TraceFormat) -> String {
        match format {
            TraceFormat::Chrome => self.to_chrome_json(),
            TraceFormat::Jsonl => self.to_jsonl(),
        }
    }
}

#[cfg(test)]
mod tests {
    use craid_simkit::{SimDuration, SimTime};
    use serde::Value;

    use super::*;
    use crate::tracer::Tracer;

    fn sample_trace() -> Trace {
        let mut tracer = Tracer::new();
        tracer.record(
            TraceEvent::span(
                SpanCategory::Request,
                "read",
                SimTime::from_millis(1.0),
                SimDuration::from_millis(2.5),
            )
            .arg("blocks", 8u64)
            .arg("hit", true),
        );
        tracer.record(
            TraceEvent::instant(SpanCategory::Throttle, "backoff", SimTime::from_millis(3.0))
                .arg("scale", 0.5),
        );
        tracer.finish()
    }

    #[test]
    fn format_parses_and_rejects() {
        assert_eq!(
            "chrome".parse::<TraceFormat>().unwrap(),
            TraceFormat::Chrome
        );
        assert_eq!("JSONL".parse::<TraceFormat>().unwrap(), TraceFormat::Jsonl);
        assert!("svg".parse::<TraceFormat>().is_err());
    }

    #[test]
    fn chrome_export_parses_and_carries_both_phases() {
        let json = sample_trace().to_chrome_json();
        let value = serde_json::parse_value(&json).unwrap();
        let events = value
            .get("traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents array");
        // 5 thread-name metadata records + the 2 events.
        assert_eq!(events.len(), SpanCategory::ALL.len() + 2);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(phases.iter().filter(|&&p| p == "M").count(), 5);
        assert!(phases.contains(&"X"), "complete span present");
        assert!(phases.contains(&"i"), "instant present");
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("ts"), Some(&Value::Float(1_000.0)));
        assert_eq!(span.get("dur"), Some(&Value::Float(2_500.0)));
        assert_eq!(span.get("cat").and_then(Value::as_str), Some("request"));
    }

    #[test]
    fn chrome_export_is_deterministic() {
        assert_eq!(
            sample_trace().to_chrome_json(),
            sample_trace().to_chrome_json()
        );
    }

    #[test]
    fn jsonl_export_is_one_parseable_object_per_line() {
        let jsonl = sample_trace().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = serde_json::parse_value(lines[0]).unwrap();
        assert_eq!(first.get("at_ns"), Some(&Value::Int(1_000_000)));
        assert_eq!(first.get("dur_ns"), Some(&Value::Int(2_500_000)));
        let second = serde_json::parse_value(lines[1]).unwrap();
        assert_eq!(second.get("cat").and_then(Value::as_str), Some("throttle"));
        assert!(second.get("dur_ns").is_none(), "instants carry no duration");
    }
}
