//! Wall-clock profiling hooks for the replay loop.
//!
//! **This module is the one deliberate wall-clock island in the
//! observability layer** (grandfathered under the `wall-clock` rule in
//! `crates/xtask/lint.allow`): it measures where *host* time goes inside
//! the replay loop — mapping, redirect/submit, background pump, metrics
//! fold — so `replay_throughput` can publish a per-stage breakdown next to
//! its events/sec headline. Nothing here ever feeds back into simulated
//! behaviour: stage timings are collected on the side and read out after a
//! run, so enabling the profiler cannot change a report byte.
//!
//! The hooks follow the same thread-local install pattern as the tracer:
//! disabled (the default) they cost one thread-local flag test per stage
//! entry, and the replay loop never touches `std::time` itself.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// The replay-loop stages the profiler distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Logical-to-physical mapping (`ArrayMapper::map_into`).
    Mapping,
    /// Request submission through the redirector and device models.
    Redirect,
    /// Background-engine pumping (poll, batches, completions).
    Pump,
    /// Per-request metrics / QoS / observer folding.
    MetricsFold,
}

impl Stage {
    /// Every stage, in replay-loop order.
    pub const ALL: [Stage; 4] = [
        Stage::Mapping,
        Stage::Redirect,
        Stage::Pump,
        Stage::MetricsFold,
    ];

    /// The stable serialized name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Mapping => "mapping",
            Stage::Redirect => "redirect",
            Stage::Pump => "pump",
            Stage::MetricsFold => "metrics_fold",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Mapping => 0,
            Stage::Redirect => 1,
            Stage::Pump => 2,
            Stage::MetricsFold => 3,
        }
    }
}

/// One stage's accumulated wall time over a profiled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSample {
    /// The stage name (see [`Stage::name`]).
    pub stage: String,
    /// Wall-clock seconds spent inside the stage.
    pub secs: f64,
    /// Times the stage was entered.
    pub hits: u64,
}

#[derive(Clone, Copy, Default)]
struct StageAccum {
    nanos: u128,
    hits: u64,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static STAGES: RefCell<[StageAccum; 4]> = const { RefCell::new([StageAccum { nanos: 0, hits: 0 }; 4]) };
}

/// Enables stage timing on this thread (and resets any prior accumulation).
pub fn enable() {
    STAGES.with(|stages| *stages.borrow_mut() = Default::default());
    ENABLED.set(true);
}

/// True while stage timing is enabled on this thread.
pub fn enabled() -> bool {
    ENABLED.get()
}

/// Disables stage timing and returns the per-stage breakdown accumulated
/// since [`enable`], in [`Stage::ALL`] order.
pub fn take() -> Vec<StageSample> {
    ENABLED.set(false);
    STAGES.with(|stages| {
        let snapshot = std::mem::take(&mut *stages.borrow_mut());
        Stage::ALL
            .iter()
            .map(|&stage| {
                let accum = snapshot[stage.index()];
                StageSample {
                    stage: stage.name().to_string(),
                    secs: accum.nanos as f64 / 1e9,
                    hits: accum.hits,
                }
            })
            .collect()
    })
}

/// Times one stage entry: keep the guard alive for the duration of the
/// stage. Returns a no-op guard (one flag test, no clock read) while the
/// profiler is disabled.
///
/// ```
/// use craid_obs::profile::{self, Stage};
///
/// profile::enable();
/// {
///     let _guard = profile::timer(Stage::Mapping);
///     // ... stage body ...
/// }
/// let breakdown = profile::take();
/// assert_eq!(breakdown[0].stage, "mapping");
/// assert_eq!(breakdown[0].hits, 1);
/// ```
pub fn timer(stage: Stage) -> StageGuard {
    StageGuard {
        stage,
        started: ENABLED.get().then(Instant::now),
    }
}

/// The RAII guard [`timer`] returns; dropping it credits the elapsed wall
/// time to its stage.
pub struct StageGuard {
    stage: Stage,
    started: Option<Instant>,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        let Some(started) = self.started else {
            return;
        };
        let elapsed = started.elapsed().as_nanos();
        STAGES.with(|stages| {
            let accum = &mut stages.borrow_mut()[self.stage.index()];
            accum.nanos += elapsed;
            accum.hits += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timers_accumulate_nothing() {
        assert!(!enabled());
        drop(timer(Stage::Pump));
        let breakdown = take();
        assert_eq!(breakdown.len(), 4);
        assert!(breakdown.iter().all(|s| s.hits == 0));
    }

    #[test]
    fn enabled_timers_count_hits_and_time() {
        enable();
        assert!(enabled());
        for _ in 0..3 {
            let _guard = timer(Stage::Mapping);
        }
        {
            let _guard = timer(Stage::MetricsFold);
            std::hint::black_box(0u64);
        }
        let breakdown = take();
        assert!(!enabled(), "take() disables the profiler");
        let mapping = &breakdown[Stage::Mapping.index()];
        assert_eq!(mapping.stage, "mapping");
        assert_eq!(mapping.hits, 3);
        let fold = &breakdown[Stage::MetricsFold.index()];
        assert_eq!(fold.hits, 1);
        assert!(fold.secs >= 0.0);
        // A second take() starts from a clean slate.
        enable();
        let breakdown = take();
        assert!(breakdown.iter().all(|s| s.hits == 0));
    }
}
