//! Load-balance metrics: the coefficient of variation of per-disk I/O load.
//!
//! §5.3 of the paper: "For each second of simulation we measure the I/O load
//! in MB received by each disk and we compute the coefficient of variation as
//! a metric to evaluate the uniformity of its distribution." The smaller the
//! cv, the closer the array is to an ideal uniform distribution.

use serde::{Deserialize, Serialize};

use craid_simkit::SimTime;

use crate::quantiles::Quantiles;

/// Coefficient of variation (`σ/µ`, population standard deviation) of a set
/// of per-device loads, expressed as a fraction (not a percentage).
///
/// Returns 0 when the mean is 0 (an idle second is perfectly balanced).
///
/// # Panics
///
/// Panics if `loads` is empty.
pub fn coefficient_of_variation(loads: &[f64]) -> f64 {
    assert!(
        !loads.is_empty(),
        "cannot compute cv of an empty load vector"
    );
    let n = loads.len() as f64;
    let mean = loads.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = loads.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Accumulates per-device bytes second by second and produces the
/// distribution of per-second cv values (the curves of the paper's Fig. 7
/// and the best/worst summary of its Table 6).
///
/// Feed events in non-decreasing time order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadBalanceTracker {
    devices: usize,
    current_second: u64,
    current_loads: Vec<f64>,
    any_traffic_this_second: bool,
    cv_samples: Quantiles,
    /// Total bytes per device over the whole run (for end-of-run imbalance).
    totals: Vec<f64>,
}

impl LoadBalanceTracker {
    /// Creates a tracker for an array of `devices` devices.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn new(devices: usize) -> Self {
        assert!(devices > 0, "need at least one device");
        LoadBalanceTracker {
            devices,
            current_second: 0,
            current_loads: vec![0.0; devices],
            any_traffic_this_second: false,
            cv_samples: Quantiles::new(),
            totals: vec![0.0; devices],
        }
    }

    /// Number of devices being tracked.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Records `bytes` of traffic hitting `device` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range or time goes backwards across
    /// seconds.
    pub fn record(&mut self, at: SimTime, device: usize, bytes: u64) {
        assert!(device < self.devices, "device {device} out of range");
        let second = at.second_bucket();
        assert!(
            second >= self.current_second,
            "events must be fed in time order (second {second} after {})",
            self.current_second
        );
        if second != self.current_second {
            self.roll_over();
            self.current_second = second;
        }
        self.current_loads[device] += bytes as f64;
        self.totals[device] += bytes as f64;
        self.any_traffic_this_second = true;
    }

    fn roll_over(&mut self) {
        if self.any_traffic_this_second {
            self.cv_samples
                .record(coefficient_of_variation(&self.current_loads));
        }
        self.current_loads.iter_mut().for_each(|l| *l = 0.0);
        self.any_traffic_this_second = false;
    }

    /// Flushes the current second and returns the collected per-second cv
    /// samples. Call once at the end of a run.
    pub fn finish(mut self) -> Quantiles {
        self.roll_over();
        self.cv_samples
    }

    /// Per-device byte totals over the whole run.
    pub fn device_totals(&self) -> &[f64] {
        &self.totals
    }

    /// cv of the whole-run per-device totals (a single-number imbalance
    /// summary, coarser than the per-second distribution).
    pub fn overall_cv(&self) -> f64 {
        coefficient_of_variation(&self.totals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_loads_have_zero_cv() {
        assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0, 5.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn known_cv_value() {
        // loads 2 and 4: mean 3, population sd 1, cv = 1/3.
        let cv = coefficient_of_variation(&[2.0, 4.0]);
        assert!((cv - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_loads_have_higher_cv_than_balanced() {
        let balanced = coefficient_of_variation(&[10.0, 11.0, 9.0, 10.0]);
        let skewed = coefficient_of_variation(&[40.0, 0.0, 0.0, 0.0]);
        assert!(skewed > balanced);
        assert!((skewed - 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty load vector")]
    fn empty_loads_rejected() {
        coefficient_of_variation(&[]);
    }

    #[test]
    fn tracker_produces_one_sample_per_active_second() {
        let mut t = LoadBalanceTracker::new(4);
        // Second 0: perfectly balanced.
        for d in 0..4 {
            t.record(SimTime::from_secs(0.1), d, 100);
        }
        // Second 1: all load on one device.
        t.record(SimTime::from_secs(1.5), 0, 400);
        // Second 2: idle (no events) — must not produce a sample.
        // Second 3: balanced again.
        for d in 0..4 {
            t.record(SimTime::from_secs(3.2), d, 50);
        }
        let mut samples = t.finish();
        assert_eq!(samples.count(), 3);
        assert_eq!(samples.quantile(0.0), Some(0.0));
        assert!((samples.quantile(1.0).unwrap() - 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn tracker_overall_totals() {
        let mut t = LoadBalanceTracker::new(2);
        t.record(SimTime::ZERO, 0, 100);
        t.record(SimTime::from_secs(2.0), 1, 300);
        assert_eq!(t.device_totals(), &[100.0, 300.0]);
        assert!(t.overall_cv() > 0.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn tracker_rejects_time_travel() {
        let mut t = LoadBalanceTracker::new(2);
        t.record(SimTime::from_secs(5.0), 0, 1);
        t.record(SimTime::from_secs(1.0), 0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tracker_rejects_unknown_device() {
        let mut t = LoadBalanceTracker::new(2);
        t.record(SimTime::ZERO, 2, 1);
    }

    proptest! {
        /// cv is scale-invariant: multiplying every load by a positive
        /// constant does not change it.
        #[test]
        fn prop_cv_scale_invariant(loads in proptest::collection::vec(0.0f64..1e4, 2..32),
                                   scale in 0.01f64..100.0) {
            let base = coefficient_of_variation(&loads);
            let scaled: Vec<f64> = loads.iter().map(|&l| l * scale).collect();
            let after = coefficient_of_variation(&scaled);
            prop_assert!((base - after).abs() < 1e-9);
        }

        /// cv is non-negative and zero only for uniform vectors.
        #[test]
        fn prop_cv_nonnegative(loads in proptest::collection::vec(0.0f64..1e4, 2..32)) {
            let cv = coefficient_of_variation(&loads);
            prop_assert!(cv >= 0.0);
            let uniform = loads.iter().all(|&l| (l - loads[0]).abs() < f64::EPSILON);
            if !uniform && loads.iter().sum::<f64>() > 0.0 {
                prop_assert!(cv > 0.0);
            }
        }
    }
}
