//! Sequential-access tracking.
//!
//! The paper's Fig. 5 plots the CDF of the *sequential access percentage*,
//! "computed as #SeqAccess/#Accesses and aggregated per second of
//! simulation". An access counts as sequential when it starts exactly where
//! the previous access to the same device ended — the condition under which
//! a disk pays neither seek nor rotational latency.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use craid_simkit::SimTime;

use crate::quantiles::Quantiles;

/// Tracks per-second sequentiality percentages across an array of devices.
///
/// Feed device-level accesses in non-decreasing time order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SequentialityTracker {
    /// Last physical block end per device.
    last_end: BTreeMap<usize, u64>,
    current_second: u64,
    accesses_this_second: u64,
    sequential_this_second: u64,
    samples: Quantiles,
    total_accesses: u64,
    total_sequential: u64,
}

impl SequentialityTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a device access of `blocks` blocks starting at `start_block`
    /// on `device` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if time goes backwards across seconds or `blocks` is zero.
    pub fn record(&mut self, at: SimTime, device: usize, start_block: u64, blocks: u64) {
        assert!(blocks > 0, "an access must cover at least one block");
        let second = at.second_bucket();
        assert!(
            second >= self.current_second,
            "events must be fed in time order (second {second} after {})",
            self.current_second
        );
        if second != self.current_second {
            self.roll_over();
            self.current_second = second;
        }
        let sequential = self.last_end.get(&device) == Some(&start_block);
        self.accesses_this_second += 1;
        self.total_accesses += 1;
        if sequential {
            self.sequential_this_second += 1;
            self.total_sequential += 1;
        }
        self.last_end.insert(device, start_block + blocks);
    }

    fn roll_over(&mut self) {
        if self.accesses_this_second > 0 {
            let pct = 100.0 * self.sequential_this_second as f64 / self.accesses_this_second as f64;
            self.samples.record(pct);
        }
        self.accesses_this_second = 0;
        self.sequential_this_second = 0;
    }

    /// Overall fraction of sequential accesses over the whole run, in
    /// `[0, 1]`.
    pub fn overall_sequential_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.total_sequential as f64 / self.total_accesses as f64
        }
    }

    /// Total number of device accesses recorded.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Flushes the current second and returns the per-second sequentiality
    /// percentage samples (0–100), ready to be turned into Fig. 5's CDF.
    pub fn finish(mut self) -> Quantiles {
        self.roll_over();
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purely_sequential_stream_scores_high() {
        let mut t = SequentialityTracker::new();
        for i in 0..100u64 {
            t.record(SimTime::from_millis(i as f64), 0, i * 8, 8);
        }
        // Only the first access is non-sequential.
        assert!((t.overall_sequential_fraction() - 0.99).abs() < 1e-9);
        let mut samples = t.finish();
        assert_eq!(samples.count(), 1);
        assert!(samples.quantile(1.0).unwrap() > 98.0);
    }

    #[test]
    fn random_stream_scores_low() {
        let mut t = SequentialityTracker::new();
        for i in 0..100u64 {
            t.record(
                SimTime::from_millis(i as f64),
                0,
                (i * 104_729) % 100_000,
                8,
            );
        }
        assert!(t.overall_sequential_fraction() < 0.05);
    }

    #[test]
    fn sequentiality_is_tracked_per_device() {
        let mut t = SequentialityTracker::new();
        // Interleaved streams that are each sequential on their own device.
        for i in 0..50u64 {
            t.record(SimTime::from_millis(i as f64 * 2.0), 0, i * 4, 4);
            t.record(
                SimTime::from_millis(i as f64 * 2.0 + 1.0),
                1,
                1_000 + i * 4,
                4,
            );
        }
        // All but the first access on each device are sequential.
        assert!((t.overall_sequential_fraction() - 98.0 / 100.0).abs() < 1e-9);
    }

    #[test]
    fn per_second_samples_only_for_active_seconds() {
        let mut t = SequentialityTracker::new();
        t.record(SimTime::from_secs(0.0), 0, 0, 4);
        t.record(SimTime::from_secs(0.5), 0, 4, 4);
        // seconds 1-4 idle
        t.record(SimTime::from_secs(5.0), 0, 8, 4);
        let samples = t.finish();
        assert_eq!(samples.count(), 2);
    }

    #[test]
    fn gaps_break_sequential_runs() {
        let mut t = SequentialityTracker::new();
        t.record(SimTime::ZERO, 0, 0, 4);
        t.record(SimTime::ZERO, 0, 8, 4); // skipped blocks 4..8 → not sequential
        t.record(SimTime::ZERO, 0, 12, 4); // continues from 12 → sequential
        assert!((t.overall_sequential_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn time_must_not_go_backwards() {
        let mut t = SequentialityTracker::new();
        t.record(SimTime::from_secs(3.0), 0, 0, 1);
        t.record(SimTime::from_secs(1.0), 0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_length_access_rejected() {
        SequentialityTracker::new().record(SimTime::ZERO, 0, 0, 0);
    }
}
