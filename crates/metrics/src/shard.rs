//! Shardable device-event metrics with a deterministic merge.
//!
//! The sharded replay engine partitions device-level I/O events across
//! worker threads (per parity group) and feeds each worker's subset through
//! a [`ShardAccumulator`] — a decomposed view of the three sequential
//! trackers ([`LoadBalanceTracker`], [`SequentialityTracker`],
//! [`ConcurrencyTracker`]). [`merge_shards`] then reassembles the exact
//! per-second aggregates the sequential trackers would have produced, so a
//! sharded replay reports **bit-for-bit** the same numbers as a
//! single-threaded one.
//!
//! Why the merge is exact, not merely close:
//!
//! * Per-second and whole-run byte loads are accumulated per device, and a
//!   device belongs to exactly one shard — so each per-device f64 sum is
//!   performed by one shard in the same order as the sequential tracker
//!   would, yielding the identical bit pattern. The merge only *places*
//!   those sums into the dense per-device vector and computes
//!   [`coefficient_of_variation`] over the same index order.
//! * Per-second access/sequential counts and distinct-device counts are
//!   integers; integer sums are order-independent.
//! * Queue-depth and per-second samples feed [`Quantiles`], whose every
//!   query sorts first and therefore depends only on the sample multiset.
//!
//! [`LoadBalanceTracker`]: crate::cv::LoadBalanceTracker
//! [`SequentialityTracker`]: crate::sequentiality::SequentialityTracker
//! [`ConcurrencyTracker`]: crate::concurrency::ConcurrencyTracker

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::thread::JoinHandle;

use craid_simkit::SimTime;

use crate::cv::coefficient_of_variation;
use crate::quantiles::Quantiles;

/// One device-level I/O observation, the unit routed to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEvent {
    /// Submission time of the device I/O.
    pub at: SimTime,
    /// Device index the I/O targets.
    pub device: usize,
    /// First physical block of the access.
    pub start_block: u64,
    /// Length of the access in blocks (must be non-zero).
    pub blocks: u64,
    /// Queue depth found on arrival.
    pub queue_depth: u64,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// Per-second aggregate flushed by a shard when the clock rolls over.
#[derive(Debug, Clone)]
struct ShardSecond {
    second: u64,
    /// `(device, bytes-as-f64)` loads for this shard's devices, device order.
    loads: Vec<(usize, f64)>,
    accesses: u64,
    sequential: u64,
    /// Distinct devices of this shard active this second.
    active_devices: u64,
}

/// Everything one shard observed, ready for [`merge_shards`].
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    seconds: Vec<ShardSecond>,
    queue_depths: Vec<f64>,
    /// Whole-run `(device, bytes-as-f64)` totals for this shard's devices.
    totals: Vec<(usize, f64)>,
    total_accesses: u64,
    total_sequential: u64,
}

/// Accumulates the device-event metrics for one shard's subset of devices.
///
/// Feed events in non-decreasing time order; each device must be fed to
/// exactly one accumulator for the merge to reproduce sequential results.
#[derive(Debug, Clone)]
pub struct ShardAccumulator {
    devices: usize,
    current_second: u64,
    /// Per-device accumulated bytes for the current second.
    loads: BTreeMap<usize, f64>,
    accesses_this_second: u64,
    sequential_this_second: u64,
    /// Last physical block end per device (sequentiality state).
    last_end: BTreeMap<usize, u64>,
    report: ShardReport,
}

impl ShardAccumulator {
    /// Creates an accumulator for an array of `devices` devices total.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn new(devices: usize) -> Self {
        assert!(devices > 0, "need at least one device");
        ShardAccumulator {
            devices,
            current_second: 0,
            loads: BTreeMap::new(),
            accesses_this_second: 0,
            sequential_this_second: 0,
            last_end: BTreeMap::new(),
            report: ShardReport::default(),
        }
    }

    /// Records one device event.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range, `blocks` is zero, or time goes
    /// backwards across seconds.
    pub fn record(&mut self, ev: &ShardEvent) {
        assert!(
            ev.device < self.devices,
            "device {} out of range",
            ev.device
        );
        assert!(ev.blocks > 0, "an access must cover at least one block");
        let second = ev.at.second_bucket();
        assert!(
            second >= self.current_second,
            "events must be fed in time order (second {second} after {})",
            self.current_second
        );
        if second != self.current_second {
            self.roll_over();
            self.current_second = second;
        }
        // Same `+= bytes as f64` the sequential LoadBalanceTracker performs,
        // in the same per-device order — bit-identical partial sums.
        *self.loads.entry(ev.device).or_insert(0.0) += ev.bytes as f64;
        let sequential = self.last_end.get(&ev.device) == Some(&ev.start_block);
        self.accesses_this_second += 1;
        self.report.total_accesses += 1;
        if sequential {
            self.sequential_this_second += 1;
            self.report.total_sequential += 1;
        }
        self.last_end.insert(ev.device, ev.start_block + ev.blocks);
        self.report.queue_depths.push(ev.queue_depth as f64);
    }

    fn roll_over(&mut self) {
        if self.accesses_this_second > 0 {
            let loads: Vec<(usize, f64)> = self.loads.iter().map(|(&d, &v)| (d, v)).collect();
            self.report.seconds.push(ShardSecond {
                second: self.current_second,
                active_devices: loads.len() as u64,
                loads,
                accesses: self.accesses_this_second,
                sequential: self.sequential_this_second,
            });
        }
        // Whole-run totals accumulate across seconds, still per device in
        // feed order: fold the finished second's loads in before clearing.
        for (&d, &v) in &self.loads {
            match self.report.totals.iter_mut().find(|(td, _)| *td == d) {
                Some((_, tv)) => *tv += v,
                None => self.report.totals.push((d, v)),
            }
        }
        self.loads.clear();
        self.accesses_this_second = 0;
        self.sequential_this_second = 0;
    }

    /// Flushes the final second and returns this shard's observations.
    pub fn finish(mut self) -> ShardReport {
        self.roll_over();
        self.report
    }
}

/// The deterministic union of all shards' observations — exactly the state
/// the sequential trackers' `finish()` methods would have produced.
#[derive(Debug, Clone)]
pub struct MergedDeviceMetrics {
    /// Per-second load-balance cv samples (active seconds, ascending).
    pub cv_samples: Quantiles,
    /// Whole-run per-device byte totals (dense, device order).
    pub device_totals: Vec<f64>,
    /// Per-second sequential-access percentage samples (0–100).
    pub seq_samples: Quantiles,
    /// Total device accesses across the run.
    pub total_accesses: u64,
    /// Total sequential accesses across the run.
    pub total_sequential: u64,
    /// Every queue-depth sample.
    pub queue_depths: Quantiles,
    /// Per-second concurrently-active device counts.
    pub concurrent_devices: Quantiles,
}

impl MergedDeviceMetrics {
    /// Overall fraction of sequential accesses, in `[0, 1]`.
    pub fn overall_sequential_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.total_sequential as f64 / self.total_accesses as f64
        }
    }

    /// cv of the whole-run per-device totals.
    pub fn overall_cv(&self) -> f64 {
        coefficient_of_variation(&self.device_totals)
    }
}

/// Merges shard reports into the sequential trackers' exact outputs.
///
/// Devices must have been partitioned across the shards: each device's
/// events all fed to the same accumulator.
///
/// # Panics
///
/// Panics if `devices` is zero or any shard recorded an out-of-range device.
pub fn merge_shards(devices: usize, shards: &[ShardReport]) -> MergedDeviceMetrics {
    assert!(devices > 0, "need at least one device");
    struct SecondAgg {
        loads: Vec<(usize, f64)>,
        accesses: u64,
        sequential: u64,
        active_devices: u64,
    }
    let mut per_second: BTreeMap<u64, SecondAgg> = BTreeMap::new();
    let mut device_totals = vec![0.0; devices];
    let mut queue_depths = Quantiles::new();
    let mut total_accesses = 0u64;
    let mut total_sequential = 0u64;
    for shard in shards {
        for sec in &shard.seconds {
            let agg = per_second.entry(sec.second).or_insert_with(|| SecondAgg {
                loads: Vec::new(),
                accesses: 0,
                sequential: 0,
                active_devices: 0,
            });
            agg.loads.extend_from_slice(&sec.loads);
            agg.accesses += sec.accesses;
            agg.sequential += sec.sequential;
            agg.active_devices += sec.active_devices;
        }
        for &(d, v) in &shard.totals {
            assert!(d < devices, "device {d} out of range");
            device_totals[d] += v;
        }
        for &q in &shard.queue_depths {
            queue_depths.record(q);
        }
        total_accesses += shard.total_accesses;
        total_sequential += shard.total_sequential;
    }
    let mut cv_samples = Quantiles::new();
    let mut seq_samples = Quantiles::new();
    let mut concurrent_devices = Quantiles::new();
    let mut dense = vec![0.0; devices];
    for agg in per_second.values() {
        for &(d, v) in &agg.loads {
            assert!(d < devices, "device {d} out of range");
            dense[d] += v;
        }
        cv_samples.record(coefficient_of_variation(&dense));
        for &(d, _) in &agg.loads {
            dense[d] = 0.0;
        }
        seq_samples.record(100.0 * agg.sequential as f64 / agg.accesses as f64);
        concurrent_devices.record(agg.active_devices as f64);
    }
    MergedDeviceMetrics {
        cv_samples,
        device_totals,
        seq_samples,
        total_accesses,
        total_sequential,
        queue_depths,
        concurrent_devices,
    }
}

/// Number of buffered events per shard before a batch is shipped.
const FLUSH_BATCH: usize = 4096;

/// Routes device events to per-shard worker threads and joins them into a
/// [`MergedDeviceMetrics`].
///
/// Devices are assigned to shards per parity group
/// (`shard = (device / parity_group) % threads`), so a parity group's
/// devices — which share rebuild/migration traffic — land on one worker.
#[derive(Debug)]
pub struct ShardRouter {
    shard_of: Vec<usize>,
    senders: Vec<mpsc::Sender<Vec<ShardEvent>>>,
    handles: Vec<JoinHandle<ShardReport>>,
    buffers: Vec<Vec<ShardEvent>>,
    devices: usize,
}

impl ShardRouter {
    /// Spawns `threads` workers for an array of `devices` devices grouped
    /// into parity groups of `parity_group` devices.
    ///
    /// # Panics
    ///
    /// Panics if `devices`, `parity_group` or `threads` is zero.
    pub fn new(devices: usize, parity_group: usize, threads: usize) -> Self {
        assert!(devices > 0, "need at least one device");
        assert!(parity_group > 0, "need a non-empty parity group");
        assert!(threads > 0, "need at least one shard");
        let shard_of: Vec<usize> = (0..devices).map(|d| (d / parity_group) % threads).collect();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<Vec<ShardEvent>>();
            let mut acc = ShardAccumulator::new(devices);
            handles.push(std::thread::spawn(move || {
                while let Ok(batch) = rx.recv() {
                    for ev in &batch {
                        acc.record(ev);
                    }
                }
                acc.finish()
            }));
            senders.push(tx);
        }
        ShardRouter {
            shard_of,
            senders,
            handles,
            buffers: vec![Vec::new(); threads],
            devices,
        }
    }

    /// Number of devices this router was built for.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Queues one event for its owning shard, shipping a batch when the
    /// shard's buffer fills.
    ///
    /// # Panics
    ///
    /// Panics if `ev.device` is out of range.
    pub fn record(&mut self, ev: ShardEvent) {
        let shard = self.shard_of[ev.device];
        let buf = &mut self.buffers[shard];
        buf.push(ev);
        if buf.len() >= FLUSH_BATCH {
            let batch = std::mem::replace(buf, Vec::with_capacity(FLUSH_BATCH));
            self.senders[shard]
                .send(batch)
                .expect("metrics shard worker exited early");
        }
    }

    /// Flushes buffers, joins the workers and merges their observations.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked (e.g. on out-of-order events).
    pub fn finish(mut self) -> MergedDeviceMetrics {
        for (shard, buf) in self.buffers.drain(..).enumerate() {
            if !buf.is_empty() {
                self.senders[shard]
                    .send(buf)
                    .expect("metrics shard worker exited early");
            }
        }
        self.senders.clear();
        let reports: Vec<ShardReport> = self
            .handles
            .drain(..)
            .map(|h| h.join().expect("metrics shard worker panicked"))
            .collect();
        merge_shards(self.devices, &reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrency::ConcurrencyTracker;
    use crate::cv::LoadBalanceTracker;
    use crate::sequentiality::SequentialityTracker;
    use proptest::prelude::*;

    /// Feeds `events` (already time-sorted) to the three sequential
    /// trackers and returns their finished outputs.
    fn run_sequential(
        devices: usize,
        events: &[ShardEvent],
    ) -> (
        Quantiles,
        Vec<f64>,
        f64,
        Quantiles,
        f64,
        Quantiles,
        Quantiles,
    ) {
        let mut load = LoadBalanceTracker::new(devices);
        let mut seq = SequentialityTracker::new();
        let mut conc = ConcurrencyTracker::new();
        for ev in events {
            load.record(ev.at, ev.device, ev.bytes);
            seq.record(ev.at, ev.device, ev.start_block, ev.blocks);
            conc.record(ev.at, ev.device, ev.queue_depth);
        }
        let totals = load.device_totals().to_vec();
        let overall_cv = load.overall_cv();
        let fraction = seq.overall_sequential_fraction();
        let cv_samples = load.finish();
        let seq_samples = seq.finish();
        // ConcurrencyTracker::finish folds into summaries; reconstruct the
        // raw sample sets with a second pass for the bitwise comparison.
        let mut ioq = Quantiles::new();
        let mut current_second = 0u64;
        let mut active: std::collections::BTreeSet<usize> = Default::default();
        let mut cdev = Quantiles::new();
        for ev in events {
            let second = ev.at.second_bucket();
            if second != current_second {
                if !active.is_empty() {
                    cdev.record(active.len() as f64);
                }
                active.clear();
                current_second = second;
            }
            ioq.record(ev.queue_depth as f64);
            active.insert(ev.device);
        }
        if !active.is_empty() {
            cdev.record(active.len() as f64);
        }
        let _ = conc.finish();
        (
            cv_samples,
            totals,
            overall_cv,
            seq_samples,
            fraction,
            ioq,
            cdev,
        )
    }

    /// Routes `events` through per-shard accumulators (no threads) and
    /// merges.
    fn run_sharded(
        devices: usize,
        parity_group: usize,
        threads: usize,
        events: &[ShardEvent],
    ) -> MergedDeviceMetrics {
        let mut accs: Vec<ShardAccumulator> = (0..threads)
            .map(|_| ShardAccumulator::new(devices))
            .collect();
        for ev in events {
            accs[(ev.device / parity_group) % threads].record(ev);
        }
        let reports: Vec<ShardReport> = accs.into_iter().map(|a| a.finish()).collect();
        merge_shards(devices, &reports)
    }

    fn assert_bitwise_equal(mut a: Quantiles, mut b: Quantiles, what: &str) {
        assert_eq!(a.count(), b.count(), "{what}: sample counts differ");
        let av: Vec<u64> = a.sorted_samples().iter().map(|v| v.to_bits()).collect();
        let bv: Vec<u64> = b.sorted_samples().iter().map(|v| v.to_bits()).collect();
        assert_eq!(av, bv, "{what}: sorted samples differ bitwise");
    }

    fn synthetic_events(count: usize, devices: usize) -> Vec<ShardEvent> {
        // Deterministic LCG stream with idle gaps and per-device runs.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut at_micros = 0u64;
        (0..count)
            .map(|_| {
                at_micros += next() % 400_000; // up to 0.4 s between events
                let device = (next() as usize) % devices;
                let start_block = next() % 4096;
                let blocks = 1 + next() % 64;
                ShardEvent {
                    at: SimTime::from_micros(at_micros as f64),
                    device,
                    start_block,
                    blocks,
                    queue_depth: next() % 32,
                    bytes: blocks * 4096,
                }
            })
            .collect()
    }

    fn check_equivalence(
        devices: usize,
        parity_group: usize,
        threads: usize,
        events: &[ShardEvent],
    ) {
        let (cv, totals, overall_cv, seqs, fraction, ioq, cdev) = run_sequential(devices, events);
        let merged = run_sharded(devices, parity_group, threads, events);
        assert_bitwise_equal(cv, merged.cv_samples.clone(), "cv samples");
        assert_bitwise_equal(seqs, merged.seq_samples.clone(), "seq samples");
        assert_bitwise_equal(ioq, merged.queue_depths.clone(), "queue depths");
        assert_bitwise_equal(cdev, merged.concurrent_devices.clone(), "cdev");
        let ta: Vec<u64> = totals.iter().map(|v| v.to_bits()).collect();
        let tb: Vec<u64> = merged.device_totals.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ta, tb, "device totals differ bitwise");
        assert_eq!(overall_cv.to_bits(), merged.overall_cv().to_bits());
        assert_eq!(
            fraction.to_bits(),
            merged.overall_sequential_fraction().to_bits()
        );
    }

    #[test]
    fn sharded_merge_matches_sequential_trackers_bitwise() {
        let events = synthetic_events(5000, 12);
        for &threads in &[1usize, 2, 3, 4, 8] {
            check_equivalence(12, 3, threads, &events);
        }
    }

    #[test]
    fn sharded_merge_handles_empty_and_single_shards() {
        check_equivalence(4, 2, 2, &[]);
        let one = [ShardEvent {
            at: SimTime::from_secs(3.0),
            device: 1,
            start_block: 8,
            blocks: 8,
            queue_depth: 2,
            bytes: 4096,
        }];
        check_equivalence(4, 2, 3, &one);
    }

    #[test]
    fn router_threads_match_sequential_trackers_bitwise() {
        let devices = 10;
        let events = synthetic_events(20_000, devices);
        let (cv, totals, overall_cv, seqs, fraction, ioq, cdev) = run_sequential(devices, &events);
        let mut router = ShardRouter::new(devices, 5, 4);
        for &ev in &events {
            router.record(ev);
        }
        let merged = router.finish();
        assert_bitwise_equal(cv, merged.cv_samples.clone(), "cv samples");
        assert_bitwise_equal(seqs, merged.seq_samples.clone(), "seq samples");
        assert_bitwise_equal(ioq, merged.queue_depths.clone(), "queue depths");
        assert_bitwise_equal(cdev, merged.concurrent_devices.clone(), "cdev");
        let ta: Vec<u64> = totals.iter().map(|v| v.to_bits()).collect();
        let tb: Vec<u64> = merged.device_totals.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ta, tb, "device totals differ bitwise");
        assert_eq!(overall_cv.to_bits(), merged.overall_cv().to_bits());
        assert_eq!(
            fraction.to_bits(),
            merged.overall_sequential_fraction().to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn accumulator_rejects_backwards_time() {
        let mut acc = ShardAccumulator::new(2);
        acc.record(&ShardEvent {
            at: SimTime::from_secs(5.0),
            device: 0,
            start_block: 0,
            blocks: 1,
            queue_depth: 0,
            bytes: 512,
        });
        acc.record(&ShardEvent {
            at: SimTime::from_secs(1.0),
            device: 0,
            start_block: 1,
            blocks: 1,
            queue_depth: 0,
            bytes: 512,
        });
    }

    proptest! {
        /// Any time-sorted event stream merges bit-identically for any
        /// shard count and parity-group width.
        #[test]
        fn prop_merge_matches_sequential(
            raw in proptest::collection::vec(
                (0u64..30_000_000, 0usize..12, 0u64..96, 1u64..9),
                1..400,
            ),
            knobs in (0usize..4, 0usize..4),
        ) {
            let mut raw = raw;
            raw.sort_by_key(|&(micros, _, _, _)| micros);
            let events: Vec<ShardEvent> = raw
                .iter()
                .map(|&(micros, device, start_block, blocks)| ShardEvent {
                    at: SimTime::from_micros(micros as f64),
                    device,
                    start_block,
                    blocks,
                    queue_depth: start_block % 17,
                    bytes: blocks * 4096,
                })
                .collect();
            let parity_group = [1usize, 2, 3, 4][knobs.0];
            let threads = [1usize, 2, 3, 5][knobs.1];
            check_equivalence(12, parity_group, threads, &events);
        }
    }
}
