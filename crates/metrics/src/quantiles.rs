//! Exact percentiles and CDF points.

use serde::{Deserialize, Serialize};

/// Collects samples and answers percentile / CDF queries exactly.
///
/// Samples are stored (as `f64`); sorting happens lazily on the first query
/// after new samples arrive. The experiment harness deals with at most a few
/// million samples per run, for which exact quantiles are both affordable and
/// preferable to sketch error.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Quantiles {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty collector with preallocated room for `capacity`
    /// samples.
    pub fn with_capacity(capacity: usize) -> Self {
        Quantiles {
            samples: Vec::with_capacity(capacity),
            sorted: true,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "samples must be finite, got {value}");
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) using the nearest-rank method
    /// (`rank = ⌈q·n⌉`), or `None` if no samples were recorded.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = if q == 0.0 {
            0
        } else {
            ((q * n as f64).ceil() as usize).clamp(1, n) - 1
        };
        Some(self.samples[rank])
    }

    /// Median shortcut.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean of the samples, or `None` if empty.
    ///
    /// The sum runs over the *sorted* samples so the result depends only on
    /// the sample multiset, never on insertion order — a prerequisite for
    /// the sharded replay merge, which must reproduce single-threaded
    /// reports bit-for-bit whatever order shards contribute samples in.
    pub fn mean(&mut self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            self.ensure_sorted();
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.first().copied()
    }

    /// The empirical CDF evaluated at `value`: fraction of samples `≤ value`.
    pub fn cdf_at(&mut self, value: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= value);
        idx as f64 / self.samples.len() as f64
    }

    /// `points` evenly spaced points of the empirical CDF as
    /// `(value, cumulative_fraction)` pairs — the series plotted in the
    /// paper's Figures 5 and 7.
    ///
    /// # Panics
    ///
    /// Panics if `points` is zero.
    pub fn cdf_points(&mut self, points: usize) -> Vec<(f64, f64)> {
        assert!(points > 0, "need at least one CDF point");
        if self.samples.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let rank = ((frac * n as f64).ceil() as usize).clamp(1, n) - 1;
                (self.samples[rank], frac)
            })
            .collect()
    }

    /// The samples in ascending order.
    pub fn sorted_samples(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.samples
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &Quantiles) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_collector_has_no_quantiles() {
        let mut q = Quantiles::new();
        assert!(q.is_empty());
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.mean(), None);
        assert_eq!(q.cdf_points(10), Vec::new());
        assert_eq!(q.cdf_at(1.0), 0.0);
    }

    #[test]
    fn quantiles_of_a_known_sequence() {
        let mut q = Quantiles::new();
        for v in 1..=100 {
            q.record(v as f64);
        }
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(100.0));
        assert_eq!(q.median(), Some(50.0));
        assert_eq!(q.quantile(0.99), Some(99.0));
        assert_eq!(q.min(), Some(1.0));
        assert_eq!(q.max(), Some(100.0));
        assert_eq!(q.mean(), Some(50.5));
    }

    #[test]
    fn cdf_at_counts_fraction_below() {
        let mut q = Quantiles::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            q.record(v);
        }
        assert_eq!(q.cdf_at(0.5), 0.0);
        assert_eq!(q.cdf_at(2.0), 0.5);
        assert_eq!(q.cdf_at(10.0), 1.0);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let mut q = Quantiles::new();
        for i in 0..500 {
            q.record(((i * 37) % 101) as f64);
        }
        let pts = q.cdf_points(20);
        assert_eq!(pts.len(), 20);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0, "values must not decrease");
            assert!(w[0].1 < w[1].1, "fractions must increase");
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn merge_combines_sample_sets() {
        let mut a = Quantiles::new();
        let mut b = Quantiles::new();
        for v in 1..=50 {
            a.record(v as f64);
        }
        for v in 51..=100 {
            b.record(v as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.median(), Some(50.0));
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn quantile_range_checked() {
        let mut q = Quantiles::new();
        q.record(1.0);
        q.quantile(1.5);
    }

    proptest! {
        /// Quantiles are monotone in q and bounded by min/max.
        #[test]
        fn prop_quantiles_monotone(values in proptest::collection::vec(-1e3f64..1e3, 1..300)) {
            let mut q = Quantiles::new();
            for &v in &values {
                q.record(v);
            }
            let lo = q.quantile(0.0).unwrap();
            let hi = q.quantile(1.0).unwrap();
            let mut prev = lo;
            for i in 0..=10 {
                let v = q.quantile(i as f64 / 10.0).unwrap();
                prop_assert!(v >= prev - 1e-12);
                prop_assert!(v >= lo && v <= hi);
                prev = v;
            }
        }
    }
}
