//! Streaming mean / variance / confidence-interval summary.

use serde::{Deserialize, Serialize};

/// A single-pass summary of a stream of samples (Welford's algorithm), with
/// the 95 % confidence interval of the mean that the paper reports for its
/// response-time measurements.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl StreamingSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        StreamingSummary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "samples must be finite, got {value}");
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample seen, or 0 for an empty summary.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen, or 0 for an empty summary.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample variance (unbiased); 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the 95 % confidence interval of the mean
    /// (normal approximation, `1.96 × standard error`).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// `(low, high)` bounds of the 95 % confidence interval of the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let hw = self.ci95_half_width();
        (self.mean() - hw, self.mean() + hw)
    }

    /// Merges another summary into this one (exact for count/mean/variance).
    pub fn merge(&mut self, other: &StreamingSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = new_mean;
        self.m2 = new_m2;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = StreamingSummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn mean_and_variance_match_textbook_values() {
        let mut s = StreamingSummary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn confidence_interval_shrinks_with_more_samples() {
        let mut small = StreamingSummary::new();
        let mut large = StreamingSummary::new();
        for i in 0..10 {
            small.record((i % 5) as f64);
        }
        for i in 0..10_000 {
            large.record((i % 5) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
        let (lo, hi) = large.ci95();
        assert!(lo <= large.mean() && large.mean() <= hi);
    }

    #[test]
    fn merge_equals_single_stream() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = StreamingSummary::new();
        for &v in &data {
            whole.record(v);
        }
        let mut a = StreamingSummary::new();
        let mut b = StreamingSummary::new();
        for &v in &data[..37] {
            a.record(v);
        }
        for &v in &data[37..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = StreamingSummary::new();
        s.record(3.0);
        let before = s.clone();
        s.merge(&StreamingSummary::new());
        assert_eq!(s, before);
        let mut empty = StreamingSummary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_sample_rejected() {
        StreamingSummary::new().record(f64::NAN);
    }

    proptest! {
        /// The mean is always between min and max, and variance is never
        /// negative.
        #[test]
        fn prop_mean_bounded(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut s = StreamingSummary::new();
            for &v in &values {
                s.record(v);
            }
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
            prop_assert!(s.variance() >= 0.0);
            prop_assert_eq!(s.count() as usize, values.len());
        }
    }
}
