//! Device-concurrency and queue-depth tracking.
//!
//! The paper's Table 5 compares its full-HDD and SSD-dedicated variants on
//! two metrics sampled over the run: the size of the device I/O queues
//! (`Ioq`) and the number of concurrently active devices (`Cdev`), reporting
//! mean, 99th percentile and maximum of each. A dedicated SSD cache funnels
//! most I/O into 5 devices (deep queues, few active devices); the spread
//! cache partition keeps queues shallow and many spindles busy.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use craid_simkit::SimTime;

use crate::quantiles::Quantiles;

/// Summary statistics (mean / 99th percentile / max) for one tracked metric.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ConcurrencySummary {
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// 99th percentile of the samples.
    pub p99: f64,
    /// Maximum sample.
    pub max: f64,
}

impl ConcurrencySummary {
    /// Builds the summary from a raw sample set (zeros when empty) — the
    /// same folding [`ConcurrencyTracker::finish`] applies, exposed so the
    /// sharded merge can reproduce it exactly.
    pub fn from_quantiles(q: &mut Quantiles) -> Self {
        ConcurrencySummary {
            mean: q.mean().unwrap_or(0.0),
            p99: q.quantile(0.99).unwrap_or(0.0),
            max: q.max().unwrap_or(0.0),
        }
    }
}

/// Tracks queue-depth samples and per-second concurrently-active device
/// counts. Feed events in non-decreasing time order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcurrencyTracker {
    queue_depths: Quantiles,
    current_second: u64,
    active_this_second: BTreeSet<usize>,
    concurrent_devices: Quantiles,
}

impl Default for ConcurrencyTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        ConcurrencyTracker {
            queue_depths: Quantiles::new(),
            current_second: 0,
            active_this_second: BTreeSet::new(),
            concurrent_devices: Quantiles::new(),
        }
    }

    /// Records one device-level submission: the device it targets, the time
    /// it was issued, and the queue depth it found on arrival.
    ///
    /// # Panics
    ///
    /// Panics if time goes backwards across seconds.
    pub fn record(&mut self, at: SimTime, device: usize, queue_depth: u64) {
        let second = at.second_bucket();
        assert!(
            second >= self.current_second,
            "events must be fed in time order (second {second} after {})",
            self.current_second
        );
        if second != self.current_second {
            self.roll_over();
            self.current_second = second;
        }
        self.queue_depths.record(queue_depth as f64);
        self.active_this_second.insert(device);
    }

    fn roll_over(&mut self) {
        if !self.active_this_second.is_empty() {
            self.concurrent_devices
                .record(self.active_this_second.len() as f64);
        }
        self.active_this_second.clear();
    }

    /// Finishes the run and returns `(queue depth summary, concurrent device
    /// summary)` — the two halves of the paper's Table 5 row.
    pub fn finish(mut self) -> (ConcurrencySummary, ConcurrencySummary) {
        self.roll_over();
        (
            summarize(&mut self.queue_depths),
            summarize(&mut self.concurrent_devices),
        )
    }
}

fn summarize(q: &mut Quantiles) -> ConcurrencySummary {
    ConcurrencySummary::from_quantiles(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_yields_zero_summaries() {
        let (ioq, cdev) = ConcurrencyTracker::new().finish();
        assert_eq!(ioq.mean, 0.0);
        assert_eq!(cdev.max, 0.0);
    }

    #[test]
    fn counts_distinct_devices_per_second() {
        let mut t = ConcurrencyTracker::new();
        // Second 0: devices 0, 1, 2 active (device 0 twice).
        t.record(SimTime::from_secs(0.1), 0, 0);
        t.record(SimTime::from_secs(0.2), 1, 1);
        t.record(SimTime::from_secs(0.3), 0, 2);
        t.record(SimTime::from_secs(0.4), 2, 0);
        // Second 2: a single device.
        t.record(SimTime::from_secs(2.0), 4, 5);
        let (ioq, cdev) = t.finish();
        assert_eq!(cdev.max, 3.0);
        assert_eq!(cdev.mean, 2.0);
        assert_eq!(ioq.max, 5.0);
        assert!((ioq.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn deep_queues_show_in_p99() {
        let mut t = ConcurrencyTracker::new();
        for i in 0..200u64 {
            let depth = if i % 50 == 49 { 50 } else { 1 };
            t.record(SimTime::from_millis(i as f64), 0, depth);
        }
        let (ioq, _) = t.finish();
        assert!(ioq.p99 >= 50.0);
        assert!(ioq.mean < 2.0);
    }

    #[test]
    fn funneled_vs_spread_traffic_shapes() {
        // The contrast behind Table 5: the same number of submissions either
        // funneled into 2 devices with deep queues or spread over 20 devices
        // with shallow queues.
        let mut funneled = ConcurrencyTracker::new();
        let mut spread = ConcurrencyTracker::new();
        for i in 0..400u64 {
            let at = SimTime::from_millis(i as f64 * 10.0);
            funneled.record(at, (i % 2) as usize, i % 40);
            spread.record(at, (i % 20) as usize, i % 3);
        }
        let (f_ioq, f_cdev) = funneled.finish();
        let (s_ioq, s_cdev) = spread.finish();
        assert!(f_ioq.mean > s_ioq.mean, "funneled queues must be deeper");
        assert!(
            f_cdev.mean < s_cdev.mean,
            "spread traffic keeps more devices active"
        );
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_backwards_time() {
        let mut t = ConcurrencyTracker::new();
        t.record(SimTime::from_secs(2.0), 0, 0);
        t.record(SimTime::from_secs(1.0), 0, 0);
    }
}
