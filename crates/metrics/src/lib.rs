//! # craid-metrics
//!
//! Streaming statistics used to reproduce the measurements of the CRAID
//! paper's evaluation (FAST '14, §5):
//!
//! * [`StreamingSummary`] — count/mean/min/max/std-dev plus the 95 %
//!   confidence interval the paper attaches to its response-time plots
//!   (Figs. 4 and 6).
//! * [`Quantiles`] — exact percentiles and CDF points (Fig. 5's sequentiality
//!   CDF, Fig. 7's load-balance CDF, Table 5's 99th-percentile queue depths).
//! * [`coefficient_of_variation`] and [`LoadBalanceTracker`] — the per-second
//!   `cv = σ/µ` of per-disk I/O load that §5.3 uses as its load-balance
//!   metric.
//! * [`SequentialityTracker`] — the per-second fraction of physically
//!   sequential device accesses behind Fig. 5.
//! * [`ConcurrencyTracker`] — per-second count of concurrently active devices
//!   and queue-depth samples behind Table 5.
//! * [`shard`] — shard-local accumulators and a deterministic merge so the
//!   sharded replay engine reproduces single-threaded reports bit-for-bit.
//!
//! # Example
//!
//! ```
//! use craid_metrics::StreamingSummary;
//!
//! let mut s = StreamingSummary::new();
//! for v in [1.0, 2.0, 3.0, 4.0] {
//!     s.record(v);
//! }
//! assert_eq!(s.mean(), 2.5);
//! assert_eq!(s.count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrency;
pub mod cv;
pub mod quantiles;
pub mod sequentiality;
pub mod shard;
pub mod summary;

pub use concurrency::ConcurrencyTracker;
pub use cv::{coefficient_of_variation, LoadBalanceTracker};
pub use quantiles::Quantiles;
pub use sequentiality::SequentialityTracker;
pub use shard::{merge_shards, MergedDeviceMetrics, ShardAccumulator, ShardEvent, ShardRouter};
pub use summary::StreamingSummary;
