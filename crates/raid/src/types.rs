//! Shared vocabulary for RAID layouts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Stripe unit of 128 KiB expressed in 4 KiB blocks — the value the paper
/// adopts for every policy, following Chen & Lee's striping study.
pub const STRIPE_UNIT_BLOCKS_128K: u64 = 32;

/// A physical block location: device index within the array plus the block
/// number local to that device (relative to the partition's base offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DiskBlock {
    /// Device index within the array.
    pub disk: usize,
    /// Block number local to the device (partition-relative).
    pub block: u64,
}

impl DiskBlock {
    /// Convenience constructor.
    pub const fn new(disk: usize, block: u64) -> Self {
        DiskBlock { disk, block }
    }
}

impl fmt::Display for DiskBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}:{}", self.disk, self.block)
    }
}

/// Why a planned device I/O exists. Used by the simulator to attribute
/// foreground vs. parity-maintenance traffic, and by tests to check that the
/// planner issues exactly the I/Os the paper's cost model expects (e.g. the
/// "4 additional I/Os" for a dirty eviction in a RAID-5 partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoPurpose {
    /// Reads or writes carrying user data.
    Data,
    /// Read of the old content of a data block, needed to recompute parity.
    OldDataRead,
    /// Read of the old parity block.
    ParityRead,
    /// Write of the new parity block.
    ParityWrite,
    /// Degraded-mode read of a surviving parity-group member, issued to
    /// reconstruct a block whose disk has failed.
    ReconstructRead,
    /// Background read of a surviving member feeding a rebuild onto a hot
    /// spare.
    RebuildRead,
    /// Background write of reconstructed content onto the hot spare.
    RebuildWrite,
    /// Background read of a block's pre-upgrade copy, feeding an online
    /// expansion migration.
    MigrateRead,
    /// Background write of a migrated block at its post-upgrade home.
    MigrateWrite,
}

impl IoPurpose {
    /// True for the two parity-maintenance read purposes.
    pub const fn is_parity_overhead(self) -> bool {
        matches!(
            self,
            IoPurpose::OldDataRead | IoPurpose::ParityRead | IoPurpose::ParityWrite
        )
    }

    /// True for I/O that only exists because a disk failed: degraded-mode
    /// reconstruction reads and the rebuild stream onto the hot spare.
    pub const fn is_fault_recovery(self) -> bool {
        matches!(
            self,
            IoPurpose::ReconstructRead | IoPurpose::RebuildRead | IoPurpose::RebuildWrite
        )
    }

    /// True for the background data movement of an online expansion.
    pub const fn is_migration(self) -> bool {
        matches!(self, IoPurpose::MigrateRead | IoPurpose::MigrateWrite)
    }
}

/// Errors returned when constructing a layout from inconsistent parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayoutError {
    /// The array needs at least this many devices for the requested geometry.
    NotEnoughDisks {
        /// Devices requested.
        got: usize,
        /// Minimum devices required.
        need: usize,
    },
    /// The parity group size must divide the number of disks.
    UnalignedParityGroup {
        /// Devices in the array.
        disks: usize,
        /// Requested parity-group width.
        group: usize,
    },
    /// A size parameter (stripe unit, per-disk blocks) was zero or not a
    /// multiple of the stripe unit.
    InvalidGeometry(String),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::NotEnoughDisks { got, need } => {
                write!(f, "layout needs at least {need} disks, got {got}")
            }
            LayoutError::UnalignedParityGroup { disks, group } => {
                write!(f, "parity group of {group} does not divide {disks} disks")
            }
            LayoutError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
        }
    }
}

impl std::error::Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_block_display() {
        assert_eq!(DiskBlock::new(3, 42).to_string(), "d3:42");
    }

    #[test]
    fn disk_block_ordering_is_by_disk_then_block() {
        let mut v = vec![
            DiskBlock::new(1, 5),
            DiskBlock::new(0, 9),
            DiskBlock::new(1, 2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                DiskBlock::new(0, 9),
                DiskBlock::new(1, 2),
                DiskBlock::new(1, 5)
            ]
        );
    }

    #[test]
    fn purpose_classification() {
        assert!(!IoPurpose::Data.is_parity_overhead());
        assert!(IoPurpose::OldDataRead.is_parity_overhead());
        assert!(IoPurpose::ParityRead.is_parity_overhead());
        assert!(IoPurpose::ParityWrite.is_parity_overhead());
        assert!(!IoPurpose::Data.is_fault_recovery());
        assert!(!IoPurpose::ParityWrite.is_fault_recovery());
        assert!(IoPurpose::ReconstructRead.is_fault_recovery());
        assert!(IoPurpose::RebuildRead.is_fault_recovery());
        assert!(IoPurpose::RebuildWrite.is_fault_recovery());
        assert!(IoPurpose::MigrateRead.is_migration());
        assert!(IoPurpose::MigrateWrite.is_migration());
        assert!(!IoPurpose::MigrateRead.is_fault_recovery());
        assert!(!IoPurpose::RebuildWrite.is_migration());
    }

    #[test]
    fn layout_error_messages() {
        let e = LayoutError::NotEnoughDisks { got: 1, need: 3 };
        assert!(e.to_string().contains("at least 3"));
        let e = LayoutError::UnalignedParityGroup {
            disks: 50,
            group: 7,
        };
        assert!(e.to_string().contains("does not divide"));
        let e = LayoutError::InvalidGeometry("stripe unit is zero".into());
        assert!(e.to_string().contains("stripe unit"));
    }
}
