//! Upgrade-cost baselines.
//!
//! CRAID's headline claim is that an upgrade only has to redistribute the
//! cache partition, while conventional approaches move large fractions of
//! the stored data. This module quantifies the conventional side of that
//! comparison:
//!
//! * [`round_robin_migration_blocks`] — the cost of a full restripe that
//!   preserves round-robin order (what `mdadm --grow` style reshapes do):
//!   every block whose physical location differs between the old and new
//!   layout must move.
//! * [`minimal_migration_blocks`] — the information-theoretic lower bound for
//!   regaining a balanced distribution: the fraction of data that must land
//!   on the new disks (`added / total`), the bound approaches like FastScale
//!   or SCADDAR aim for.
//! * [`ExpansionSchedule`] — the paper's ≈30 % growth schedule
//!   (10 → 13 → 17 → 22 → 29 → 38 → 50 disks), used by the upgrade benches.

use serde::{Deserialize, Serialize};

use crate::layout::Layout;
use crate::types::DiskBlock;

/// One block move of a reshape: a logical block whose physical location
/// differs between the pre- and post-upgrade layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationUnit {
    /// The logical block that has to move.
    pub logical: u64,
    /// Where the block lives under the old layout.
    pub from: DiskBlock,
    /// Where the block lives under the new layout.
    pub to: DiskBlock,
}

/// The moves a round-robin-preserving restripe must perform when the layout
/// changes from `old` to `new`, as a lazy stream over the first
/// `used_blocks` logical blocks (the data actually stored).
///
/// A block moves if either its target disk or its physical block number
/// changes. Parity blocks are not streamed (they are recomputed rather than
/// copied), which makes the stream a *lower* bound on the real restripe
/// traffic — and CRAID still undercuts it by orders of magnitude. Background
/// migration engines iterate this stream instead of materialising the whole
/// reshape plan up front.
///
/// # Panics
///
/// Panics if `used_blocks` exceeds the data capacity of either layout.
pub fn migration_stream<'a, A: Layout, B: Layout>(
    old: &'a A,
    new: &'a B,
    used_blocks: u64,
) -> impl Iterator<Item = MigrationUnit> + 'a {
    assert!(
        used_blocks <= old.data_capacity() && used_blocks <= new.data_capacity(),
        "used_blocks ({used_blocks}) exceeds a layout capacity (old {}, new {})",
        old.data_capacity(),
        new.data_capacity()
    );
    (0..used_blocks).filter_map(move |logical| {
        let from = old.locate(logical);
        let to = new.locate(logical);
        (from != to).then_some(MigrationUnit { logical, from, to })
    })
}

/// [`migration_stream`] resumed at a logical cursor: the moves of the
/// reshape whose logical block is in `[cursor, used_blocks)`, in ascending
/// order. Paced restripe engines call this once per background batch with
/// their saved cursor instead of materialising (or re-walking) the whole
/// move set, so an in-flight reshape costs O(1) memory regardless of the
/// dataset size.
///
/// # Panics
///
/// Panics if `used_blocks` exceeds the data capacity of either layout.
pub fn migration_stream_from<'a, A: Layout, B: Layout>(
    old: &'a A,
    new: &'a B,
    cursor: u64,
    used_blocks: u64,
) -> impl Iterator<Item = MigrationUnit> + 'a {
    assert!(
        used_blocks <= old.data_capacity() && used_blocks <= new.data_capacity(),
        "used_blocks ({used_blocks}) exceeds a layout capacity (old {}, new {})",
        old.data_capacity(),
        new.data_capacity()
    );
    (cursor.min(used_blocks)..used_blocks).filter_map(move |logical| {
        let from = old.locate(logical);
        let to = new.locate(logical);
        (from != to).then_some(MigrationUnit { logical, from, to })
    })
}

/// Number of blocks a round-robin-preserving restripe must migrate — the
/// length of [`migration_stream`].
///
/// # Panics
///
/// Panics if `used_blocks` exceeds the data capacity of either layout.
pub fn round_robin_migration_blocks<A: Layout, B: Layout>(
    old: &A,
    new: &B,
    used_blocks: u64,
) -> u64 {
    migration_stream(old, new, used_blocks).count() as u64
}

/// The minimum number of blocks that must move to the newly added disks to
/// restore a uniform distribution: `used_blocks * added_disks / new_disks`.
///
/// # Panics
///
/// Panics if `new_disks <= old_disks` or `old_disks == 0`.
pub fn minimal_migration_blocks(used_blocks: u64, old_disks: usize, new_disks: usize) -> u64 {
    assert!(old_disks > 0, "old array must have at least one disk");
    assert!(
        new_disks > old_disks,
        "an upgrade must add disks (old {old_disks}, new {new_disks})"
    );
    let added = (new_disks - old_disks) as u64;
    // Round up: a fractional block still requires one block worth of movement.
    used_blocks * added / new_disks as u64
        + u64::from(!(used_blocks * added).is_multiple_of(new_disks as u64))
}

/// A sequence of array sizes describing successive upgrade operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpansionSchedule {
    sizes: Vec<usize>,
}

impl ExpansionSchedule {
    /// Creates a schedule from explicit array sizes (strictly increasing).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or they are not strictly
    /// increasing.
    pub fn new(sizes: Vec<usize>) -> Self {
        assert!(sizes.len() >= 2, "a schedule needs at least two sizes");
        assert!(
            sizes.windows(2).all(|w| w[0] < w[1]),
            "schedule sizes must be strictly increasing"
        );
        ExpansionSchedule { sizes }
    }

    /// The paper's evaluation schedule: start at 10 disks and add ≈30 % per
    /// step (+3, +4, +5, +7, +9, +12) until 50 disks are reached.
    pub fn paper() -> Self {
        ExpansionSchedule::new(vec![10, 13, 17, 22, 29, 38, 50])
    }

    /// The array sizes, in order.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of upgrade operations (transitions between sizes).
    pub fn steps(&self) -> usize {
        self.sizes.len() - 1
    }

    /// Iterates over `(old_disks, new_disks)` pairs, one per upgrade.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.sizes.windows(2).map(|w| (w[0], w[1]))
    }

    /// Per-step disk additions, e.g. `[3, 4, 5, 7, 9, 12]` for the paper's
    /// schedule.
    pub fn additions(&self) -> Vec<usize> {
        self.transitions().map(|(a, b)| b - a).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raid0::Raid0Layout;
    use crate::raid5::Raid5Layout;

    #[test]
    fn paper_schedule_matches_the_text() {
        let s = ExpansionSchedule::paper();
        assert_eq!(s.sizes(), &[10, 13, 17, 22, 29, 38, 50]);
        assert_eq!(s.additions(), vec![3, 4, 5, 7, 9, 12]);
        assert_eq!(s.steps(), 6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn schedule_must_grow() {
        ExpansionSchedule::new(vec![10, 10]);
    }

    #[test]
    fn round_robin_restripe_moves_most_blocks() {
        // Growing a RAID-0 from 4 to 5 disks scrambles nearly every block's
        // position: round-robin order is preserved only for the first stripe.
        let old = Raid0Layout::new(4, 1, 1024).unwrap();
        let new = Raid0Layout::new(5, 1, 1024).unwrap();
        let used = 2_000;
        let moved = round_robin_migration_blocks(&old, &new, used);
        assert!(
            moved as f64 > 0.7 * used as f64,
            "expected most blocks to move, got {moved}/{used}"
        );
    }

    #[test]
    fn raid5_restripe_also_moves_most_blocks() {
        let old = Raid5Layout::new(10, 10, 2, 128).unwrap();
        let new = Raid5Layout::new(12, 12, 2, 128).unwrap();
        let used = old.data_capacity().min(new.data_capacity());
        let moved = round_robin_migration_blocks(&old, &new, used);
        assert!(moved as f64 > 0.6 * used as f64);
    }

    #[test]
    fn minimal_migration_is_proportional_to_added_fraction() {
        assert_eq!(minimal_migration_blocks(1_000, 4, 5), 200);
        assert_eq!(minimal_migration_blocks(1_000, 10, 13), 231);
        // Rounds up.
        assert_eq!(minimal_migration_blocks(10, 9, 10), 1);
        assert_eq!(minimal_migration_blocks(0, 4, 5), 0);
    }

    #[test]
    fn migration_stream_yields_exactly_the_moved_blocks() {
        let old = Raid0Layout::new(4, 1, 1024).unwrap();
        let new = Raid0Layout::new(5, 1, 1024).unwrap();
        let used = 500;
        let units: Vec<MigrationUnit> = migration_stream(&old, &new, used).collect();
        assert_eq!(
            units.len() as u64,
            round_robin_migration_blocks(&old, &new, used)
        );
        for unit in &units {
            assert!(unit.logical < used);
            assert_eq!(unit.from, old.locate(unit.logical));
            assert_eq!(unit.to, new.locate(unit.logical));
            assert_ne!(unit.from, unit.to, "only moved blocks are streamed");
        }
        // The stream is strictly ordered by logical block (iterable from a
        // cursor, as a paced migration engine needs).
        assert!(units.windows(2).all(|w| w[0].logical < w[1].logical));
    }

    #[test]
    fn resumed_stream_is_a_suffix_of_the_full_stream() {
        let old = Raid0Layout::new(4, 1, 1024).unwrap();
        let new = Raid0Layout::new(5, 1, 1024).unwrap();
        let used = 500;
        let full: Vec<MigrationUnit> = migration_stream(&old, &new, used).collect();
        // Resuming at any cursor yields exactly the moves at or past it.
        for cursor in [0u64, 1, 123, 499, 500, 700] {
            let resumed: Vec<MigrationUnit> =
                migration_stream_from(&old, &new, cursor, used).collect();
            let expected: Vec<MigrationUnit> = full
                .iter()
                .copied()
                .filter(|u| u.logical >= cursor)
                .collect();
            assert_eq!(resumed, expected, "cursor {cursor}");
        }
    }

    #[test]
    fn minimal_is_below_round_robin() {
        let old = Raid0Layout::new(4, 1, 1024).unwrap();
        let new = Raid0Layout::new(5, 1, 1024).unwrap();
        let used = 2_000;
        let rr = round_robin_migration_blocks(&old, &new, used);
        let min = minimal_migration_blocks(used, 4, 5);
        assert!(min < rr, "minimal ({min}) must undercut round-robin ({rr})");
    }

    #[test]
    #[should_panic(expected = "must add disks")]
    fn shrinking_is_not_an_upgrade() {
        minimal_migration_blocks(100, 5, 5);
    }

    #[test]
    #[should_panic(expected = "exceeds a layout capacity")]
    fn used_blocks_bounded_by_capacity() {
        let old = Raid0Layout::new(4, 1, 8).unwrap();
        let new = Raid0Layout::new(5, 1, 8).unwrap();
        round_robin_migration_blocks(&old, &new, 1_000_000);
    }
}
