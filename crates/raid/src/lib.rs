//! # craid-raid
//!
//! Block-level RAID layouts and the I/O planning machinery used by the CRAID
//! simulator (FAST '14 reproduction).
//!
//! The paper's evaluation compares six allocation policies (its Fig. 3); the
//! layouts they are built from live here:
//!
//! * [`Raid0Layout`] — plain rotating stripes, no redundancy. Used for the
//!   CRAID cache-partition variant the paper mentions but does not plot.
//! * [`Raid5Layout`] — RAID-5 with *parity groups*: stripes span every disk
//!   but parity rotates independently inside each group of `G` disks
//!   (Fig. 3a), bounding the fault domain while keeping full parallelism.
//! * [`Raid5PlusLayout`] — "RAID-5+": the aggregation of several independent
//!   RAID-5 sets produced by repeated capacity upgrades (Fig. 3b). Each set
//!   keeps its own (short) stripe width, which is why the paper finds its
//!   performance and load balance inferior to an ideally restriped RAID-5.
//!
//! On top of a [`Layout`], [`planner::IoPlanner`] turns logical requests into
//! per-device physical I/Os, including RAID-5 read-modify-write parity
//! updates (the 4-I/O penalty the paper charges for dirty evictions) and the
//! full-stripe write optimization.
//!
//! [`reshape`] implements the upgrade-cost baselines CRAID is compared
//! against: full round-robin restriping and minimal-migration rebalancing.
//!
//! # Example
//!
//! ```
//! use craid_raid::{Layout, Raid5Layout};
//!
//! // 8 disks, parity groups of 4, 2-block stripe units, 64 blocks per disk.
//! let layout = Raid5Layout::new(8, 4, 2, 64).unwrap();
//! let loc = layout.locate(0);
//! assert_eq!(loc.disk, 0);
//! let parity = layout.parity_for(0).unwrap();
//! assert_ne!(parity.disk, loc.disk);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layout;
pub mod planner;
pub mod raid0;
pub mod raid5;
pub mod raid5plus;
pub mod reshape;
pub mod types;

pub use layout::Layout;
pub use planner::{IoPlanner, PlannedIo};
pub use raid0::Raid0Layout;
pub use raid5::Raid5Layout;
pub use raid5plus::Raid5PlusLayout;
pub use reshape::{
    migration_stream, migration_stream_from, minimal_migration_blocks,
    round_robin_migration_blocks, ExpansionSchedule, MigrationUnit,
};
pub use types::{DiskBlock, IoPurpose, LayoutError, STRIPE_UNIT_BLOCKS_128K};
