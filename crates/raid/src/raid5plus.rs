//! RAID-5+: an array grown by aggregation.
//!
//! The paper's realistic baseline (Fig. 3b): every capacity upgrade adds a
//! batch of disks that forms a **new, independent RAID-5 set** with its own
//! (short) stripe width, instead of restriping the whole volume. The volume
//! is then the concatenation of all sets. This is what administrators
//! actually do when a full restripe is too expensive — and it is exactly the
//! configuration whose performance and load balance degrade in the paper's
//! Figures 4, 6 and 7.

use serde::{Deserialize, Serialize};

use crate::layout::Layout;
use crate::raid5::Raid5Layout;
use crate::types::{DiskBlock, LayoutError};

/// One member set of a RAID-5+ aggregation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct MemberSet {
    /// Index of the first physical disk of this set within the whole array.
    first_disk: usize,
    /// Logical block (within the aggregated volume) where this set starts.
    logical_start: u64,
    layout: Raid5Layout,
}

/// The aggregation of several independent RAID-5 sets.
///
/// # Example
///
/// ```
/// use craid_raid::{Layout, Raid5PlusLayout};
///
/// // An array that started with 4 disks and was later expanded with 3 more.
/// let l = Raid5PlusLayout::new(&[4, 3], 2, 16).unwrap();
/// assert_eq!(l.disk_count(), 7);
/// assert_eq!(l.set_count(), 2);
/// // Blocks of the second set land on disks 4..7.
/// let cap0 = l.set_capacity(0);
/// assert!(l.locate(cap0).disk >= 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Raid5PlusLayout {
    sets: Vec<MemberSet>,
    stripe_unit: u64,
    blocks_per_disk: u64,
}

impl Raid5PlusLayout {
    /// Creates a RAID-5+ layout from the disk count of every expansion step.
    ///
    /// `set_sizes[0]` is the original array, each following entry one
    /// expansion. Every set is an independent RAID-5 whose parity group spans
    /// the entire set (as in the paper's figure). All sets share the same
    /// stripe unit and per-disk block count.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if any set has fewer than 2 disks or the
    /// geometry parameters are invalid.
    pub fn new(
        set_sizes: &[usize],
        stripe_unit: u64,
        blocks_per_disk: u64,
    ) -> Result<Self, LayoutError> {
        if set_sizes.is_empty() {
            return Err(LayoutError::InvalidGeometry(
                "at least one RAID set is required".into(),
            ));
        }
        let mut sets = Vec::with_capacity(set_sizes.len());
        let mut first_disk = 0usize;
        let mut logical_start = 0u64;
        for &size in set_sizes {
            let layout = Raid5Layout::new(size, size, stripe_unit, blocks_per_disk)?;
            let capacity = layout.data_capacity();
            sets.push(MemberSet {
                first_disk,
                logical_start,
                layout,
            });
            first_disk += size;
            logical_start += capacity;
        }
        Ok(Raid5PlusLayout {
            sets,
            stripe_unit,
            blocks_per_disk,
        })
    }

    /// The expansion schedule used throughout the paper's evaluation: a
    /// 10-disk array grown by ≈30 % per step (+3, +4, +5, +7, +9, +12) until
    /// it reaches 50 disks.
    pub fn paper_schedule(blocks_per_disk: u64) -> Result<Self, LayoutError> {
        Self::new(
            &[10, 3, 4, 5, 7, 9, 12],
            crate::types::STRIPE_UNIT_BLOCKS_128K,
            blocks_per_disk,
        )
    }

    /// Number of member RAID-5 sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Data capacity of member set `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_capacity(&self, idx: usize) -> u64 {
        self.sets[idx].layout.data_capacity()
    }

    /// The member set that owns `logical`, and the offset within it.
    fn set_of(&self, logical: u64) -> (&MemberSet, u64) {
        assert!(
            logical < self.data_capacity(),
            "logical block {logical} beyond capacity {}",
            self.data_capacity()
        );
        // Sets are few (single digits); a linear scan beats a binary search
        // in practice and keeps the code obvious.
        let set = self
            .sets
            .iter()
            .rev()
            .find(|s| logical >= s.logical_start)
            .expect("logical_start of the first set is 0");
        (set, logical - set.logical_start)
    }
}

impl Layout for Raid5PlusLayout {
    fn disk_count(&self) -> usize {
        self.sets
            .last()
            .map(|s| s.first_disk + s.layout.disk_count())
            .unwrap_or(0)
    }

    fn data_capacity(&self) -> u64 {
        self.sets
            .last()
            .map(|s| s.logical_start + s.layout.data_capacity())
            .unwrap_or(0)
    }

    fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    fn blocks_per_disk(&self) -> u64 {
        self.blocks_per_disk
    }

    fn locate(&self, logical: u64) -> DiskBlock {
        let (set, within) = self.set_of(logical);
        let loc = set.layout.locate(within);
        DiskBlock::new(loc.disk + set.first_disk, loc.block)
    }

    fn parity_for(&self, logical: u64) -> Option<DiskBlock> {
        let (set, within) = self.set_of(logical);
        set.layout
            .parity_for(within)
            .map(|p| DiskBlock::new(p.disk + set.first_disk, p.block))
    }

    fn data_blocks_per_parity_stripe(&self) -> u64 {
        // Conservative: the narrowest member set bounds full-stripe detection.
        self.sets
            .iter()
            .map(|s| s.layout.data_blocks_per_parity_stripe())
            .min()
            .unwrap_or(1)
    }

    fn reconstruction_peers(&self, disk: usize) -> Vec<usize> {
        // Redundancy never crosses member sets: the peers are the other
        // disks of whichever independent RAID-5 set owns `disk`.
        self.sets
            .iter()
            .find(|s| (s.first_disk..s.first_disk + s.layout.disk_count()).contains(&disk))
            .map(|s| {
                s.layout
                    .reconstruction_peers(disk - s.first_disk)
                    .into_iter()
                    .map(|d| d + s.first_disk)
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn paper_schedule_reaches_50_disks() {
        let l = Raid5PlusLayout::paper_schedule(32 * 4).unwrap();
        assert_eq!(l.disk_count(), 50);
        assert_eq!(l.set_count(), 7);
        assert!(l.uses_all_disks());
    }

    #[test]
    fn sets_own_disjoint_disk_ranges() {
        let l = Raid5PlusLayout::new(&[4, 3, 5], 2, 8).unwrap();
        assert_eq!(l.disk_count(), 12);
        let cap0 = l.set_capacity(0);
        let cap1 = l.set_capacity(1);
        // Blocks of set 0 stay on disks 0..4, set 1 on 4..7, set 2 on 7..12.
        for b in 0..cap0 {
            assert!(l.locate(b).disk < 4);
        }
        for b in cap0..cap0 + cap1 {
            let d = l.locate(b).disk;
            assert!((4..7).contains(&d));
        }
        for b in cap0 + cap1..l.data_capacity() {
            assert!(l.locate(b).disk >= 7);
        }
    }

    #[test]
    fn capacity_is_sum_of_sets() {
        let l = Raid5PlusLayout::new(&[4, 3], 2, 8).unwrap();
        assert_eq!(l.data_capacity(), l.set_capacity(0) + l.set_capacity(1));
        // Set of 4 disks: 3 data units/row × 4 rows × 2 blocks = 24.
        assert_eq!(l.set_capacity(0), 24);
        // Set of 3 disks: 2 data units/row × 4 rows × 2 blocks = 16.
        assert_eq!(l.set_capacity(1), 16);
    }

    #[test]
    fn parity_stays_within_owning_set() {
        let l = Raid5PlusLayout::new(&[4, 3], 2, 8).unwrap();
        let cap0 = l.set_capacity(0);
        for b in 0..l.data_capacity() {
            let p = l.parity_for(b).unwrap();
            if b < cap0 {
                assert!(p.disk < 4);
            } else {
                assert!((4..7).contains(&p.disk));
            }
        }
    }

    #[test]
    fn narrow_sets_limit_full_stripe_width() {
        let l = Raid5PlusLayout::new(&[10, 3], 2, 8).unwrap();
        // Narrowest set has 3 disks → 2 data units per stripe.
        assert_eq!(l.data_blocks_per_parity_stripe(), 2 * 2);
    }

    #[test]
    fn reconstruction_peers_stay_within_the_member_set() {
        let l = Raid5PlusLayout::new(&[4, 3, 5], 2, 8).unwrap();
        assert_eq!(l.reconstruction_peers(0), vec![1, 2, 3]);
        assert_eq!(l.reconstruction_peers(5), vec![4, 6]);
        assert_eq!(l.reconstruction_peers(7), vec![8, 9, 10, 11]);
        assert!(l.reconstruction_peers(12).is_empty(), "out of range");
    }

    #[test]
    fn constructor_validation() {
        assert!(Raid5PlusLayout::new(&[], 2, 8).is_err());
        assert!(Raid5PlusLayout::new(&[4, 1], 2, 8).is_err());
        assert!(Raid5PlusLayout::new(&[4], 0, 8).is_err());
    }

    proptest! {
        /// The aggregated mapping is injective across all member sets.
        #[test]
        fn prop_aggregated_mapping_injective(sizes in proptest::collection::vec(2usize..6, 1..4),
                                             rows in 1u64..4) {
            let unit = 2u64;
            let l = Raid5PlusLayout::new(&sizes, unit, rows * unit).unwrap();
            let mut seen = HashSet::new();
            for b in 0..l.data_capacity() {
                let loc = l.locate(b);
                prop_assert!(loc.disk < l.disk_count());
                prop_assert!(seen.insert(loc));
            }
        }
    }
}
