//! Translating logical requests into per-device physical I/Os.
//!
//! The planner is where the paper's cost model becomes concrete:
//!
//! * a logical **read** touches only the disks holding its data blocks
//!   (contiguous runs per disk are coalesced into single device requests);
//! * a logical **write** to a RAID-5 layout additionally pays the
//!   read-modify-write parity update — read old data, read old parity, write
//!   new data, write new parity — which is exactly the "4 additional I/Os
//!   (2 reads and 2 writes)" the paper charges for every dirty-block eviction
//!   (§5.1). When an entire parity column is overwritten, the old-data and
//!   old-parity reads are skipped (full-stripe write optimization).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use craid_diskmodel::{BlockRange, IoKind};

use crate::layout::Layout;
use crate::types::{DiskBlock, IoPurpose};

/// One physical I/O to be issued to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedIo {
    /// Target device index within the array.
    pub disk: usize,
    /// Physical block range on that device (partition-relative).
    pub range: BlockRange,
    /// Transfer direction.
    pub kind: IoKind,
    /// Why this I/O exists (data vs. parity maintenance).
    pub purpose: IoPurpose,
}

impl PlannedIo {
    /// Number of blocks moved by this I/O.
    pub fn blocks(&self) -> u64 {
        self.range.len()
    }
}

/// Plans device I/Os for logical requests over a [`Layout`].
///
/// # Example
///
/// ```
/// use craid_raid::{IoPlanner, Raid5Layout};
/// use craid_diskmodel::{BlockRange, IoKind};
///
/// let planner = IoPlanner::new(Raid5Layout::new(4, 4, 2, 16).unwrap());
/// // A single-block overwrite needs 4 device I/Os: old data, old parity,
/// // new data, new parity.
/// let plan = planner.plan(IoKind::Write, BlockRange::new(0, 1));
/// assert_eq!(plan.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct IoPlanner<L> {
    layout: L,
}

impl<L: Layout> IoPlanner<L> {
    /// Wraps a layout.
    pub fn new(layout: L) -> Self {
        IoPlanner { layout }
    }

    /// The wrapped layout.
    pub fn layout(&self) -> &L {
        &self.layout
    }

    /// Consumes the planner and returns the layout.
    pub fn into_layout(self) -> L {
        self.layout
    }

    /// Plans the device I/Os for a logical request.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond the layout's data capacity.
    pub fn plan(&self, kind: IoKind, range: BlockRange) -> Vec<PlannedIo> {
        let blocks: Vec<u64> = range.blocks().collect();
        self.plan_blocks(kind, &blocks)
    }

    /// Plans the device I/Os for an arbitrary (not necessarily contiguous)
    /// set of logical blocks. Used by CRAID when copying the scattered hot
    /// set into the cache partition.
    ///
    /// # Panics
    ///
    /// Panics if any block is beyond the layout's data capacity.
    pub fn plan_blocks(&self, kind: IoKind, logical_blocks: &[u64]) -> Vec<PlannedIo> {
        match kind {
            IoKind::Read => self.plan_reads(logical_blocks),
            IoKind::Write => self.plan_writes(logical_blocks),
        }
    }

    fn plan_reads(&self, logical_blocks: &[u64]) -> Vec<PlannedIo> {
        let locs: Vec<DiskBlock> = logical_blocks
            .iter()
            .map(|&b| self.layout.locate(b))
            .collect();
        coalesce(locs, IoKind::Read, IoPurpose::Data)
    }

    fn plan_writes(&self, logical_blocks: &[u64]) -> Vec<PlannedIo> {
        // Data writes.
        let data_locs: Vec<DiskBlock> = logical_blocks
            .iter()
            .map(|&b| self.layout.locate(b))
            .collect();
        let mut plan = coalesce(data_locs.clone(), IoKind::Write, IoPurpose::Data);

        // Parity maintenance. Group the written blocks by the parity block
        // that protects them.
        let per_parity_block =
            (self.layout.data_blocks_per_parity_stripe() / self.layout.stripe_unit()).max(1);
        let mut groups: BTreeMap<DiskBlock, Vec<DiskBlock>> = BTreeMap::new();
        for (&logical, &loc) in logical_blocks.iter().zip(&data_locs) {
            if let Some(parity) = self.layout.parity_for(logical) {
                groups.entry(parity).or_default().push(loc);
            }
        }
        if groups.is_empty() {
            return plan; // Layout without redundancy (RAID-0).
        }

        let mut old_data_reads = Vec::new();
        let mut parity_reads = Vec::new();
        let mut parity_writes = Vec::new();
        for (parity, written) in groups {
            let full_column = written.len() as u64 >= per_parity_block;
            if !full_column {
                // Read-modify-write: old data of the written blocks + old parity.
                old_data_reads.extend(written);
                parity_reads.push(parity);
            }
            parity_writes.push(parity);
        }
        plan.extend(coalesce(
            old_data_reads,
            IoKind::Read,
            IoPurpose::OldDataRead,
        ));
        plan.extend(coalesce(parity_reads, IoKind::Read, IoPurpose::ParityRead));
        plan.extend(coalesce(
            parity_writes,
            IoKind::Write,
            IoPurpose::ParityWrite,
        ));
        plan
    }
}

/// Merges physically contiguous blocks on the same disk into single I/Os.
fn coalesce(mut locs: Vec<DiskBlock>, kind: IoKind, purpose: IoPurpose) -> Vec<PlannedIo> {
    if locs.is_empty() {
        return Vec::new();
    }
    locs.sort_unstable();
    locs.dedup();
    let mut out = Vec::new();
    let mut run_disk = locs[0].disk;
    let mut run_start = locs[0].block;
    let mut run_len = 1u64;
    for loc in &locs[1..] {
        if loc.disk == run_disk && loc.block == run_start + run_len {
            run_len += 1;
        } else {
            out.push(PlannedIo {
                disk: run_disk,
                range: BlockRange::new(run_start, run_len),
                kind,
                purpose,
            });
            run_disk = loc.disk;
            run_start = loc.block;
            run_len = 1;
        }
    }
    out.push(PlannedIo {
        disk: run_disk,
        range: BlockRange::new(run_start, run_len),
        kind,
        purpose,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raid0::Raid0Layout;
    use crate::raid5::Raid5Layout;
    use proptest::prelude::*;

    fn raid5_planner() -> IoPlanner<Raid5Layout> {
        // 4 disks, one parity group of 4, unit 2, 16 blocks/disk.
        IoPlanner::new(Raid5Layout::new(4, 4, 2, 16).unwrap())
    }

    #[test]
    fn single_block_read_is_one_io() {
        let p = raid5_planner();
        let plan = p.plan(IoKind::Read, BlockRange::new(0, 1));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].kind, IoKind::Read);
        assert_eq!(plan[0].purpose, IoPurpose::Data);
        assert_eq!(plan[0].blocks(), 1);
    }

    #[test]
    fn contiguous_read_coalesces_per_disk() {
        let p = raid5_planner();
        // One stripe unit (2 blocks) lives on one disk → a 2-block read is 1 I/O.
        let plan = p.plan(IoKind::Read, BlockRange::new(0, 2));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].blocks(), 2);
        // Crossing into the next unit touches a second disk.
        let plan = p.plan(IoKind::Read, BlockRange::new(0, 3));
        assert_eq!(plan.len(), 2);
        let total: u64 = plan.iter().map(|io| io.blocks()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn small_write_pays_the_four_io_penalty() {
        let p = raid5_planner();
        let plan = p.plan(IoKind::Write, BlockRange::new(0, 1));
        let data_writes = plan
            .iter()
            .filter(|io| io.purpose == IoPurpose::Data)
            .count();
        let old_reads = plan
            .iter()
            .filter(|io| io.purpose == IoPurpose::OldDataRead)
            .count();
        let parity_reads = plan
            .iter()
            .filter(|io| io.purpose == IoPurpose::ParityRead)
            .count();
        let parity_writes = plan
            .iter()
            .filter(|io| io.purpose == IoPurpose::ParityWrite)
            .count();
        assert_eq!(
            (data_writes, old_reads, parity_reads, parity_writes),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn full_column_write_skips_reads() {
        let p = raid5_planner();
        // Row 0 offset 0 has 3 data blocks (logical 0, 2, 4 at offset 0).
        let plan = p.plan_blocks(IoKind::Write, &[0, 2, 4]);
        assert!(plan.iter().all(|io| io.purpose != IoPurpose::OldDataRead));
        assert!(plan.iter().all(|io| io.purpose != IoPurpose::ParityRead));
        assert_eq!(
            plan.iter()
                .filter(|io| io.purpose == IoPurpose::ParityWrite)
                .count(),
            1
        );
    }

    #[test]
    fn raid0_write_has_no_parity_traffic() {
        let p = IoPlanner::new(Raid0Layout::new(4, 2, 16).unwrap());
        let plan = p.plan(IoKind::Write, BlockRange::new(0, 8));
        assert!(plan.iter().all(|io| io.purpose == IoPurpose::Data));
        assert!(plan.iter().all(|io| io.kind == IoKind::Write));
    }

    #[test]
    fn plan_blocks_accepts_scattered_input() {
        let p = raid5_planner();
        let plan = p.plan_blocks(IoKind::Read, &[0, 7, 13, 1]);
        let total: u64 = plan.iter().map(|io| io.blocks()).sum();
        assert_eq!(total, 4);
        // Blocks 0 and 1 are contiguous on one disk and must be coalesced.
        assert!(plan.iter().any(|io| io.blocks() == 2));
    }

    #[test]
    fn duplicate_blocks_are_deduplicated() {
        let p = raid5_planner();
        let plan = p.plan_blocks(IoKind::Read, &[5, 5, 5]);
        let total: u64 = plan.iter().map(|io| io.blocks()).sum();
        assert_eq!(total, 1);
    }

    proptest! {
        /// Reads never generate parity traffic and always move exactly the
        /// requested number of distinct blocks.
        #[test]
        fn prop_reads_move_exact_blocks(start in 0u64..30, len in 1u64..12) {
            let p = raid5_planner();
            let cap = p.layout().data_capacity();
            let start = start.min(cap - 1);
            let len = len.min(cap - start);
            let plan = p.plan(IoKind::Read, BlockRange::new(start, len));
            prop_assert!(plan.iter().all(|io| io.purpose == IoPurpose::Data && io.kind == IoKind::Read));
            let total: u64 = plan.iter().map(|io| io.blocks()).sum();
            prop_assert_eq!(total, len);
        }

        /// For RAID-5 writes the number of data blocks written equals the
        /// request size, every touched parity column is written exactly once,
        /// and parity reads only happen for partial columns.
        #[test]
        fn prop_write_parity_accounting(start in 0u64..30, len in 1u64..12) {
            let p = raid5_planner();
            let cap = p.layout().data_capacity();
            let start = start.min(cap - 1);
            let len = len.min(cap - start);
            let plan = p.plan(IoKind::Write, BlockRange::new(start, len));
            let data: u64 = plan.iter().filter(|io| io.purpose == IoPurpose::Data).map(|io| io.blocks()).sum();
            prop_assert_eq!(data, len);
            let parity_reads: u64 = plan.iter().filter(|io| io.purpose == IoPurpose::ParityRead).map(|io| io.blocks()).sum();
            let parity_writes: u64 = plan.iter().filter(|io| io.purpose == IoPurpose::ParityWrite).map(|io| io.blocks()).sum();
            prop_assert!(parity_writes >= 1);
            prop_assert!(parity_reads <= parity_writes, "cannot read more parity than we rewrite");
            // Device targets of data writes never coincide with the parity
            // block being rewritten at the same physical address.
            for a in plan.iter().filter(|io| io.purpose == IoPurpose::Data) {
                for b in plan.iter().filter(|io| io.purpose == IoPurpose::ParityWrite) {
                    if a.disk == b.disk {
                        prop_assert!(!a.range.overlaps(b.range));
                    }
                }
            }
        }
    }
}
