//! RAID-0: rotating stripes without redundancy.
//!
//! The paper evaluates CRAID variants whose cache partition uses RAID-0 (its
//! results are relegated to a technical report for space), and RAID-0 is also
//! the cheapest layout to reason about in tests, so it is kept as a first
//! class citizen here.

use serde::{Deserialize, Serialize};

use crate::layout::Layout;
use crate::types::{DiskBlock, LayoutError};

/// A RAID-0 layout over `disks` devices.
///
/// Logical stripe units are placed round-robin across the devices; there is
/// no parity, so the whole per-disk area is usable for data.
///
/// # Example
///
/// ```
/// use craid_raid::{Layout, Raid0Layout};
///
/// let l = Raid0Layout::new(4, 2, 16).unwrap();
/// assert_eq!(l.data_capacity(), 4 * 16);
/// assert_eq!(l.locate(0).disk, 0);
/// assert_eq!(l.locate(2).disk, 1); // next stripe unit, next disk
/// assert_eq!(l.parity_for(0), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Raid0Layout {
    disks: usize,
    stripe_unit: u64,
    blocks_per_disk: u64,
}

impl Raid0Layout {
    /// Creates a RAID-0 layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if fewer than two disks are given, the stripe
    /// unit is zero, or the per-disk block count is not a positive multiple
    /// of the stripe unit.
    pub fn new(disks: usize, stripe_unit: u64, blocks_per_disk: u64) -> Result<Self, LayoutError> {
        if disks < 2 {
            return Err(LayoutError::NotEnoughDisks {
                got: disks,
                need: 2,
            });
        }
        if stripe_unit == 0 {
            return Err(LayoutError::InvalidGeometry(
                "stripe unit must be positive".into(),
            ));
        }
        if blocks_per_disk == 0 || !blocks_per_disk.is_multiple_of(stripe_unit) {
            return Err(LayoutError::InvalidGeometry(format!(
                "blocks per disk ({blocks_per_disk}) must be a positive multiple of the stripe unit ({stripe_unit})"
            )));
        }
        Ok(Raid0Layout {
            disks,
            stripe_unit,
            blocks_per_disk,
        })
    }

    fn rows(&self) -> u64 {
        self.blocks_per_disk / self.stripe_unit
    }
}

impl Layout for Raid0Layout {
    fn disk_count(&self) -> usize {
        self.disks
    }

    fn data_capacity(&self) -> u64 {
        self.rows() * self.disks as u64 * self.stripe_unit
    }

    fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    fn blocks_per_disk(&self) -> u64 {
        self.blocks_per_disk
    }

    fn locate(&self, logical: u64) -> DiskBlock {
        assert!(
            logical < self.data_capacity(),
            "logical block {logical} beyond capacity {}",
            self.data_capacity()
        );
        let unit = logical / self.stripe_unit;
        let offset = logical % self.stripe_unit;
        let disk = (unit % self.disks as u64) as usize;
        let row = unit / self.disks as u64;
        DiskBlock::new(disk, row * self.stripe_unit + offset)
    }

    fn parity_for(&self, logical: u64) -> Option<DiskBlock> {
        assert!(
            logical < self.data_capacity(),
            "logical block {logical} beyond capacity {}",
            self.data_capacity()
        );
        None
    }

    fn data_blocks_per_parity_stripe(&self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn capacity_uses_every_block() {
        let l = Raid0Layout::new(5, 4, 40).unwrap();
        assert_eq!(l.data_capacity(), 5 * 40);
        assert_eq!(l.blocks_per_disk(), 40);
        assert_eq!(l.stripe_unit(), 4);
        assert!(l.uses_all_disks());
    }

    #[test]
    fn round_robin_rotation() {
        let l = Raid0Layout::new(3, 2, 8).unwrap();
        // units: 0->d0, 1->d1, 2->d2, 3->d0 (next row)
        assert_eq!(l.locate(0), DiskBlock::new(0, 0));
        assert_eq!(l.locate(1), DiskBlock::new(0, 1));
        assert_eq!(l.locate(2), DiskBlock::new(1, 0));
        assert_eq!(l.locate(4), DiskBlock::new(2, 0));
        assert_eq!(l.locate(6), DiskBlock::new(0, 2));
    }

    #[test]
    fn no_parity() {
        let l = Raid0Layout::new(3, 2, 8).unwrap();
        for b in 0..l.data_capacity() {
            assert_eq!(l.parity_for(b), None);
        }
        assert_eq!(l.data_blocks_per_parity_stripe(), 1);
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            Raid0Layout::new(1, 2, 8),
            Err(LayoutError::NotEnoughDisks { .. })
        ));
        assert!(Raid0Layout::new(2, 0, 8).is_err());
        assert!(
            Raid0Layout::new(2, 3, 8).is_err(),
            "8 is not a multiple of 3"
        );
        assert!(Raid0Layout::new(2, 2, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_locate_panics() {
        let l = Raid0Layout::new(2, 2, 4).unwrap();
        l.locate(l.data_capacity());
    }

    proptest! {
        /// The logical-to-physical mapping is a bijection: no two logical
        /// blocks land on the same physical block.
        #[test]
        fn prop_mapping_is_injective(disks in 2usize..9, unit in 1u64..9, rows in 1u64..9) {
            let l = Raid0Layout::new(disks, unit, rows * unit).unwrap();
            let mut seen = HashSet::new();
            for b in 0..l.data_capacity() {
                let loc = l.locate(b);
                prop_assert!(loc.disk < disks);
                prop_assert!(loc.block < l.blocks_per_disk());
                prop_assert!(seen.insert(loc), "physical block {loc} mapped twice");
            }
            // Injective over equal-size finite sets means bijective.
            prop_assert_eq!(seen.len() as u64, l.data_capacity());
        }

        /// Consecutive logical blocks within one stripe unit stay physically
        /// contiguous on the same disk.
        #[test]
        fn prop_stripe_units_are_contiguous(disks in 2usize..6, unit in 2u64..8, rows in 1u64..6) {
            let l = Raid0Layout::new(disks, unit, rows * unit).unwrap();
            for b in 0..l.data_capacity() - 1 {
                if (b + 1) % unit != 0 {
                    let a = l.locate(b);
                    let c = l.locate(b + 1);
                    prop_assert_eq!(a.disk, c.disk);
                    prop_assert_eq!(a.block + 1, c.block);
                }
            }
        }
    }
}
