//! The [`Layout`] trait: how logical volume blocks map onto devices.

use crate::types::DiskBlock;

/// A deterministic mapping from a volume's logical block space onto the
/// physical blocks of an array of devices.
///
/// Implementations are pure address arithmetic: they do not talk to devices
/// and hold no per-request state, so the same layout value can be shared by
/// the planner, the simulator and the reshape cost analysis.
///
/// Physical block numbers returned by a layout are *partition relative*:
/// block 0 is the first block of whichever per-disk region the caller gives
/// to this layout (CRAID places its cache partition before the archive
/// partition on every disk and adds the base offsets itself).
pub trait Layout {
    /// Number of devices this layout spreads data over.
    fn disk_count(&self) -> usize;

    /// Number of logical data blocks addressable through this layout.
    fn data_capacity(&self) -> u64;

    /// Blocks per stripe unit (the contiguous run placed on one disk before
    /// moving to the next).
    fn stripe_unit(&self) -> u64;

    /// Number of physical blocks this layout occupies on every disk
    /// (data + parity).
    fn blocks_per_disk(&self) -> u64;

    /// Maps a logical data block to its physical location.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= self.data_capacity()`.
    fn locate(&self, logical: u64) -> DiskBlock;

    /// Location of the parity block protecting `logical`, or `None` for
    /// layouts without redundancy.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= self.data_capacity()`.
    fn parity_for(&self, logical: u64) -> Option<DiskBlock>;

    /// Number of data blocks covered by one parity block (i.e. the data
    /// blocks of one parity-group row). Returns 1 for layouts without parity
    /// so that callers can still reason about full-stripe writes uniformly.
    fn data_blocks_per_parity_stripe(&self) -> u64;

    /// The other members of `disk`'s parity group — the `G - 1` disks whose
    /// blocks at the same row offset reconstruct any block lost from `disk`
    /// (degraded reads, rebuild onto a hot spare). Empty for layouts without
    /// redundancy or when `disk` is outside the layout.
    fn reconstruction_peers(&self, _disk: usize) -> Vec<usize> {
        Vec::new()
    }

    /// True if every device index in `0..disk_count()` receives at least one
    /// data or parity block. Useful as a sanity check in tests.
    fn uses_all_disks(&self) -> bool {
        let mut seen = vec![false; self.disk_count()];
        let probe = self.data_capacity().min(64 * 1024);
        for logical in 0..probe {
            seen[self.locate(logical).disk] = true;
            if let Some(p) = self.parity_for(logical) {
                seen[p.disk] = true;
            }
            if seen.iter().all(|&s| s) {
                return true;
            }
        }
        seen.iter().all(|&s| s)
    }
}
