//! RAID-5 with parity groups.
//!
//! This is the layout of the paper's `RAID-5` baseline (its Fig. 3a) and of
//! the CRAID cache partition: stripes are "as long as possible" — they span
//! every disk of the array — but parity rotates independently inside each
//! *parity group* of `G` disks, which bounds the damage of a double failure
//! and keeps reconstruction traffic local to a group. The paper's testbed
//! uses 50 disks with a parity-group size of 10.

use serde::{Deserialize, Serialize};

use crate::layout::Layout;
use crate::types::{DiskBlock, LayoutError};

/// A RAID-5 layout over `disks` devices with rotating parity inside each
/// parity group.
///
/// # Geometry
///
/// The per-disk area is divided into rows of one stripe unit each. In row
/// `r`, every parity group `g` (disks `g*G .. (g+1)*G`) dedicates one disk to
/// parity — disk `g*G + (G-1 - (r mod G))`, so parity rotates right-to-left
/// as in the classic left-symmetric layout — and the remaining `G-1` disks of
/// the group hold data. Logical stripe units fill the data slots of a row in
/// disk order before moving to the next row.
///
/// # Example
///
/// ```
/// use craid_raid::{Layout, Raid5Layout};
///
/// // The paper's testbed shape, scaled down: 10 disks, groups of 5.
/// let l = Raid5Layout::new(10, 5, 32, 320).unwrap();
/// assert_eq!(l.disk_count(), 10);
/// // 2 groups × 1 parity disk each → 8 data units per row.
/// assert_eq!(l.data_capacity(), 10 * 320 * 8 / 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Raid5Layout {
    disks: usize,
    group: usize,
    stripe_unit: u64,
    blocks_per_disk: u64,
}

impl Raid5Layout {
    /// Creates a RAID-5 layout.
    ///
    /// `disks` must be a multiple of `group`, and `group` must be at least 2
    /// (one data + one parity disk per row).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] when the geometry is inconsistent.
    pub fn new(
        disks: usize,
        group: usize,
        stripe_unit: u64,
        blocks_per_disk: u64,
    ) -> Result<Self, LayoutError> {
        if disks < 2 {
            return Err(LayoutError::NotEnoughDisks {
                got: disks,
                need: 2,
            });
        }
        if group < 2 {
            return Err(LayoutError::InvalidGeometry(
                "parity group needs at least 2 disks".into(),
            ));
        }
        if !disks.is_multiple_of(group) {
            return Err(LayoutError::UnalignedParityGroup { disks, group });
        }
        if stripe_unit == 0 {
            return Err(LayoutError::InvalidGeometry(
                "stripe unit must be positive".into(),
            ));
        }
        if blocks_per_disk == 0 || !blocks_per_disk.is_multiple_of(stripe_unit) {
            return Err(LayoutError::InvalidGeometry(format!(
                "blocks per disk ({blocks_per_disk}) must be a positive multiple of the stripe unit ({stripe_unit})"
            )));
        }
        Ok(Raid5Layout {
            disks,
            group,
            stripe_unit,
            blocks_per_disk,
        })
    }

    /// A layout matching the paper's stand-alone RAID-5 baseline: all `disks`
    /// devices, parity groups of `group`, 128 KiB stripe unit.
    pub fn paper_baseline(
        disks: usize,
        group: usize,
        blocks_per_disk: u64,
    ) -> Result<Self, LayoutError> {
        Self::new(
            disks,
            group,
            crate::types::STRIPE_UNIT_BLOCKS_128K,
            blocks_per_disk,
        )
    }

    /// Parity group width.
    pub fn parity_group(&self) -> usize {
        self.group
    }

    /// Number of parity groups.
    pub fn group_count(&self) -> usize {
        self.disks / self.group
    }

    fn rows(&self) -> u64 {
        self.blocks_per_disk / self.stripe_unit
    }

    /// Data stripe units per row (across all parity groups).
    fn data_units_per_row(&self) -> u64 {
        (self.disks - self.group_count()) as u64
    }

    /// The disk holding parity for parity group `g` in row `r`.
    fn parity_disk(&self, row: u64, g: usize) -> usize {
        let within = self.group - 1 - (row as usize % self.group);
        g * self.group + within
    }

    /// Decomposes a logical block into (row, data-slot index within the row,
    /// offset within the stripe unit).
    fn decompose(&self, logical: u64) -> (u64, u64, u64) {
        let unit = logical / self.stripe_unit;
        let offset = logical % self.stripe_unit;
        let row = unit / self.data_units_per_row();
        let slot = unit % self.data_units_per_row();
        (row, slot, offset)
    }

    /// The disk holding the `slot`-th data unit of row `row`.
    fn data_disk(&self, row: u64, slot: u64) -> usize {
        // Walk the disks in order, skipping each group's parity disk.
        // slot is in [0, disks - group_count).
        let per_group_data = (self.group - 1) as u64;
        let g = (slot / per_group_data) as usize;
        let idx_in_group = (slot % per_group_data) as usize;
        let parity_within = self.group - 1 - (row as usize % self.group);
        // Data slots of the group are the disks except the parity one, in order.
        let disk_within = if idx_in_group < parity_within {
            idx_in_group
        } else {
            idx_in_group + 1
        };
        g * self.group + disk_within
    }
}

impl Layout for Raid5Layout {
    fn disk_count(&self) -> usize {
        self.disks
    }

    fn data_capacity(&self) -> u64 {
        self.rows() * self.data_units_per_row() * self.stripe_unit
    }

    fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    fn blocks_per_disk(&self) -> u64 {
        self.blocks_per_disk
    }

    fn locate(&self, logical: u64) -> DiskBlock {
        assert!(
            logical < self.data_capacity(),
            "logical block {logical} beyond capacity {}",
            self.data_capacity()
        );
        let (row, slot, offset) = self.decompose(logical);
        let disk = self.data_disk(row, slot);
        DiskBlock::new(disk, row * self.stripe_unit + offset)
    }

    fn parity_for(&self, logical: u64) -> Option<DiskBlock> {
        assert!(
            logical < self.data_capacity(),
            "logical block {logical} beyond capacity {}",
            self.data_capacity()
        );
        let (row, slot, offset) = self.decompose(logical);
        let per_group_data = (self.group - 1) as u64;
        let g = (slot / per_group_data) as usize;
        let disk = self.parity_disk(row, g);
        Some(DiskBlock::new(disk, row * self.stripe_unit + offset))
    }

    fn data_blocks_per_parity_stripe(&self) -> u64 {
        (self.group as u64 - 1) * self.stripe_unit
    }

    fn reconstruction_peers(&self, disk: usize) -> Vec<usize> {
        if disk >= self.disks {
            return Vec::new();
        }
        let g = disk / self.group;
        (g * self.group..(g + 1) * self.group)
            .filter(|&d| d != disk)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{HashMap, HashSet};

    fn small() -> Raid5Layout {
        // 8 disks, groups of 4, stripe unit 2 blocks, 16 blocks per disk.
        Raid5Layout::new(8, 4, 2, 16).unwrap()
    }

    #[test]
    fn capacity_excludes_parity() {
        let l = small();
        // 8 rows, each row has 8 - 2 = 6 data units of 2 blocks.
        assert_eq!(l.data_capacity(), 8 * 6 * 2);
        assert_eq!(l.data_blocks_per_parity_stripe(), 3 * 2);
        assert_eq!(l.group_count(), 2);
        assert!(l.uses_all_disks());
    }

    #[test]
    fn parity_rotates_across_rows() {
        let l = small();
        let mut parity_disks_group0 = HashSet::new();
        for row in 0..4u64 {
            parity_disks_group0.insert(l.parity_disk(row, 0));
        }
        assert_eq!(
            parity_disks_group0,
            HashSet::from([0, 1, 2, 3]),
            "every disk of group 0 takes a parity turn"
        );
    }

    #[test]
    fn parity_never_collides_with_its_data() {
        let l = small();
        for b in 0..l.data_capacity() {
            let d = l.locate(b);
            let p = l.parity_for(b).unwrap();
            assert_ne!(
                d.disk, p.disk,
                "data and parity on the same disk for block {b}"
            );
            // Parity lives in the same group as the data it protects.
            assert_eq!(d.disk / 4, p.disk / 4);
            // And at the same row offset.
            assert_eq!(d.block, p.block);
        }
    }

    #[test]
    fn paper_testbed_shape() {
        // 50 disks, parity groups of 10, 128 KiB units — the evaluation setup.
        let l = Raid5Layout::paper_baseline(50, 10, 32 * 100).unwrap();
        assert_eq!(l.disk_count(), 50);
        assert_eq!(l.group_count(), 5);
        assert_eq!(l.stripe_unit(), 32);
        // 45 of every 50 stripe units hold data.
        assert_eq!(l.data_capacity(), 100 * 45 * 32);
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            Raid5Layout::new(50, 7, 32, 320),
            Err(LayoutError::UnalignedParityGroup { .. })
        ));
        assert!(Raid5Layout::new(1, 1, 32, 320).is_err());
        assert!(Raid5Layout::new(4, 1, 32, 320).is_err());
        assert!(Raid5Layout::new(4, 2, 0, 320).is_err());
        assert!(Raid5Layout::new(4, 2, 32, 33).is_err());
    }

    #[test]
    fn reconstruction_peers_are_the_rest_of_the_parity_group() {
        let l = small(); // 8 disks, groups of 4
        assert_eq!(l.reconstruction_peers(0), vec![1, 2, 3]);
        assert_eq!(l.reconstruction_peers(2), vec![0, 1, 3]);
        assert_eq!(l.reconstruction_peers(5), vec![4, 6, 7]);
        assert!(l.reconstruction_peers(8).is_empty(), "out of range");
        // Reading the peers at a lost block's row offset covers the row's
        // surviving data and parity — exactly the reconstruction set.
        for b in 0..l.data_capacity() {
            let d = l.locate(b);
            let p = l.parity_for(b).unwrap();
            let peers = l.reconstruction_peers(d.disk);
            assert_eq!(peers.len(), 3);
            assert!(peers.contains(&p.disk), "parity disk is a peer of its data");
            assert!(!peers.contains(&d.disk));
        }
    }

    #[test]
    fn row_fill_order_is_disk_order() {
        let l = small();
        // Row 0: parity of each group is the last disk of the group (3 and 7).
        assert_eq!(l.locate(0), DiskBlock::new(0, 0));
        assert_eq!(l.locate(2), DiskBlock::new(1, 0));
        assert_eq!(l.locate(4), DiskBlock::new(2, 0));
        assert_eq!(
            l.locate(6),
            DiskBlock::new(4, 0),
            "disk 3 is parity in row 0"
        );
        assert_eq!(l.parity_for(0).unwrap(), DiskBlock::new(3, 0));
        assert_eq!(l.parity_for(6).unwrap(), DiskBlock::new(7, 0));
    }

    proptest! {
        /// Data mapping is injective and stays inside the declared geometry.
        #[test]
        fn prop_data_mapping_injective(groups in 1usize..4, group in 2usize..6,
                                       unit in 1u64..5, rows in 1u64..6) {
            let disks = groups * group;
            let l = Raid5Layout::new(disks, group, unit, rows * unit).unwrap();
            let mut seen = HashSet::new();
            for b in 0..l.data_capacity() {
                let loc = l.locate(b);
                prop_assert!(loc.disk < disks);
                prop_assert!(loc.block < l.blocks_per_disk());
                prop_assert!(seen.insert(loc));
            }
        }

        /// Data blocks never land on the row's parity slot of their group.
        #[test]
        fn prop_data_avoids_parity_slots(groups in 1usize..3, group in 2usize..6,
                                         unit in 1u64..4, rows in 1u64..5) {
            let disks = groups * group;
            let l = Raid5Layout::new(disks, group, unit, rows * unit).unwrap();
            for b in 0..l.data_capacity() {
                let d = l.locate(b);
                let p = l.parity_for(b).unwrap();
                prop_assert_ne!(d, p);
                prop_assert_ne!(d.disk, p.disk);
            }
        }

        /// Load is balanced: over all rows, every disk receives the same
        /// number of data+parity stripe units (the property an "ideal
        /// RAID-5" is prized for in the paper).
        #[test]
        fn prop_units_per_disk_balanced(groups in 1usize..3, group in 2usize..5, rows in 1u64..5) {
            let unit = 1u64;
            let disks = groups * group;
            let l = Raid5Layout::new(disks, group, unit, rows * group as u64 * unit).unwrap();
            let mut per_disk: HashMap<usize, u64> = HashMap::new();
            for b in 0..l.data_capacity() {
                *per_disk.entry(l.locate(b).disk).or_default() += 1;
            }
            // Count parity once per (row, group).
            for row in 0..l.rows() {
                for g in 0..l.group_count() {
                    *per_disk.entry(l.parity_disk(row, g)).or_default() += 1;
                }
            }
            let counts: Vec<u64> = (0..disks).map(|d| per_disk.get(&d).copied().unwrap_or(0)).collect();
            let first = counts[0];
            prop_assert!(counts.iter().all(|&c| c == first), "unbalanced unit counts {:?}", counts);
        }
    }
}
