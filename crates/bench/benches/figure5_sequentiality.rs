//! Figure 5 — sequential-access distribution (CDF) for cello99 and webusers.
//!
//! The paper's explanation for CRAID's read performance: co-locating the hot
//! set in a small partition makes device-level access patterns about as
//! sequential as an ideal RAID-5 and clearly more sequential than RAID-5+.
//! The four-strategy comparison is one `Campaign::sweep` at a fixed
//! partition fraction.

use craid::{CraidError, StrategyKind};
use craid_bench::{header_row, pct, print_header, row, Sweep};
use craid_trace::WorkloadId;

const STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Raid5,
    StrategyKind::Raid5Plus,
    StrategyKind::Craid5,
    StrategyKind::Craid5Plus,
];

const PC_FRACTION: f64 = 0.2;

fn main() -> Result<(), CraidError> {
    print_header(
        "Figure 5",
        "sequential access distribution per strategy (cello99, webusers)",
    );
    let workloads = [WorkloadId::Cello99, WorkloadId::Webusers];
    let sweep = Sweep::run(&workloads, &[PC_FRACTION], &STRATEGIES)?;

    for id in workloads {
        println!("\n[{}]", id);
        println!(
            "{}",
            header_row(&["strategy", "overall seq", "p25 /s", "median /s", "p75 /s"])
        );
        for &strategy in &STRATEGIES {
            let report = sweep.report(id, PC_FRACTION, strategy);
            let cdf = &report.sequentiality_cdf;
            let at = |frac: f64| -> f64 {
                cdf.iter()
                    .find(|(_, p)| *p >= frac)
                    .map(|(v, _)| *v)
                    .unwrap_or(0.0)
            };
            println!(
                "{}",
                row(&[
                    strategy.name().to_string(),
                    pct(report.sequential_fraction),
                    format!("{:.1}%", at(0.25)),
                    format!("{:.1}%", at(0.5)),
                    format!("{:.1}%", at(0.75)),
                ])
            );
        }
        let seq_of = |s| sweep.report(id, PC_FRACTION, s).sequential_fraction;
        let raid5 = seq_of(StrategyKind::Raid5);
        let raid5p = seq_of(StrategyKind::Raid5Plus);
        let craid5 = seq_of(StrategyKind::Craid5);
        let craid5p = seq_of(StrategyKind::Craid5Plus);
        assert!(
            craid5 > raid5p && craid5p > raid5p,
            "{id}: CRAID sequentiality ({craid5:.3}/{craid5p:.3}) must beat RAID-5+ ({raid5p:.3})"
        );
        println!(
            "  -> CRAID-5 sequentiality is {:.1}x RAID-5+'s (ideal RAID-5 at {:.1}%)",
            craid5 / raid5p.max(1e-6),
            raid5 * 100.0
        );
    }
    println!("\nAs in the paper: the cache partition restores the sequentiality an aggregated");
    println!("RAID-5+ loses, bringing it close to the ideal RAID-5.");
    Ok(())
}
