//! Figure 5 — sequential-access distribution (CDF) for cello99 and webusers.
//!
//! The paper's explanation for CRAID's read performance: co-locating the hot
//! set in a small partition makes device-level access patterns about as
//! sequential as an ideal RAID-5 and clearly more sequential than RAID-5+.

use craid::StrategyKind;
use craid_bench::{gen_trace, header_row, parallel_map, pct, print_header, row};
use craid_trace::WorkloadId;

const STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Raid5,
    StrategyKind::Raid5Plus,
    StrategyKind::Craid5,
    StrategyKind::Craid5Plus,
];

fn main() {
    print_header(
        "Figure 5",
        "sequential access distribution per strategy (cello99, webusers)",
    );
    for id in [WorkloadId::Cello99, WorkloadId::Webusers] {
        let trace = gen_trace(id);
        let reports = parallel_map(STRATEGIES.to_vec(), |&s| {
            craid_bench::run_strategy(s, &trace, 0.2)
        });
        println!("\n[{}]", id);
        println!(
            "{}",
            header_row(&["strategy", "overall seq", "p25 /s", "median /s", "p75 /s"])
        );
        for (strategy, report) in STRATEGIES.iter().zip(&reports) {
            let cdf = &report.sequentiality_cdf;
            let at = |frac: f64| -> f64 {
                cdf.iter()
                    .find(|(_, p)| *p >= frac)
                    .map(|(v, _)| *v)
                    .unwrap_or(0.0)
            };
            println!(
                "{}",
                row(&[
                    strategy.name().to_string(),
                    pct(report.sequential_fraction),
                    format!("{:.1}%", at(0.25)),
                    format!("{:.1}%", at(0.5)),
                    format!("{:.1}%", at(0.75)),
                ])
            );
        }
        let raid5 = reports[0].sequential_fraction;
        let raid5p = reports[1].sequential_fraction;
        let craid5 = reports[2].sequential_fraction;
        let craid5p = reports[3].sequential_fraction;
        assert!(
            craid5 > raid5p && craid5p > raid5p,
            "{id}: CRAID sequentiality ({craid5:.3}/{craid5p:.3}) must beat RAID-5+ ({raid5p:.3})"
        );
        println!(
            "  -> CRAID-5 sequentiality is {:.1}x RAID-5+'s (ideal RAID-5 at {:.1}%)",
            craid5 / raid5p.max(1e-6),
            raid5 * 100.0
        );
    }
    println!("\nAs in the paper: the cache partition restores the sequentiality an aggregated");
    println!("RAID-5+ loses, bringing it close to the ideal RAID-5.");
}
