//! Table 4 — best hit ratio and worst eviction ratio over all CRAID
//! simulations of the response-time sweep, declared as one `Campaign::sweep`.

use craid::{CraidError, StrategyKind};
use craid_bench::{header_row, pct, print_header, row, workloads, Sweep, PC_SWEEP};

fn main() -> Result<(), CraidError> {
    print_header(
        "Table 4",
        "best hit ratio and worst eviction ratio across the Figure 4/6 sweep",
    );
    println!(
        "{}",
        header_row(&[
            "trace",
            "best hit rd",
            "best hit wr",
            "worst evict rd",
            "worst evict wr"
        ])
    );
    let all = workloads();
    let sweep = Sweep::run(&all, &PC_SWEEP, &[StrategyKind::Craid5])?;
    for id in all {
        let craid: Vec<_> = PC_SWEEP
            .iter()
            .filter_map(|&frac| sweep.report(id, frac, StrategyKind::Craid5).craid)
            .collect();
        let best_hit_rd = craid.iter().map(|c| c.read_hit_ratio).fold(0.0, f64::max);
        let best_hit_wr = craid.iter().map(|c| c.write_hit_ratio).fold(0.0, f64::max);
        let worst_ev_rd = craid
            .iter()
            .map(|c| c.read_eviction_ratio)
            .fold(0.0, f64::max);
        let worst_ev_wr = craid
            .iter()
            .map(|c| c.write_eviction_ratio)
            .fold(0.0, f64::max);
        println!(
            "{}",
            row(&[
                id.name().to_string(),
                pct(best_hit_rd),
                pct(best_hit_wr),
                pct(worst_ev_rd),
                pct(worst_ev_wr),
            ])
        );
        assert!(
            best_hit_rd.max(best_hit_wr) > 0.3,
            "{id}: the largest partition should reach a solid hit ratio"
        );
    }
    println!("\nAs in the paper, hit ratios at the largest partition size are high for every");
    println!("workload, and the workloads with the largest, most diverse footprints (proj)");
    println!("show the lowest best-case hit ratio and the highest eviction pressure.");
    Ok(())
}
