//! Criterion microbenchmarks of the hot data structures on CRAID's control
//! path: mapping-cache lookups, replacement-policy accesses and RAID-5 I/O
//! planning. These are the operations a real controller would execute per
//! block, so their cost bounds the throughput of the design.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use craid::MappingCache;
use craid_cache::{AccessMeta, PolicyKind};
use craid_diskmodel::{BlockRange, IoKind};
use craid_raid::{IoPlanner, Layout, Raid5Layout};

fn bench_mapping_cache(c: &mut Criterion) {
    let mut map = MappingCache::new();
    for b in 0..100_000u64 {
        map.insert(b * 7, b, b % 3 == 0);
    }
    c.bench_function("mapping_cache_lookup_100k", |b| {
        let mut probe = 0u64;
        b.iter(|| {
            probe = (probe + 7_777) % 700_000;
            black_box(map.lookup(probe))
        })
    });
}

fn bench_policy_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_access");
    for kind in PolicyKind::paper_set() {
        let mut policy = kind.build(8_192);
        let meta = AccessMeta::read(8);
        let mut block = 0u64;
        group.bench_function(kind.to_string(), |b| {
            b.iter(|| {
                block = (block * 1_103_515_245 + 12_345) % 65_536;
                black_box(policy.access(block, meta))
            })
        });
    }
    group.finish();
}

fn bench_io_planner(c: &mut Criterion) {
    let planner = IoPlanner::new(Raid5Layout::new(50, 10, 8, 8 * 1024).unwrap());
    c.bench_function("raid5_plan_8_block_write", |b| {
        let mut start = 0u64;
        b.iter(|| {
            start = (start + 4_321) % (planner.layout().data_capacity() - 8);
            black_box(planner.plan(IoKind::Write, BlockRange::new(start, 8)))
        })
    });
    c.bench_function("raid5_plan_64_block_read", |b| {
        let mut start = 0u64;
        b.iter(|| {
            start = (start + 9_973) % (planner.layout().data_capacity() - 64);
            black_box(planner.plan(IoKind::Read, BlockRange::new(start, 64)))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_mapping_cache, bench_policy_access, bench_io_planner
);
criterion_main!(benches);
