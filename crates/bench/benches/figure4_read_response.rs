//! Figure 4 — read response time vs. cache-partition size.
//!
//! For every workload, prints the mean read response time of the two
//! baselines (RAID-5, RAID-5+) and of the four CRAID variants across the
//! cache-partition sweep. The shapes to look for, as in the paper:
//! RAID-5+ is clearly slower than RAID-5; CRAID-5 / CRAID-5+ track the ideal
//! RAID-5 (and improve with larger partitions); the SSD-cached variants are
//! at least as fast on reads.
//!
//! The whole experiment matrix is declared as one `Campaign::sweep` (plus a
//! one-fraction sweep for the partition-independent baselines) and executed
//! in parallel by the engine.

use craid::{CraidError, StrategyKind};
use craid_bench::{header_row, print_header, row, workloads, Sweep, CRAID_STRATEGIES, PC_SWEEP};

fn main() -> Result<(), CraidError> {
    print_header(
        "Figure 4",
        "comparison of I/O response time (read requests), ms",
    );
    let all = workloads();
    let sweep = Sweep::with_baselines(&all, &PC_SWEEP, &CRAID_STRATEGIES)?;
    let baselines = &sweep;

    for id in all {
        let raid5 = baselines.report(id, PC_SWEEP[0], StrategyKind::Raid5);
        let raid5p = baselines.report(id, PC_SWEEP[0], StrategyKind::Raid5Plus);
        println!(
            "\n[{}]  baselines: RAID-5 = {:.2} ms   RAID-5+ = {:.2} ms",
            id, raid5.read.mean_ms, raid5p.read.mean_ms
        );
        let mut header = vec!["pc fraction".to_string()];
        header.extend(CRAID_STRATEGIES.iter().map(|s| s.name().to_string()));
        println!(
            "{}",
            header_row(&header.iter().map(String::as_str).collect::<Vec<_>>())
        );

        for &frac in &PC_SWEEP {
            let mut cells = vec![format!("{frac:.2}")];
            for &strategy in &CRAID_STRATEGIES {
                cells.push(format!(
                    "{:.2}",
                    sweep.report(id, frac, strategy).read.mean_ms
                ));
            }
            println!("{}", row(&cells));
        }

        // Shape checks (only where the workload actually issues reads):
        // the paper's CRAID claims — response times improve as the cache
        // partition grows, CRAID-5+ tracks CRAID-5 (the archive layout stops
        // mattering once PC absorbs the hot set), and a large-partition
        // CRAID-5 is competitive with the ideally restriped RAID-5.
        if raid5.read.count > 100 {
            let largest = *PC_SWEEP.last().expect("sweep is non-empty");
            let craid5_smallest = sweep.report(id, PC_SWEEP[0], StrategyKind::Craid5);
            let craid5_largest = sweep.report(id, largest, StrategyKind::Craid5);
            let craid5p_largest = sweep.report(id, largest, StrategyKind::Craid5Plus);
            assert!(
                craid5_largest.read.mean_ms <= craid5_smallest.read.mean_ms * 1.05,
                "{id}: growing the cache partition should not hurt read latency"
            );
            assert!(
                craid5_largest.read.mean_ms <= raid5.read.mean_ms * 1.25,
                "{id}: CRAID-5 with a large partition should be competitive with ideal RAID-5 ({} vs {})",
                craid5_largest.read.mean_ms,
                raid5.read.mean_ms
            );
            assert!(
                craid5p_largest.read.mean_ms <= craid5_largest.read.mean_ms * 1.5,
                "{id}: CRAID-5+ should track CRAID-5 despite its aggregated archive"
            );
        }
    }
    println!("\nShape summary: read latency of every CRAID variant improves as the cache");
    println!("partition grows; with a large partition CRAID-5 is competitive with the ideal");
    println!("RAID-5 and CRAID-5+ tracks it closely, regardless of the archive layout.");
    println!("(Note: at this scaled-down concurrency the plain RAID-5+ baseline is not slower");
    println!("than RAID-5 per request — see EXPERIMENTS.md for the discussion; its poorer");
    println!("load balance and queue behaviour are reproduced in Figure 7 / Table 5.)");
    Ok(())
}
