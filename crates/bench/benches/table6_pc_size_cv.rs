//! Table 6 — influence of the cache-partition size on the workload
//! distribution: the partition size with the best (lowest) and worst
//! (highest) whole-run cv for CRAID-5 and CRAID-5+.
//!
//! The paper's (mildly counter-intuitive) finding: the *smallest* partition
//! tends to give the best balance and the largest the worst, because a large
//! partition lets the layout of hot blocks skew which disks are busiest.

use craid::StrategyKind;
use craid_bench::{gen_trace, header_row, parallel_map, print_header, row, workloads, PC_SWEEP};

fn main() {
    print_header(
        "Table 6",
        "cache-partition size (fraction of footprint) with the best / worst load-balance cv",
    );
    println!(
        "{}",
        header_row(&[
            "trace",
            "CRAID-5 best",
            "CRAID-5 worst",
            "CRAID-5+ best",
            "CRAID-5+ worst",
        ])
    );
    for id in workloads() {
        let trace = gen_trace(id);
        let mut cells = vec![id.name().to_string()];
        for strategy in [StrategyKind::Craid5, StrategyKind::Craid5Plus] {
            let reports = parallel_map(PC_SWEEP.to_vec(), |&frac| {
                craid_bench::run_strategy(strategy, &trace, frac)
            });
            let mut by_cv: Vec<(f64, f64)> = PC_SWEEP
                .iter()
                .zip(&reports)
                .map(|(&frac, r)| (frac, r.load_balance.mean_cv))
                .collect();
            by_cv.sort_by(|a, b| a.1.total_cmp(&b.1));
            let best = by_cv.first().expect("sweep is non-empty").0;
            let worst = by_cv.last().expect("sweep is non-empty").0;
            cells.push(format!("{best:.2}"));
            cells.push(format!("{worst:.2}"));
        }
        println!("{}", row(&cells));
    }
    println!("\nAs in the paper's Table 6, the best-balanced configuration is usually a small");
    println!("partition and the worst the largest one of the sweep — growing PC slightly");
    println!("degrades balance even as it improves response time.");
}
