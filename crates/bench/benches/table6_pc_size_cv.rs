//! Table 6 — influence of the cache-partition size on the workload
//! distribution: the partition size with the best (lowest) and worst
//! (highest) whole-run cv for CRAID-5 and CRAID-5+. The full
//! {workloads × fractions × strategies} matrix is one `Campaign::sweep`.
//!
//! The paper's (mildly counter-intuitive) finding: the *smallest* partition
//! tends to give the best balance and the largest the worst, because a large
//! partition lets the layout of hot blocks skew which disks are busiest.

use craid::{CraidError, StrategyKind};
use craid_bench::{header_row, print_header, row, workloads, Sweep, PC_SWEEP};

fn main() -> Result<(), CraidError> {
    print_header(
        "Table 6",
        "cache-partition size (fraction of footprint) with the best / worst load-balance cv",
    );
    let strategies = [StrategyKind::Craid5, StrategyKind::Craid5Plus];
    let all = workloads();
    let sweep = Sweep::run(&all, &PC_SWEEP, &strategies)?;

    println!(
        "{}",
        header_row(&[
            "trace",
            "CRAID-5 best",
            "CRAID-5 worst",
            "CRAID-5+ best",
            "CRAID-5+ worst",
        ])
    );
    for id in all {
        let mut cells = vec![id.name().to_string()];
        for &strategy in &strategies {
            let mut by_cv: Vec<(f64, f64)> = PC_SWEEP
                .iter()
                .map(|&frac| (frac, sweep.report(id, frac, strategy).load_balance.mean_cv))
                .collect();
            by_cv.sort_by(|a, b| a.1.total_cmp(&b.1));
            let best = by_cv.first().expect("sweep is non-empty").0;
            let worst = by_cv.last().expect("sweep is non-empty").0;
            cells.push(format!("{best:.2}"));
            cells.push(format!("{worst:.2}"));
        }
        println!("{}", row(&cells));
    }
    println!("\nAs in the paper's Table 6, the best-balanced configuration is usually a small");
    println!("partition and the worst the largest one of the sweep — growing PC slightly");
    println!("degrades balance even as it improves response time.");
    Ok(())
}
