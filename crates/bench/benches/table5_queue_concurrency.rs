//! Table 5 — I/O-queue depth and concurrently active devices:
//! full-HDD CRAID-5+ vs. SSD-dedicated CRAID-5+ssd (wdev, small partition).
//!
//! The paper's point: funnelling the hot set into 5 dedicated SSDs deepens
//! their queues and leaves the spindles idle, while spreading the cache
//! partition over all disks keeps queues shallow and many devices busy.

use craid::{CraidError, StrategyKind};
use craid_bench::{header_row, print_header, row, Sweep};
use craid_trace::WorkloadId;

const PC_FRACTION: f64 = 0.05; // the paper uses its smallest partition here

fn main() -> Result<(), CraidError> {
    print_header(
        "Table 5",
        "CRAID full-HDD vs SSD-dedicated: queue depth (Ioq) and concurrent devices (Cdev), wdev",
    );
    let strategies = [StrategyKind::Craid5Plus, StrategyKind::Craid5PlusSsd];
    let sweep = Sweep::run(&[WorkloadId::Wdev], &[PC_FRACTION], &strategies)?;
    let hdd = sweep.report(WorkloadId::Wdev, PC_FRACTION, StrategyKind::Craid5Plus);
    let ssd = sweep.report(WorkloadId::Wdev, PC_FRACTION, StrategyKind::Craid5PlusSsd);

    println!(
        "{}",
        header_row(&[
            "strategy",
            "Ioq mean",
            "Ioq p99",
            "Ioq max",
            "Cdev mean",
            "Cdev p99",
            "Cdev max"
        ])
    );
    for (name, r) in [("CRAID-5+", &hdd), ("CRAID-5+ssd", &ssd)] {
        println!(
            "{}",
            row(&[
                name.to_string(),
                format!("{:.2}", r.ioq.mean),
                format!("{:.0}", r.ioq.p99),
                format!("{:.0}", r.ioq.max),
                format!("{:.2}", r.cdev.mean),
                format!("{:.0}", r.cdev.p99),
                format!("{:.0}", r.cdev.max),
            ])
        );
    }

    assert!(
        ssd.ioq.mean > hdd.ioq.mean,
        "dedicated SSDs must show deeper queues ({} vs {})",
        ssd.ioq.mean,
        hdd.ioq.mean
    );
    assert!(
        hdd.cdev.mean > ssd.cdev.mean,
        "the spread partition must keep more devices concurrently active ({} vs {})",
        hdd.cdev.mean,
        ssd.cdev.mean
    );
    println!("\nAs in the paper: the SSD-dedicated cache funnels I/O into few devices (deeper");
    println!("queues, fewer active spindles); the spread partition exploits the whole array.");
    Ok(())
}
