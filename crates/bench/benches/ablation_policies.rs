//! Ablation bench (extension): replacement-policy and WLRU-weight choices.
//!
//! The paper selects WLRU(0.5) because it matches ARC's prediction quality
//! while preferring clean victims (saving the 4-I/O parity write-back). This
//! bench quantifies that trade-off end to end: full simulations of CRAID-5
//! on wdev under every policy, plus a sweep of the WLRU scan weight — all
//! declared as one `Campaign` and run in parallel.

use craid::{Campaign, CraidError, ScenarioOutcome};
use craid_bench::{base_scenario, header_row, pct, print_header, row};
use craid_cache::PolicyKind;
use craid_trace::WorkloadId;

fn main() -> Result<(), CraidError> {
    print_header(
        "Ablation",
        "end-to-end effect of the replacement policy and the WLRU weight (CRAID-5, wdev)",
    );

    let mut policies = PolicyKind::paper_set();
    policies.extend([PolicyKind::Wlru(0.0), PolicyKind::Wlru(1.0)]);

    let scenarios = policies
        .iter()
        .map(|&policy| {
            let mut scenario = base_scenario(WorkloadId::Wdev);
            scenario.name = format!("ablation/{policy}");
            scenario.array.pc_fraction = 0.1;
            scenario.array.policy = Some(policy);
            scenario
        })
        .collect();
    let outcomes: Vec<ScenarioOutcome> = Campaign::new(scenarios).run()?;

    println!(
        "{}",
        header_row(&["policy", "read ms", "write ms", "hit ratio", "dirty evict"])
    );
    for (policy, outcome) in policies.iter().zip(&outcomes) {
        let r = &outcome.report;
        let c = r.craid.expect("CRAID run");
        println!(
            "{}",
            row(&[
                policy.to_string(),
                format!("{:.2}", r.read.mean_ms),
                format!("{:.2}", r.write.mean_ms),
                pct(c.hit_ratio),
                format!("{}", c.dirty_evictions),
            ])
        );
    }

    // WLRU with a scan budget must not produce more dirty evictions than
    // plain LRU (WLRU with w = 0).
    let craid_of = |kind: PolicyKind| {
        policies
            .iter()
            .zip(&outcomes)
            .find(|(p, _)| **p == kind)
            .map(|(_, o)| o.report.craid.expect("CRAID run"))
            .expect("policy is part of the campaign")
    };
    assert!(
        craid_of(PolicyKind::Wlru(0.5)).dirty_evictions
            <= craid_of(PolicyKind::Wlru(0.0)).dirty_evictions,
        "WLRU(0.5) must not write back more dirty victims than plain LRU"
    );

    // GDSF's poor prediction must show up as a lower end-to-end hit ratio.
    assert!(craid_of(PolicyKind::Gdsf).hit_ratio <= craid_of(PolicyKind::Arc).hit_ratio + 0.02);

    println!("\nWLRU's clean-victim preference reduces dirty write-backs at equal hit ratio,");
    println!("which is exactly why the paper configures the I/O monitor with WLRU(0.5).");
    Ok(())
}
