//! Ablation bench (extension): replacement-policy and WLRU-weight choices.
//!
//! The paper selects WLRU(0.5) because it matches ARC's prediction quality
//! while preferring clean victims (saving the 4-I/O parity write-back). This
//! bench quantifies that trade-off end to end: full simulations of CRAID-5
//! on wdev under every policy, plus a sweep of the WLRU scan weight.

use craid::StrategyKind;
use craid_bench::{gen_trace, header_row, parallel_map, pct, print_header, row};
use craid_cache::PolicyKind;
use craid_trace::WorkloadId;

fn main() {
    print_header(
        "Ablation",
        "end-to-end effect of the replacement policy and the WLRU weight (CRAID-5, wdev)",
    );
    let trace = gen_trace(WorkloadId::Wdev);

    let mut policies = PolicyKind::paper_set();
    policies.extend([PolicyKind::Wlru(0.0), PolicyKind::Wlru(1.0)]);

    let reports = parallel_map(policies.clone(), |&policy| {
        let config = craid_bench::config_for(StrategyKind::Craid5, &trace, 0.1).with_policy(policy);
        craid::Simulation::new(config).run(&trace)
    });

    println!(
        "{}",
        header_row(&["policy", "read ms", "write ms", "hit ratio", "dirty evict"])
    );
    for (policy, r) in policies.iter().zip(&reports) {
        let c = r.craid.expect("CRAID run");
        println!(
            "{}",
            row(&[
                policy.to_string(),
                format!("{:.2}", r.read.mean_ms),
                format!("{:.2}", r.write.mean_ms),
                pct(c.hit_ratio),
                format!("{}", c.dirty_evictions),
            ])
        );
    }

    // WLRU with a scan budget must not produce more dirty evictions than
    // plain LRU (WLRU with w = 0).
    let dirty = |kind: PolicyKind| -> u64 {
        policies
            .iter()
            .zip(&reports)
            .find(|(p, _)| **p == kind)
            .map(|(_, r)| r.craid.unwrap().dirty_evictions)
            .unwrap()
    };
    assert!(
        dirty(PolicyKind::Wlru(0.5)) <= dirty(PolicyKind::Wlru(0.0)),
        "WLRU(0.5) must not write back more dirty victims than plain LRU"
    );

    // GDSF's poor prediction must show up as a lower end-to-end hit ratio.
    let hit = |kind: PolicyKind| -> f64 {
        policies
            .iter()
            .zip(&reports)
            .find(|(p, _)| **p == kind)
            .map(|(_, r)| r.craid.unwrap().hit_ratio)
            .unwrap()
    };
    assert!(hit(PolicyKind::Gdsf) <= hit(PolicyKind::Arc) + 0.02);

    println!("\nWLRU's clean-victim preference reduces dirty write-backs at equal hit ratio,");
    println!("which is exactly why the paper configures the I/O monitor with WLRU(0.5).");
}
