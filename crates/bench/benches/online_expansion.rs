//! Online expansion: instant vs. paced vs. hot-first upgrades.
//!
//! The paper's headline claim is that CRAID upgrades are *online*: hot data
//! is reorganized onto the new disks while the array keeps serving traffic.
//! This bench makes the redistribution-time vs. service-time trade-off
//! visible. Every strategy replays the same workload three times with one
//! mid-run `expand` event:
//!
//! * **instant** — the pre-engine semantics: every block moves atomically
//!   at event time (`migration_rate` omitted), so the upgrade window is
//!   zero and the reorganization cost invisible;
//! * **paced** — the background engine streams the copies at a fixed rate
//!   in ascending block order, opening a measurable upgrade window;
//! * **hot-first** — same rate, but the I/O monitor's hottest blocks move
//!   first (the CRAID move), so the cache partition's hit ratio recovers
//!   while the cold tail is still migrating;
//! * **slo** — the hot-first upgrade steered by the QoS subsystem: an SLO
//!   on client p95 latency adaptively throttles the maintenance pace
//!   between a floor and the configured rate, trading a longer upgrade
//!   window for client service quality (the `viol s` column shows the
//!   SLO-violation seconds the controller recorded; unthrottled variants
//!   have no controller and report 0).
//!
//! Shapes to look for: CRAID variants enqueue orders of magnitude fewer
//! blocks than the RAID-5 restripe (the paper's Fig. 3 story), RAID-5+
//! migrates nothing (and stays unbalanced), and at equal rates the
//! hot-first window equals the sequential one while the post-upgrade hit
//! ratio recovers faster. The `archive` column makes the honest part of
//! the comparison visible: a paced `CRAID-5`/`CRAID-5ssd` upgrade also
//! pays a rate-paced reshape of its ideal RAID-5 archive (previously
//! modeled as free), while the aggregated `+` variants keep that cost at
//! zero — which is exactly the paper's argument for aggregation.

use craid::observer::RequestOutcome;
use craid::qos::SloSpec;
use craid::{
    BackgroundPriority, Campaign, CraidError, Observer, Scenario, ScheduledEvent, StrategyKind,
};
use craid_bench::{base_scenario, f2, header_row, print_header, row};
use craid_simkit::SimTime;
use craid_trace::{TraceRecord, WorkloadId};

const ADDED_DISKS: usize = 10;
const MIGRATION_RATE: f64 = 400.0;
/// The SLO the `slo` variant steers by: client p95 latency under 10 ms —
/// comfortable for the paper array at steady state (the maintenance-free
/// RAID-5+ rows barely violate it) but trippable by restripe pressure, so
/// the column isolates the maintenance impact. Maintenance never drops
/// below 5 % of the configured rate.
const SLO_TARGET_MS: f64 = 10.0;

/// Accumulates cache hits over the post-upgrade recovery window.
#[derive(Default)]
struct Recovery {
    from: f64,
    until: f64,
    blocks: u64,
    hits: u64,
}

impl Observer for Recovery {
    fn on_request(&mut self, record: &TraceRecord, outcome: &RequestOutcome) {
        let t = record.time.as_secs();
        if t >= self.from && t < self.until {
            self.blocks += record.length;
            self.hits += outcome.cache_hit_blocks();
        }
    }
}

fn variant(
    base: &Scenario,
    name: &str,
    rate: Option<f64>,
    priority: BackgroundPriority,
) -> Scenario {
    let mut scenario = base.clone();
    scenario.name = format!("{}/{name}", scenario.name);
    scenario.array.migration_rate = rate;
    scenario.array.background_priority = Some(priority);
    scenario
}

fn main() -> Result<(), CraidError> {
    print_header(
        "Online expansion",
        "instant vs. paced vs. hot-first upgrade, per strategy",
    );
    let workload = WorkloadId::Wdev;
    let mut base = base_scenario(workload);
    base.array.pc_fraction = 0.2;
    let duration = base.trace().duration().as_secs();
    let expand_at = SimTime::from_secs(duration / 3.0);
    base.events
        .push(ScheduledEvent::expand(expand_at, ADDED_DISKS));
    println!(
        "[{workload}]  +{ADDED_DISKS} disks at t = {:.0}s of {:.0}s; paced variants at {MIGRATION_RATE} blocks/s",
        expand_at.as_secs(),
        duration
    );

    let mut scenarios = Vec::new();
    for strategy in StrategyKind::ALL {
        let mut with_strategy = base.clone();
        with_strategy.strategy = strategy;
        with_strategy.name = format!("{workload}/{strategy}");
        scenarios.push(variant(
            &with_strategy,
            "instant",
            None,
            BackgroundPriority::Sequential,
        ));
        scenarios.push(variant(
            &with_strategy,
            "paced",
            Some(MIGRATION_RATE),
            BackgroundPriority::Sequential,
        ));
        scenarios.push(variant(
            &with_strategy,
            "hot-first",
            Some(MIGRATION_RATE),
            BackgroundPriority::HotFirst,
        ));
        let mut slo = variant(
            &with_strategy,
            "slo",
            Some(MIGRATION_RATE),
            BackgroundPriority::HotFirst,
        );
        slo.array.qos = Some(
            SloSpec::latency_target(SLO_TARGET_MS)
                .with_floor(0.05)
                .with_window(2.0),
        );
        scenarios.push(slo);
    }

    // The recovery window: from the upgrade to ten seconds after it.
    let recovery = (expand_at.as_secs(), expand_at.as_secs() + 10.0);
    let mut outcomes = Vec::new();
    for scenario in &scenarios {
        let mut watch = Recovery {
            from: recovery.0,
            until: recovery.1,
            ..Recovery::default()
        };
        outcomes.push((scenario.run_observed(&mut watch)?, watch));
    }
    // Sanity: one campaign run of the same scenarios stays deterministic
    // with the sequential pass above (spot-checked on the first report).
    let campaign = Campaign::new(scenarios.clone()).run()?;
    assert_eq!(campaign[0].report, outcomes[0].0.report);

    println!();
    println!(
        "{}",
        header_row(&[
            "scenario",
            "moved",
            "archive",
            "window s",
            "viol s",
            "write ms",
            "recov hit%"
        ])
    );
    for (outcome, watch) in &outcomes {
        let report = &outcome.report;
        let expansion = &outcome.expansions[0];
        let moved = if report.migration.any_migrations() {
            report.migration.migrated_blocks + report.migration.superseded_blocks
        } else {
            expansion.migrated_blocks
        };
        let archive =
            report.migration.archive_migrated_blocks + report.migration.archive_superseded_blocks;
        let window = report.migration.migration_secs + report.migration.archive_restripe_secs;
        let recovered = 100.0 * watch.hits as f64 / watch.blocks.max(1) as f64;
        println!(
            "{}",
            row(&[
                outcome.name.clone(),
                moved.to_string(),
                archive.to_string(),
                f2(window),
                f2(report.qos.slo_violation_secs),
                f2(report.write.mean_ms),
                f2(recovered),
            ])
        );
    }
    println!();
    println!(
        "The instant column's window is always zero — that is exactly the blind spot this\n\
         bench closes: paced variants pay a visible redistribution window, and hot-first\n\
         spends it on the blocks that matter (higher recovery-window hit ratio for the\n\
         CRAID variants at the same rate and window). The archive column charges the\n\
         ideal-archive variants their paced reshape (mdadm-style), which the aggregated\n\
         '+' variants avoid by construction. The slo rows steer the same hot-first\n\
         upgrade with the QoS controller: maintenance throttles while client p95\n\
         latency is over the target, so the window stretches while the viol column\n\
         stays small — the unthrottled rows have no controller to record theirs."
    );
    Ok(())
}
