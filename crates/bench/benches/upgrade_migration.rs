//! Upgrade-migration volume (extension bench).
//!
//! The paper's motivating claim (§1, §3): a CRAID upgrade only has to
//! redistribute the cache partition, while conventional approaches move a
//! large fraction of the stored data. This bench declares the paper's
//! expansion schedule (10 → 13 → 17 → 22 → 29 → 38 → 50 disks) as a
//! `Scenario` timeline over the wdev workload and compares the blocks each
//! approach must migrate per step.

use craid::{CraidError, StrategyKind};
use craid_bench::{base_scenario, gen_trace, header_row, print_header, row};
use craid_raid::{minimal_migration_blocks, ExpansionSchedule};
use craid_simkit::SimTime;
use craid_trace::WorkloadId;

fn main() -> Result<(), CraidError> {
    print_header(
        "Upgrade migration",
        "blocks migrated per upgrade step: CRAID vs restripe vs theoretical minimum (wdev)",
    );
    let trace = gen_trace(WorkloadId::Wdev);
    let schedule = ExpansionSchedule::paper();
    let footprint = trace.footprint_blocks();

    // CRAID-5+ starting at 10 disks, upgraded at evenly spaced times.
    let mut scenario = base_scenario(WorkloadId::Wdev);
    scenario.name = "upgrade-migration/wdev".to_string();
    scenario.strategy = StrategyKind::Craid5Plus;
    scenario.array.pc_fraction = 0.1;
    scenario.array.disks = Some(10);
    scenario.array.expansion_sets = Some(vec![10]);
    let span = trace.duration().as_secs();
    for (i, &added) in schedule.additions().iter().enumerate() {
        let at = SimTime::from_secs(span * (i + 1) as f64 / (schedule.steps() + 1) as f64);
        scenario
            .events
            .push(craid::ScheduledEvent::expand(at, added));
    }
    // Reuse the already-generated trace instead of regenerating it.
    let outcome = scenario.run_on(&trace, &mut craid::NullObserver)?;
    let reports = &outcome.expansions;

    println!(
        "{}",
        header_row(&[
            "step",
            "disks",
            "CRAID blocks",
            "restripe blocks",
            "minimal blocks"
        ])
    );
    let mut craid_total = 0u64;
    let mut restripe_total = 0u64;
    for ((i, (old, new)), report) in schedule.transitions().enumerate().zip(reports) {
        // A round-robin-preserving restripe moves essentially every stored
        // block; the information-theoretic minimum moves added/new of them.
        let restripe = footprint;
        let minimal = minimal_migration_blocks(footprint, old, new);
        craid_total += report.migrated_blocks;
        restripe_total += restripe;
        println!(
            "{}",
            row(&[
                format!("{}", i + 1),
                format!("{old}->{new}"),
                format!("{}", report.migrated_blocks),
                format!("{restripe}"),
                format!("{minimal}"),
            ])
        );
        assert!(
            report.migrated_blocks < minimal || report.migrated_blocks < restripe / 4,
            "step {i}: CRAID migration ({}) must undercut a full restripe ({restripe})",
            report.migrated_blocks
        );
    }
    println!(
        "\nTotals over the whole schedule: CRAID = {craid_total} blocks, full restripe = {restripe_total} blocks ({}x reduction)",
        restripe_total / craid_total.max(1)
    );
    println!("CRAID's migration is bounded by the cache-partition residency at each upgrade,");
    println!("independent of how much data the archive holds — the paper's headline claim.");
    Ok(())
}
