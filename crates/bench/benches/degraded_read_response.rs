//! Degraded-mode read response across strategies.
//!
//! RAID evaluations report how an array serves clients *while* a disk is
//! failed and rebuilding — the canonical reliability axis the paper's
//! parity-group layouts bound. For every strategy this bench replays the
//! same workload twice, healthy and with a disk-failure → hot-spare-repair
//! timeline injected over the middle third of the run, and prints the mean
//! read response of both runs plus the fault subsystem's counters
//! (degraded reads, reconstruction fan-out, rebuild traffic, MTTR).
//!
//! Shapes to look for: every strategy pays for degraded service; the
//! parity-group fan-out (G − 1 reconstruction reads per lost block) is
//! visible in the reconstruction-I/O column; CRAID variants soften the
//! degradation on read-hot workloads because cache-partition hits dodge
//! the failed spindle's archive stripes.

use craid::{Campaign, CraidError, Scenario, ScheduledEvent, StrategyKind};
use craid_bench::{base_scenario, f2, header_row, print_header, row};
use craid_simkit::SimTime;
use craid_trace::WorkloadId;

const FAILED_DISK: usize = 0;

fn with_failure(base: &Scenario, t1: SimTime, t2: SimTime) -> Scenario {
    let mut scenario = base.clone();
    scenario.name = format!("{}/degraded", scenario.name);
    scenario
        .events
        .push(ScheduledEvent::disk_failure(t1, FAILED_DISK));
    scenario
        .events
        .push(ScheduledEvent::disk_repair(t2, FAILED_DISK));
    scenario
}

fn main() -> Result<(), CraidError> {
    print_header(
        "Degraded reads",
        "mean read response, healthy vs. failed-disk run, ms",
    );
    let workload = WorkloadId::Wdev;
    let mut base = base_scenario(workload);
    base.array.pc_fraction = 0.2;
    let duration = base.trace().duration().as_secs();
    let t1 = SimTime::from_secs(duration / 3.0);
    let t2 = SimTime::from_secs(2.0 * duration / 3.0);
    println!(
        "[{workload}]  disk {FAILED_DISK} fails at t = {:.0}s, hot spare at t = {:.0}s",
        t1.as_secs(),
        t2.as_secs()
    );

    // One campaign holds both runs of every strategy; the engine
    // parallelises and shares the generated trace.
    let mut scenarios = Vec::new();
    for strategy in StrategyKind::ALL {
        let mut healthy = base.clone();
        healthy.strategy = strategy;
        healthy.name = format!("{workload}/{strategy}");
        scenarios.push(with_failure(&healthy, t1, t2));
        scenarios.push(healthy);
    }
    let outcomes = Campaign::new(scenarios).run()?;

    println!(
        "{}",
        header_row(&[
            "strategy",
            "healthy ms",
            "degraded-run ms",
            "degraded reads",
            "reconstruction I/Os",
            "rebuild blocks",
            "MTTR s",
        ])
    );
    for pair in outcomes.chunks(2) {
        let (degraded, healthy) = (&pair[0], &pair[1]);
        let fault = degraded.report.fault;
        assert!(
            fault.degraded_reads > 0,
            "{}: the failure window must degrade some reads",
            degraded.name
        );
        assert!(
            fault.reconstruction_ios >= fault.degraded_reads,
            "{}: every degraded read fans out",
            degraded.name
        );
        assert!(healthy.report.fault == Default::default());
        println!(
            "{}",
            row(&[
                healthy.strategy.name().to_string(),
                f2(healthy.report.read.mean_ms),
                f2(degraded.report.read.mean_ms),
                fault.degraded_reads.to_string(),
                fault.reconstruction_ios.to_string(),
                (fault.rebuild_read_blocks + fault.rebuild_write_blocks).to_string(),
                f2(fault.mttr_secs()),
            ])
        );
    }

    // The baselines have no cache partition to dodge the failed spindle:
    // the ideal RAID-5's reads must get slower in the failure run.
    let raid5_degraded = &outcomes[0];
    let raid5_healthy = &outcomes[1];
    assert_eq!(raid5_healthy.strategy, StrategyKind::Raid5);
    assert!(
        raid5_degraded.report.read.mean_ms > raid5_healthy.report.read.mean_ms,
        "RAID-5 degraded run must be slower: {} vs {} ms",
        raid5_degraded.report.read.mean_ms,
        raid5_healthy.report.read.mean_ms
    );
    println!("\nshape checks passed");
    Ok(())
}
