//! Table 2 — hit ratio of each cache-partition management algorithm.
//!
//! As in the paper, the policies are exercised against the raw block stream
//! with an instant storage model; the cache is a small fraction of the
//! weekly working set. ARC/LRU/LFUDA/WLRU should land within a few points of
//! each other and GDSF should trail badly.

use craid::policy_quality;
use craid_bench::{gen_trace, header_row, pct, print_header, row, workloads};
use craid_cache::PolicyKind;

/// Cache size as a fraction of the footprint (the paper uses 0.1 % of the
/// weekly working set of the full-size traces; the scaled equivalent keeping
/// comparable pressure is a few percent).
const CAPACITY_FRACTION: f64 = 0.05;

fn main() {
    print_header(
        "Table 2",
        "hit ratio (%) for each cache-partition management algorithm",
    );
    let policies = PolicyKind::paper_set();
    let mut header = vec!["trace"];
    let names: Vec<String> = policies.iter().map(|p| p.to_string()).collect();
    header.extend(names.iter().map(String::as_str));
    println!("{}", header_row(&header));

    for id in workloads() {
        let trace = gen_trace(id);
        let results: Vec<f64> = policies
            .iter()
            .map(|&p| policy_quality(p, &trace, CAPACITY_FRACTION).hit_ratio)
            .collect();
        let mut cells = vec![id.name().to_string()];
        cells.extend(results.iter().map(|&h| pct(h)));
        println!("{}", row(&cells));

        // The paper's qualitative results: ARC is the best (or tied best)
        // predictor, GDSF never beats it, and the recency/frequency policies
        // (LRU, LFUDA, WLRU) sit within a few points of each other.
        let (lru, lfuda, gdsf, arc, wlru) =
            (results[0], results[1], results[2], results[3], results[4]);
        assert!(
            arc + 0.03 >= results.iter().copied().fold(0.0, f64::max),
            "{id}: ARC ({arc}) should be the best or tied-best policy"
        );
        assert!(
            gdsf <= arc + 0.01,
            "{id}: GDSF ({gdsf}) must not beat ARC ({arc})"
        );
        let trio_spread = [lru, lfuda, wlru].iter().copied().fold(0.0, f64::max)
            - [lru, lfuda, wlru]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
        assert!(
            trio_spread < 0.08,
            "{id}: LRU/LFUDA/WLRU should be within a few points of each other"
        );
    }
    println!("\nAs in the paper: ARC is the strongest predictor and WLRU/LRU/LFUDA track each");
    println!("other closely. The GDSF penalty is milder here than in the paper because the");
    println!("synthetic request sizes are narrower than the real traces', but GDSF never wins.");
}
