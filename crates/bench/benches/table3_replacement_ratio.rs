//! Table 3 — replacement ratio of each cache-partition management algorithm.
//!
//! Same setup as Table 2; the replacement ratio (evictions per access) is
//! the complementary cost metric: GDSF churns far more than the others.

use craid::policy_quality;
use craid_bench::{gen_trace, header_row, pct, print_header, row, workloads};
use craid_cache::PolicyKind;

const CAPACITY_FRACTION: f64 = 0.05;

fn main() {
    print_header(
        "Table 3",
        "replacement ratio (%) for each cache-partition management algorithm",
    );
    let policies = PolicyKind::paper_set();
    let mut header = vec!["trace"];
    let names: Vec<String> = policies.iter().map(|p| p.to_string()).collect();
    header.extend(names.iter().map(String::as_str));
    println!("{}", header_row(&header));

    for id in workloads() {
        let trace = gen_trace(id);
        let results: Vec<f64> = policies
            .iter()
            .map(|&p| policy_quality(p, &trace, CAPACITY_FRACTION).replacement_ratio)
            .collect();
        let mut cells = vec![id.name().to_string()];
        cells.extend(results.iter().map(|&h| pct(h)));
        println!("{}", row(&cells));

        // ARC replaces the least (it has the best hit ratio); GDSF never
        // replaces less than ARC.
        let (gdsf, arc) = (results[2], results[3]);
        let best = results.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            arc <= best + 0.03,
            "{id}: ARC ({arc}) should have the lowest (or tied-lowest) replacement ratio"
        );
        assert!(
            gdsf + 0.01 >= arc,
            "{id}: GDSF ({gdsf}) must not replace less than ARC ({arc})"
        );
    }
    println!("\nAs in the paper: replacement ratios mirror the hit ratios — ARC churns the");
    println!("least, the recency policies track each other, and GDSF never does better.");
}
