//! Figure 7 — workload-distribution CDFs: per-second coefficient of
//! variation of per-disk load, full-HDD vs SSD-dedicated CRAID (deasna,
//! wdev). The six-strategy comparison is one `Campaign::sweep`.

use craid::{CraidError, StrategyKind};
use craid_bench::{header_row, print_header, row, Sweep, PC_SWEEP};
use craid_trace::WorkloadId;

fn main() -> Result<(), CraidError> {
    print_header(
        "Figure 7",
        "CDF of the per-second coefficient of variation of per-disk load (deasna, wdev)",
    );
    let workloads = [WorkloadId::Deasna, WorkloadId::Wdev];
    let fraction = PC_SWEEP[1];
    let sweep = Sweep::run(&workloads, &[fraction], &StrategyKind::ALL)?;

    for id in workloads {
        println!(
            "\n[{}]  (cache partition at {:.0}% of the footprint)",
            id,
            fraction * 100.0
        );
        println!(
            "{}",
            header_row(&["strategy", "mean cv", "p95 cv", "overall cv"])
        );
        for &strategy in &StrategyKind::ALL {
            let r = sweep.report(id, fraction, strategy);
            println!(
                "{}",
                row(&[
                    strategy.name().to_string(),
                    format!("{:.3}", r.load_balance.mean_cv),
                    format!("{:.3}", r.load_balance.p95_cv),
                    format!("{:.3}", r.load_balance.overall_cv),
                ])
            );
        }
        let balance = |s| &sweep.report(id, fraction, s).load_balance;
        let raid5 = balance(StrategyKind::Raid5);
        let raid5p = balance(StrategyKind::Raid5Plus);
        let craid5 = balance(StrategyKind::Craid5);
        let craid5p = balance(StrategyKind::Craid5Plus);
        let craid5ssd = balance(StrategyKind::Craid5Ssd);
        assert!(
            raid5p.overall_cv > raid5.overall_cv,
            "{id}: RAID-5+ whole-run load must be less balanced than ideal RAID-5"
        );
        assert!(
            craid5p.overall_cv < raid5p.overall_cv,
            "{id}: CRAID-5+ must rebalance the aggregated archive's load ({} vs {})",
            craid5p.overall_cv,
            raid5p.overall_cv
        );
        assert!(
            craid5ssd.overall_cv > craid5.overall_cv,
            "{id}: funnelling the cache into dedicated SSDs must hurt global balance"
        );
    }
    println!("\nAs in the paper: the spread cache partition absorbs most I/O and restores the");
    println!("balance an aggregated RAID-5+ lacks; dedicating SSDs to the cache concentrates");
    println!("load and leaves the spindles underused.");
    Ok(())
}
