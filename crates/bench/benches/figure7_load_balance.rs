//! Figure 7 — workload-distribution CDFs: per-second coefficient of
//! variation of per-disk load, full-HDD vs SSD-dedicated CRAID (deasna,
//! wdev).

use craid::StrategyKind;
use craid_bench::{gen_trace, header_row, parallel_map, print_header, row, run_strategy, PC_SWEEP};
use craid_trace::WorkloadId;

const STRATEGIES: [StrategyKind; 6] = [
    StrategyKind::Raid5,
    StrategyKind::Raid5Plus,
    StrategyKind::Craid5,
    StrategyKind::Craid5Plus,
    StrategyKind::Craid5Ssd,
    StrategyKind::Craid5PlusSsd,
];

fn main() {
    print_header(
        "Figure 7",
        "CDF of the per-second coefficient of variation of per-disk load (deasna, wdev)",
    );
    for id in [WorkloadId::Deasna, WorkloadId::Wdev] {
        let trace = gen_trace(id);
        let reports = parallel_map(STRATEGIES.to_vec(), |&s| run_strategy(s, &trace, PC_SWEEP[1]));
        println!("\n[{}]  (cache partition at {:.0}% of the footprint)", id, PC_SWEEP[1] * 100.0);
        println!(
            "{}",
            header_row(&["strategy", "mean cv", "p95 cv", "overall cv"])
        );
        for (strategy, r) in STRATEGIES.iter().zip(&reports) {
            println!(
                "{}",
                row(&[
                    strategy.name().to_string(),
                    format!("{:.3}", r.load_balance.mean_cv),
                    format!("{:.3}", r.load_balance.p95_cv),
                    format!("{:.3}", r.load_balance.overall_cv),
                ])
            );
        }
        let raid5 = &reports[0].load_balance;
        let raid5p = &reports[1].load_balance;
        let craid5 = &reports[2].load_balance;
        let craid5p = &reports[3].load_balance;
        let craid5ssd = &reports[4].load_balance;
        assert!(
            raid5p.overall_cv > raid5.overall_cv,
            "{id}: RAID-5+ whole-run load must be less balanced than ideal RAID-5"
        );
        assert!(
            craid5p.overall_cv < raid5p.overall_cv,
            "{id}: CRAID-5+ must rebalance the aggregated archive's load ({} vs {})",
            craid5p.overall_cv,
            raid5p.overall_cv
        );
        assert!(
            craid5ssd.overall_cv > craid5.overall_cv,
            "{id}: funnelling the cache into dedicated SSDs must hurt global balance"
        );
    }
    println!("\nAs in the paper: the spread cache partition absorbs most I/O and restores the");
    println!("balance an aggregated RAID-5+ lacks; dedicating SSDs to the cache concentrates");
    println!("load and leaves the spindles underused.");
}
