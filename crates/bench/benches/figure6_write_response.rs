//! Figure 6 — write response time vs. cache-partition size.
//!
//! Same sweep as Figure 4 but for writes, declared as one `Campaign::sweep`.
//! The shapes to look for, as in the paper: RAID-5+ writes are much slower
//! than RAID-5; CRAID-5 / CRAID-5+ absorb writes in the cache partition and
//! beat the plain baselines for most workloads.

use craid::{CraidError, StrategyKind};
use craid_bench::{header_row, print_header, row, workloads, Sweep, CRAID_STRATEGIES, PC_SWEEP};

fn main() -> Result<(), CraidError> {
    print_header(
        "Figure 6",
        "comparison of I/O response time (write requests), ms",
    );
    let all = workloads();
    let sweep = Sweep::with_baselines(&all, &PC_SWEEP, &CRAID_STRATEGIES)?;
    let baselines = &sweep;

    for id in all {
        let raid5 = baselines.report(id, PC_SWEEP[0], StrategyKind::Raid5);
        let raid5p = baselines.report(id, PC_SWEEP[0], StrategyKind::Raid5Plus);
        println!(
            "\n[{}]  baselines: RAID-5 = {:.2} ms   RAID-5+ = {:.2} ms",
            id, raid5.write.mean_ms, raid5p.write.mean_ms
        );
        let mut header = vec!["pc fraction".to_string()];
        header.extend(CRAID_STRATEGIES.iter().map(|s| s.name().to_string()));
        println!(
            "{}",
            header_row(&header.iter().map(String::as_str).collect::<Vec<_>>())
        );

        for &frac in &PC_SWEEP {
            let mut cells = vec![format!("{frac:.2}")];
            for &strategy in &CRAID_STRATEGIES {
                cells.push(format!(
                    "{:.2}",
                    sweep.report(id, frac, strategy).write.mean_ms
                ));
            }
            println!("{}", row(&cells));
        }

        if raid5.write.count > 100 {
            // The paper's strongest write-side claim: CRAID-5 and CRAID-5+
            // beat the traditional RAID-5 (and the aggregated RAID-5+)
            // because every write is absorbed by the cache partition.
            let largest = *PC_SWEEP.last().expect("sweep is non-empty");
            let craid5_largest = sweep.report(id, largest, StrategyKind::Craid5);
            let craid5p_largest = sweep.report(id, largest, StrategyKind::Craid5Plus);
            assert!(
                craid5_largest.write.mean_ms < raid5.write.mean_ms,
                "{id}: CRAID-5 writes should beat ideal RAID-5 ({} vs {})",
                craid5_largest.write.mean_ms,
                raid5.write.mean_ms
            );
            assert!(
                craid5p_largest.write.mean_ms < raid5p.write.mean_ms,
                "{id}: CRAID-5+ writes should beat RAID-5+ ({} vs {})",
                craid5p_largest.write.mean_ms,
                raid5p.write.mean_ms
            );
        }
    }
    println!("\nShape summary: write requests are absorbed by the cache partition, so every");
    println!("CRAID variant beats its own baseline — including the ideal RAID-5 — exactly as");
    println!("in the paper's Figure 6.");
    Ok(())
}
