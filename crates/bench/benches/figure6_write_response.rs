//! Figure 6 — write response time vs. cache-partition size.
//!
//! Same sweep as Figure 4 but for writes. The shapes to look for, as in the
//! paper: RAID-5+ writes are much slower than RAID-5; CRAID-5 / CRAID-5+
//! absorb writes in the cache partition and beat the plain baselines for
//! most workloads.

use craid::StrategyKind;
use craid_bench::{
    gen_trace, header_row, parallel_map, print_header, row, run_strategy, workloads, CRAID_STRATEGIES,
    PC_SWEEP,
};

fn main() {
    print_header("Figure 6", "comparison of I/O response time (write requests), ms");
    for id in workloads() {
        let trace = gen_trace(id);
        let raid5 = run_strategy(StrategyKind::Raid5, &trace, PC_SWEEP[0]);
        let raid5p = run_strategy(StrategyKind::Raid5Plus, &trace, PC_SWEEP[0]);
        println!("\n[{}]  baselines: RAID-5 = {:.2} ms   RAID-5+ = {:.2} ms", id, raid5.write.mean_ms, raid5p.write.mean_ms);
        let mut header = vec!["pc fraction".to_string()];
        header.extend(CRAID_STRATEGIES.iter().map(|s| s.name().to_string()));
        println!("{}", header_row(&header.iter().map(String::as_str).collect::<Vec<_>>()));

        let jobs: Vec<(StrategyKind, f64)> = PC_SWEEP
            .iter()
            .flat_map(|&frac| CRAID_STRATEGIES.iter().map(move |&s| (s, frac)))
            .collect();
        let reports = parallel_map(jobs, |&(s, frac)| run_strategy(s, &trace, frac));

        for (i, &frac) in PC_SWEEP.iter().enumerate() {
            let mut cells = vec![format!("{frac:.2}")];
            for (j, _) in CRAID_STRATEGIES.iter().enumerate() {
                let report = &reports[i * CRAID_STRATEGIES.len() + j];
                cells.push(format!("{:.2}", report.write.mean_ms));
            }
            println!("{}", row(&cells));
        }

        if raid5.write.count > 100 {
            // The paper's strongest write-side claim: CRAID-5 and CRAID-5+
            // beat the traditional RAID-5 (and the aggregated RAID-5+)
            // because every write is absorbed by the cache partition.
            let craid5_largest = &reports[(PC_SWEEP.len() - 1) * CRAID_STRATEGIES.len()];
            let craid5p_largest = &reports[(PC_SWEEP.len() - 1) * CRAID_STRATEGIES.len() + 1];
            assert!(
                craid5_largest.write.mean_ms < raid5.write.mean_ms,
                "{id}: CRAID-5 writes should beat ideal RAID-5 ({} vs {})",
                craid5_largest.write.mean_ms,
                raid5.write.mean_ms
            );
            assert!(
                craid5p_largest.write.mean_ms < raid5p.write.mean_ms,
                "{id}: CRAID-5+ writes should beat RAID-5+ ({} vs {})",
                craid5p_largest.write.mean_ms,
                raid5p.write.mean_ms
            );
        }
    }
    println!("\nShape summary: write requests are absorbed by the cache partition, so every");
    println!("CRAID variant beats its own baseline — including the ideal RAID-5 — exactly as");
    println!("in the paper's Figure 6.");
}
