//! Figure 1 — block-frequency CDFs (top row) and day-over-day working-set
//! overlap (bottom row) for the seven workloads.

use craid_bench::{gen_trace, header_row, pct, print_header, row, workloads};
use craid_trace::stats;

fn main() {
    print_header(
        "Figure 1",
        "block-frequency CDF and daily working-set overlap per workload",
    );

    println!("-- Top row: fraction of blocks accessed at most f times --");
    println!(
        "{}",
        header_row(&["trace", "f<=1", "f<=5", "f<=10", "f<=50", "f<=100"])
    );
    for id in workloads() {
        let trace = gen_trace(id);
        let cdf = stats::frequency_cdf(&trace, None);
        println!(
            "{}",
            row(&[
                id.name().to_string(),
                pct(cdf.fraction_at(1)),
                pct(cdf.fraction_at(5)),
                pct(cdf.fraction_at(10)),
                pct(cdf.fraction_at(50)),
                pct(cdf.fraction_at(100)),
            ])
        );
        assert!(
            cdf.fraction_at(50) > 0.7,
            "{id}: most blocks should be accessed 50 times or less"
        );
    }

    println!();
    println!("-- Bottom row: blocks shared between consecutive days (mean over the week) --");
    println!("{}", header_row(&["trace", "all blocks", "top-20% blocks"]));
    let mut gaps = Vec::new();
    for id in workloads() {
        let trace = gen_trace(id);
        let o = stats::overlap_series(&trace, 7);
        println!(
            "{}",
            row(&[
                id.name().to_string(),
                pct(o.mean_all()),
                pct(o.mean_top20()),
            ])
        );
        // Observation 2: the hot blocks are at least as stable day-over-day
        // as the working set as a whole.
        assert!(
            o.mean_top20() + 0.05 >= o.mean_all(),
            "{id}: the top-20% blocks should not be less stable than the whole working set"
        );
        assert!(
            o.mean_top20() > 0.25,
            "{id}: hot blocks should persist across days"
        );
        gaps.push((id, o.mean_top20() - o.mean_all()));
    }
    // deasna is the paper's outlier: a diverse overall working set whose hot
    // core is nonetheless heavily reused — the largest top-20%-vs-all gap.
    let (max_gap_id, _) = gaps
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("seven workloads were analysed");
    assert_eq!(
        max_gap_id.name(),
        "deasna",
        "deasna should show the largest gap between hot-block and whole-set stability"
    );
    println!("\nObservation 2 holds: consecutive days share a large fraction of their working");
    println!("sets, and the top-20% blocks are even more stable — with deasna as the paper's");
    println!("outlier (diverse working set, heavily reused hot core).");
}
