//! Table 1 — summary statistics of one week of the seven workloads.
//!
//! Prints, for every synthetic workload, the measured read/write volume,
//! unique footprint, R/W ratio and share of accesses going to the top-20 %
//! blocks, next to the values the paper reports for the original traces.
//! The synthetic traces are scaled down, so absolute GB differ; the columns
//! to compare are the R/W ratio and the top-20 % share.

use craid_bench::{gen_trace, header_row, pct, print_header, row, workloads};
use craid_trace::{stats, WorkloadSpec};

fn main() {
    print_header(
        "Table 1",
        "summary statistics of 1-week traces from seven different systems",
    );
    println!(
        "{}",
        header_row(&[
            "trace",
            "reads GB",
            "uniq rd GB",
            "writes GB",
            "uniq wr GB",
            "R/W",
            "total GB",
            "top20% acc",
            "paper top20%",
            "paper R/W",
        ])
    );
    for id in workloads() {
        let spec = WorkloadSpec::paper(id);
        let trace = gen_trace(id);
        let s = stats::summarize(&trace);
        println!(
            "{}",
            row(&[
                s.name.clone(),
                format!("{:.2}", s.read_gb),
                format!("{:.3}", s.unique_read_gb),
                format!("{:.2}", s.write_gb),
                format!("{:.3}", s.unique_write_gb),
                format!("{:.2}", s.rw_ratio),
                format!("{:.2}", s.total_gb),
                pct(s.top20_access_share),
                pct(spec.top20_share),
                format!("{:.2}", spec.rw_ratio()),
            ])
        );
        // The qualitative claims behind the paper's Observation 1.
        assert!(
            s.top20_access_share > 0.35,
            "{id}: access skew collapsed ({})",
            s.top20_access_share
        );
    }
    println!("\nObservation 1 holds on every synthetic workload: the top 20% most-accessed");
    println!("blocks receive the majority of accesses, with the per-trace ordering of the");
    println!("paper (deasna most skewed, webresearch least) preserved.");
}
