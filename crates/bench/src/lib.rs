//! # craid-bench
//!
//! The experiment harness reproducing every table and figure of the CRAID
//! paper's evaluation (§5). Each `cargo bench` target regenerates one
//! artifact and prints the same rows or series the paper reports; this
//! library holds the shared plumbing: workload preparation, declarative
//! sweeps over the paper's experiment matrix, and table formatting.
//!
//! Simulation sweeps are expressed as [`Campaign::sweep`]s over
//! {workloads × cache-partition fractions × strategies}; the engine runs
//! them in parallel and [`Sweep`] indexes the outcomes for printing. The
//! bench targets contain no hand-rolled sweep loops.
//!
//! The harness runs scaled-down versions of the paper's workloads (the scale
//! is reported in every header). Absolute numbers therefore differ from the
//! paper's testbed, but the comparative shape — which strategy wins, by
//! roughly what factor, and where the crossovers are — is what each bench
//! asserts and prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use craid::{Campaign, CraidError, Scenario, ScenarioOutcome, SimulationReport, StrategyKind};
use craid_trace::{SyntheticWorkload, Trace, WorkloadId};

/// Number of client requests each scaled workload is generated with.
/// Chosen so the full Figure 4/6 sweeps finish in seconds while still giving
/// stable means.
pub const TARGET_REQUESTS: u64 = 8_000;

/// Deterministic seed used for every generated workload.
pub const SEED: u64 = 20_140_217; // FAST '14 opening day

/// Cache-partition sizes swept by the response-time experiments, expressed
/// as a fraction of the workload footprint. The paper sweeps "% per disk";
/// with scaled footprints the equivalent knob is the footprint fraction
/// (each step doubles the partition, like the paper's x-axes).
pub const PC_SWEEP: [f64; 4] = [0.05, 0.1, 0.2, 0.4];

/// The four strategies that depend on the cache-partition size.
pub const CRAID_STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Craid5,
    StrategyKind::Craid5Plus,
    StrategyKind::Craid5Ssd,
    StrategyKind::Craid5PlusSsd,
];

/// The two baselines, run once per workload (their shape does not depend on
/// the cache-partition size).
pub const BASELINES: [StrategyKind; 2] = [StrategyKind::Raid5, StrategyKind::Raid5Plus];

/// All seven paper workloads.
pub fn workloads() -> Vec<WorkloadId> {
    WorkloadId::ALL.to_vec()
}

/// Generates the scaled synthetic trace for a workload.
pub fn gen_trace(id: WorkloadId) -> Trace {
    SyntheticWorkload::paper_scaled_to(id, TARGET_REQUESTS).generate(SEED)
}

/// Generates a smaller trace (for the heavier sweeps).
pub fn gen_trace_with(id: WorkloadId, target_requests: u64, seed: u64) -> Trace {
    SyntheticWorkload::paper_scaled_to(id, target_requests).generate(seed)
}

/// The scenario every bench builds on: the paper's array shape replaying
/// the harness's scaled workload.
pub fn base_scenario(id: WorkloadId) -> Scenario {
    Scenario::builder()
        .name(format!("bench/{id}"))
        .workload(id)
        .requests(TARGET_REQUESTS)
        .seed(SEED)
        .paper()
        .pc_fraction(PC_SWEEP[0])
        .build()
}

/// A finished {workloads × pc-fractions × strategies} sweep with outcome
/// lookup by key.
pub struct Sweep {
    outcomes: Vec<ScenarioOutcome>,
}

impl Sweep {
    /// Declares and runs the cartesian sweep in parallel.
    ///
    /// # Errors
    ///
    /// Returns the first scenario error, if any configuration is invalid.
    pub fn run(
        workloads: &[WorkloadId],
        pc_fractions: &[f64],
        strategies: &[StrategyKind],
    ) -> Result<Sweep, CraidError> {
        Sweep::of(
            &base_scenario(WorkloadId::Wdev),
            workloads,
            pc_fractions,
            strategies,
        )
    }

    /// Like [`Sweep::run`] but around an explicit base scenario (request
    /// count, seeds, and overrides are taken from it).
    ///
    /// # Errors
    ///
    /// Returns the first scenario error, if any configuration is invalid.
    pub fn of(
        base: &Scenario,
        workloads: &[WorkloadId],
        pc_fractions: &[f64],
        strategies: &[StrategyKind],
    ) -> Result<Sweep, CraidError> {
        let outcomes = Campaign::sweep(base, workloads, pc_fractions, strategies).run()?;
        Ok(Sweep { outcomes })
    }

    /// Runs an explicit scenario list as one campaign (used by benches that
    /// combine a CRAID sweep with the partition-independent baselines, so
    /// every workload trace is generated exactly once).
    ///
    /// # Errors
    ///
    /// Returns the first scenario error, if any configuration is invalid.
    pub fn of_scenarios(scenarios: Vec<Scenario>) -> Result<Sweep, CraidError> {
        let outcomes = Campaign::new(scenarios).run()?;
        Ok(Sweep { outcomes })
    }

    /// The Figure 4/6 shape: a {workloads × fractions × CRAID strategies}
    /// sweep plus the two partition-independent baselines at the first
    /// fraction, all as one campaign so every workload trace is generated
    /// exactly once. Baseline cells are keyed by `pc_fractions[0]`.
    ///
    /// # Errors
    ///
    /// Returns the first scenario error, if any configuration is invalid.
    pub fn with_baselines(
        workloads: &[WorkloadId],
        pc_fractions: &[f64],
        strategies: &[StrategyKind],
    ) -> Result<Sweep, CraidError> {
        let base = base_scenario(WorkloadId::Wdev);
        let mut scenarios = Campaign::sweep(&base, workloads, pc_fractions, strategies)
            .scenarios()
            .to_vec();
        scenarios.extend(
            Campaign::sweep(&base, workloads, &pc_fractions[..1], &BASELINES)
                .scenarios()
                .to_vec(),
        );
        Sweep::of_scenarios(scenarios)
    }

    /// Every outcome, in campaign order (workload-major, then fraction,
    /// then strategy).
    pub fn outcomes(&self) -> &[ScenarioOutcome] {
        &self.outcomes
    }

    /// The outcome of one cell of the sweep.
    ///
    /// # Panics
    ///
    /// Panics if the cell was not part of the sweep.
    pub fn outcome(
        &self,
        workload: WorkloadId,
        pc_fraction: f64,
        strategy: StrategyKind,
    ) -> &ScenarioOutcome {
        self.outcomes
            .iter()
            .find(|o| {
                o.workload == workload && o.pc_fraction == pc_fraction && o.strategy == strategy
            })
            .unwrap_or_else(|| panic!("sweep has no cell ({workload}, {pc_fraction}, {strategy})"))
    }

    /// The report of one cell of the sweep.
    ///
    /// # Panics
    ///
    /// Panics if the cell was not part of the sweep.
    pub fn report(
        &self,
        workload: WorkloadId,
        pc_fraction: f64,
        strategy: StrategyKind,
    ) -> &SimulationReport {
        &self.outcome(workload, pc_fraction, strategy).report
    }
}

/// Prints a section header shared by every bench target.
pub fn print_header(artifact: &str, description: &str) {
    println!();
    println!("================================================================================");
    println!("{artifact}: {description}");
    println!(
        "(synthetic workloads scaled to ~{TARGET_REQUESTS} requests each, seed {SEED}; shapes, not absolute numbers, are the comparison target)"
    );
    println!("================================================================================");
}

/// Formats a fixed-width row from string cells.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Formats a fixed-width header row.
pub fn header_row(cells: &[&str]) -> String {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>())
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as a percentage with 2 decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_generation_is_fast_and_deterministic() {
        let a = gen_trace(WorkloadId::Wdev);
        let b = gen_trace(WorkloadId::Wdev);
        assert_eq!(a.len(), b.len());
        assert!(a.len() as u64 >= 4_000);
    }

    #[test]
    fn base_scenario_matches_the_harness_trace() {
        let scenario = base_scenario(WorkloadId::Webusers);
        let trace = scenario.trace();
        let direct = gen_trace(WorkloadId::Webusers);
        assert_eq!(trace.len(), direct.len());
        assert_eq!(trace.footprint_blocks(), direct.footprint_blocks());
        let config = scenario.array_config(&trace);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn sweep_lookup_finds_every_cell() {
        let mut base = base_scenario(WorkloadId::Wdev);
        base.workload.requests = 1_500; // keep the unit test quick
        let sweep = Sweep::of(
            &base,
            &[WorkloadId::Wdev],
            &[0.1, 0.2],
            &[StrategyKind::Raid5, StrategyKind::Craid5],
        )
        .expect("sweep configuration is valid");
        assert_eq!(sweep.outcomes().len(), 4);
        let report = sweep.report(WorkloadId::Wdev, 0.2, StrategyKind::Craid5);
        assert!(report.requests > 0);
        assert!(report.craid.is_some());
    }

    #[test]
    fn scenario_overrides_produce_a_report() {
        let mut scenario = base_scenario(WorkloadId::Wdev);
        scenario.strategy = StrategyKind::Craid5;
        scenario.array.pc_fraction = 0.2;
        scenario.workload.requests = 1_500; // keep the unit test quick
        let outcome = scenario.run().expect("valid configuration");
        assert!(outcome.report.requests > 0);
        assert!(outcome.report.craid.is_some());
    }
}
