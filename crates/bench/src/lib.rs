//! # craid-bench
//!
//! The experiment harness reproducing every table and figure of the CRAID
//! paper's evaluation (§5). Each `cargo bench` target regenerates one
//! artifact and prints the same rows or series the paper reports; this
//! library holds the shared plumbing: workload preparation, strategy sweeps,
//! parallel execution and table formatting.
//!
//! The harness runs scaled-down versions of the paper's workloads (the scale
//! is reported in every header). Absolute numbers therefore differ from the
//! paper's testbed, but the comparative shape — which strategy wins, by
//! roughly what factor, and where the crossovers are — is what each bench
//! asserts and prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use craid::{ArrayConfig, Simulation, SimulationReport, StrategyKind};
use craid_trace::{SyntheticWorkload, Trace, WorkloadId};

/// Number of client requests each scaled workload is generated with.
/// Chosen so the full Figure 4/6 sweeps finish in seconds while still giving
/// stable means.
pub const TARGET_REQUESTS: u64 = 8_000;

/// Deterministic seed used for every generated workload.
pub const SEED: u64 = 20_140_217; // FAST '14 opening day

/// Cache-partition sizes swept by the response-time experiments, expressed
/// as a fraction of the workload footprint. The paper sweeps "% per disk";
/// with scaled footprints the equivalent knob is the footprint fraction
/// (each step doubles the partition, like the paper's x-axes).
pub const PC_SWEEP: [f64; 4] = [0.05, 0.1, 0.2, 0.4];

/// The four strategies that depend on the cache-partition size.
pub const CRAID_STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Craid5,
    StrategyKind::Craid5Plus,
    StrategyKind::Craid5Ssd,
    StrategyKind::Craid5PlusSsd,
];

/// All seven paper workloads.
pub fn workloads() -> Vec<WorkloadId> {
    WorkloadId::ALL.to_vec()
}

/// Generates the scaled synthetic trace for a workload.
pub fn gen_trace(id: WorkloadId) -> Trace {
    SyntheticWorkload::paper_scaled_to(id, TARGET_REQUESTS).generate(SEED)
}

/// Generates a smaller trace (for the heavier sweeps).
pub fn gen_trace_with(id: WorkloadId, target_requests: u64, seed: u64) -> Trace {
    SyntheticWorkload::paper_scaled_to(id, target_requests).generate(seed)
}

/// Builds the paper-shaped array configuration for a strategy, with the
/// cache partition sized to `pc_fraction` of the trace footprint.
pub fn config_for(strategy: StrategyKind, trace: &Trace, pc_fraction: f64) -> ArrayConfig {
    let pc_blocks = ((trace.footprint_blocks() as f64 * pc_fraction) as u64).max(64);
    ArrayConfig::paper(strategy, trace.footprint_blocks(), pc_blocks)
}

/// Runs one simulation of `strategy` over `trace`.
pub fn run_strategy(strategy: StrategyKind, trace: &Trace, pc_fraction: f64) -> SimulationReport {
    Simulation::new(config_for(strategy, trace, pc_fraction)).run(trace)
}

/// Runs a set of jobs in parallel across threads and returns the results in
/// input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let chunk = items.len().div_ceil(threads).max(1);
        for (slot_chunk, item_chunk) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("worker threads do not panic");
    results.into_iter().map(|r| r.expect("every slot was filled")).collect()
}

/// Prints a section header shared by every bench target.
pub fn print_header(artifact: &str, description: &str) {
    println!();
    println!("================================================================================");
    println!("{artifact}: {description}");
    println!(
        "(synthetic workloads scaled to ~{TARGET_REQUESTS} requests each, seed {SEED}; shapes, not absolute numbers, are the comparison target)"
    );
    println!("================================================================================");
}

/// Formats a fixed-width row from string cells.
pub fn row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Formats a fixed-width header row.
pub fn header_row(cells: &[&str]) -> String {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>())
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as a percentage with 2 decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_generation_is_fast_and_deterministic() {
        let a = gen_trace(WorkloadId::Wdev);
        let b = gen_trace(WorkloadId::Wdev);
        assert_eq!(a.len(), b.len());
        assert!(a.len() as u64 >= 4_000);
    }

    #[test]
    fn config_for_scales_pc_with_fraction() {
        let trace = gen_trace(WorkloadId::Webusers);
        let small = config_for(StrategyKind::Craid5, &trace, 0.05);
        let large = config_for(StrategyKind::Craid5, &trace, 0.4);
        assert!(large.pc_capacity_blocks > small.pc_capacity_blocks);
        assert!(small.validate().is_ok());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items.clone(), |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_strategy_produces_a_report() {
        let trace = gen_trace_with(WorkloadId::Wdev, 2_000, 1);
        let report = run_strategy(StrategyKind::Craid5, &trace, 0.2);
        assert!(report.requests > 0);
        assert!(report.craid.is_some());
    }
}
