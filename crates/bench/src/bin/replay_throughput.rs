//! Replay-throughput benchmark: how many trace records per wall-clock
//! second the simulator replays on a large synthetic drill, single- and
//! multi-threaded.
//!
//! The drill is the paper-preset CRAID-5 array replaying the `wdev`
//! synthetic workload (seed 14, `pc_fraction` 0.2) — the same shape the
//! evaluation sweeps use, scaled up so the replay loop dominates. Each
//! requested thread count replays the *same* pre-generated trace through
//! [`Scenario::run_on_sharded`]; the resulting reports are asserted
//! byte-identical across thread counts before any number is trusted, so
//! the benchmark doubles as a determinism check on the sharded
//! metrics pipeline.
//!
//! ```text
//! cargo run --release -p craid-bench --bin replay_throughput -- \
//!     [--requests N] [--threads 1,4] [--smoke] [--out BENCH_replay.json] \
//!     [--baseline path.json] [--max-regress 30]
//! ```
//!
//! The JSON written to `--out` carries one entry per thread count plus
//! top-level fields mirroring the highest-thread run:
//!
//! ```json
//! {
//!   "requests": 500000,
//!   "events_per_sec": 123456.0,
//!   "wall_secs": 4.05,
//!   "peak_rss_bytes": 104857600,
//!   "threads": 4,
//!   "runs": [ { "threads": 1, ... }, { "threads": 4, ... } ]
//! }
//! ```
//!
//! `events_per_sec` counts trace records replayed per wall second (each
//! record expands into several device I/Os internally). `peak_rss_bytes`
//! is the process high-water mark (`VmHWM`), so later runs in the same
//! invocation include earlier runs' footprint. With `--baseline`, the run
//! exits non-zero if its top-level `events_per_sec` falls more than
//! `--max-regress` percent (default 30) below the baseline file's — the
//! CI perf-smoke gate.
//!
//! Each run also executes under the replay loop's per-stage profiler
//! (`craid_obs::profile`); the highest-thread run's breakdown — mapping,
//! redirect, pump, metrics fold — lands in the report's `stage_profile`
//! array. The existing top-level fields are untouched, so older baseline
//! files keep gating.

use std::time::Instant;

use craid::{NullObserver, Scenario, StrategyKind};
use craid_obs::profile::{self, StageSample};
use craid_trace::WorkloadId;
use serde::{Serialize, Value};

/// Default request count for the full drill (about 15–30 s of replay on a
/// developer machine after the sharded-metrics and WLRU-index work).
const FULL_REQUESTS: u64 = 500_000;
/// Request count under `--smoke` — big enough that per-request costs
/// dominate trace generation, small enough for a CI gate.
const SMOKE_REQUESTS: u64 = 60_000;

#[derive(Debug, Clone, Copy, Serialize)]
struct RunStat {
    threads: usize,
    requests: u64,
    wall_secs: f64,
    events_per_sec: f64,
    peak_rss_bytes: u64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    benchmark: String,
    scenario: String,
    requests: u64,
    /// Mirrors the highest-thread run, the headline number CI gates on.
    events_per_sec: f64,
    wall_secs: f64,
    peak_rss_bytes: u64,
    threads: usize,
    runs: Vec<RunStat>,
    /// Per-stage wall-clock breakdown of the highest-thread run's replay
    /// loop (mapping, redirect, pump, metrics fold).
    stage_profile: Vec<StageSample>,
}

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => {}
        Err(message) => {
            eprintln!("replay_throughput: {message}");
            std::process::exit(1);
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut requests: Option<u64> = None;
    let mut threads: Vec<usize> = vec![1, 4];
    let mut smoke = false;
    let mut out = "BENCH_replay.json".to_string();
    let mut baseline: Option<String> = None;
    let mut max_regress = 30.0f64;

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .ok_or_else(|| format!("{flag} needs a value (see --help)"))
        };
        match arg.as_str() {
            "--requests" => requests = Some(parse(&value_of("--requests")?)?),
            "--threads" => {
                threads = value_of("--threads")?
                    .split(',')
                    .map(|t| parse::<usize>(t.trim()))
                    .collect::<Result<_, _>>()?;
                if threads.is_empty() {
                    return Err("--threads needs at least one thread count".into());
                }
            }
            "--smoke" => smoke = true,
            "--out" => out = value_of("--out")?,
            "--baseline" => baseline = Some(value_of("--baseline")?),
            "--max-regress" => max_regress = parse(&value_of("--max-regress")?)?,
            "--help" | "-h" => {
                eprintln!(
                    "usage: replay_throughput [--requests N] [--threads 1,4] [--smoke] \
                     [--out path.json] [--baseline path.json] [--max-regress PCT]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}' (see --help)")),
        }
    }
    let requests = requests.unwrap_or(if smoke { SMOKE_REQUESTS } else { FULL_REQUESTS });

    let scenario = Scenario::builder()
        .name("replay throughput drill")
        .strategy(StrategyKind::Craid5)
        .workload(WorkloadId::Wdev)
        .requests(requests)
        .seed(14)
        .paper()
        .pc_fraction(0.2)
        .build();
    eprintln!("generating {requests}-request wdev trace (paper preset, CRAID-5)...");
    let trace = scenario.trace();

    let mut runs: Vec<RunStat> = Vec::with_capacity(threads.len());
    let mut stage_profiles: Vec<Vec<StageSample>> = Vec::with_capacity(threads.len());
    let mut reference_report: Option<String> = None;
    for &t in &threads {
        profile::enable();
        let started = Instant::now();
        let outcome = scenario
            .run_on_sharded(&trace, &mut NullObserver, t)
            .map_err(|e| format!("replay failed at {t} thread(s): {e}"))?;
        let wall_secs = started.elapsed().as_secs_f64();
        stage_profiles.push(profile::take());

        // The sharded pipeline must not be able to publish a fast number
        // for a different answer: every thread count must reproduce the
        // single-threaded report byte-for-byte.
        let json = outcome.report.to_json();
        match &reference_report {
            None => reference_report = Some(json),
            Some(reference) => {
                if *reference != json {
                    return Err(format!(
                        "report at {t} thread(s) is not byte-identical to the first run \
                         — sharded replay broke determinism"
                    ));
                }
            }
        }

        let stat = RunStat {
            threads: t,
            requests,
            wall_secs,
            events_per_sec: requests as f64 / wall_secs,
            peak_rss_bytes: peak_rss_bytes(),
        };
        eprintln!(
            "threads={:<2} wall={:.3}s events/sec={:.0} peak_rss={}MiB",
            stat.threads,
            stat.wall_secs,
            stat.events_per_sec,
            stat.peak_rss_bytes / (1024 * 1024),
        );
        runs.push(stat);
    }

    let headline_at = runs
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.threads)
        .map(|(i, _)| i)
        .expect("at least one thread count runs");
    let headline = runs[headline_at];
    let stage_profile = stage_profiles.swap_remove(headline_at);
    let replay_secs: f64 = stage_profile.iter().map(|s| s.secs).sum();
    for sample in &stage_profile {
        eprintln!(
            "stage {:<12} {:>8.3}s ({:>4.1}% of instrumented replay time, {} hits)",
            sample.stage,
            sample.secs,
            if replay_secs > 0.0 {
                100.0 * sample.secs / replay_secs
            } else {
                0.0
            },
            sample.hits,
        );
    }
    let report = BenchReport {
        benchmark: "replay_throughput".to_string(),
        scenario: scenario.name.clone(),
        requests,
        events_per_sec: headline.events_per_sec,
        wall_secs: headline.wall_secs,
        peak_rss_bytes: headline.peak_rss_bytes,
        threads: headline.threads,
        runs,
        stage_profile,
    };
    let json = serde_json::to_string_pretty(&report)
        .map_err(|e| format!("serializing bench report: {e}"))?;
    std::fs::write(&out, format!("{json}\n")).map_err(|e| format!("writing {out}: {e}"))?;
    println!("{json}");

    if let Some(path) = baseline {
        let floor = baseline_events_per_sec(&path)? * (1.0 - max_regress / 100.0);
        if report.events_per_sec < floor {
            return Err(format!(
                "events/sec regressed: {:.0} is more than {max_regress}% below the \
                 baseline floor in {path} (allowed minimum {floor:.0})",
                report.events_per_sec
            ));
        }
        eprintln!(
            "baseline check passed: {:.0} events/sec >= allowed minimum {floor:.0}",
            report.events_per_sec
        );
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(text: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    text.parse()
        .map_err(|e| format!("cannot parse '{text}': {e}"))
}

/// Reads the `events_per_sec` field out of a previously written
/// `BENCH_replay.json`.
fn baseline_events_per_sec(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = serde_json::parse_value(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    match value.get("events_per_sec") {
        Some(Value::Float(f)) => Ok(*f),
        Some(Value::Int(i)) => Ok(*i as f64),
        Some(Value::UInt(u)) => Ok(*u as f64),
        _ => Err(format!("{path} has no numeric 'events_per_sec' field")),
    }
}

/// The process's peak resident set (`VmHWM` from `/proc/self/status`), in
/// bytes; 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}
