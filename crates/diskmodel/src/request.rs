//! Request vocabulary shared by the device models.
//!
//! The simulator works in fixed-size logical blocks of 4 KiB, the block size
//! the paper uses when sizing the mapping cache (§4.2). Devices are addressed
//! by *physical block number* (PBN) local to the device; the RAID layouts in
//! `craid-raid` translate array-logical addresses to `(device, PBN)` pairs.

use serde::{Deserialize, Serialize};

/// Size of one logical block in bytes (4 KiB, as in the paper's §4.2).
pub const BLOCK_SIZE_BYTES: u64 = 4096;

/// Whether an I/O transfers data to or from the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Data flows from the device to the host.
    Read,
    /// Data flows from the host to the device.
    Write,
}

impl IoKind {
    /// True for [`IoKind::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, IoKind::Read)
    }

    /// True for [`IoKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, IoKind::Write)
    }
}

impl std::fmt::Display for IoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoKind::Read => write!(f, "read"),
            IoKind::Write => write!(f, "write"),
        }
    }
}

/// A contiguous run of logical blocks `[start, start + len)`.
///
/// # Example
///
/// ```
/// use craid_diskmodel::BlockRange;
/// let r = BlockRange::new(100, 8);
/// assert_eq!(r.end(), 108);
/// assert!(r.contains(107));
/// assert!(!r.contains(108));
/// assert_eq!(r.bytes(), 8 * 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockRange {
    start: u64,
    len: u64,
}

impl BlockRange {
    /// Creates a range starting at `start` spanning `len` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or the range would overflow the address space.
    pub fn new(start: u64, len: u64) -> Self {
        assert!(len > 0, "a block range cannot be empty");
        assert!(
            start.checked_add(len).is_some(),
            "block range overflows the address space"
        );
        BlockRange { start, len }
    }

    /// First block of the range.
    pub const fn start(self) -> u64 {
        self.start
    }

    /// Number of blocks in the range.
    pub const fn len(self) -> u64 {
        self.len
    }

    /// Always false; ranges are non-empty by construction.
    pub const fn is_empty(self) -> bool {
        false
    }

    /// One past the last block of the range.
    pub const fn end(self) -> u64 {
        self.start + self.len
    }

    /// Number of bytes covered by the range.
    pub const fn bytes(self) -> u64 {
        self.len * BLOCK_SIZE_BYTES
    }

    /// True if `block` falls inside the range.
    pub const fn contains(self, block: u64) -> bool {
        block >= self.start && block < self.end()
    }

    /// True if the two ranges share at least one block.
    pub const fn overlaps(self, other: BlockRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// True if `other` starts exactly where this range ends.
    pub const fn is_followed_by(self, other: BlockRange) -> bool {
        other.start == self.end()
    }

    /// Iterates over the individual block numbers of the range.
    pub fn blocks(self) -> impl Iterator<Item = u64> {
        self.start..self.end()
    }

    /// Splits the range into chunks of at most `chunk` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunks(self, chunk: u64) -> impl Iterator<Item = BlockRange> {
        assert!(chunk > 0, "chunk size must be positive");
        let start = self.start;
        let end = self.end();
        (start..end).step_by(chunk as usize).map(move |s| {
            let len = chunk.min(end - s);
            BlockRange::new(s, len)
        })
    }
}

impl std::fmt::Display for BlockRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_accessors() {
        let r = BlockRange::new(10, 5);
        assert_eq!(r.start(), 10);
        assert_eq!(r.len(), 5);
        assert_eq!(r.end(), 15);
        assert_eq!(r.bytes(), 5 * BLOCK_SIZE_BYTES);
        assert!(!r.is_empty());
    }

    #[test]
    fn contains_and_overlaps() {
        let a = BlockRange::new(0, 10);
        let b = BlockRange::new(9, 10);
        let c = BlockRange::new(10, 10);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert!(a.is_followed_by(c));
        assert!(!a.is_followed_by(b));
        assert!(a.contains(0) && a.contains(9) && !a.contains(10));
    }

    #[test]
    fn chunk_split_conserves_blocks() {
        let r = BlockRange::new(5, 23);
        let chunks: Vec<_> = r.chunks(8).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], BlockRange::new(5, 8));
        assert_eq!(chunks[1], BlockRange::new(13, 8));
        assert_eq!(chunks[2], BlockRange::new(21, 7));
        let total: u64 = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 23);
    }

    #[test]
    fn blocks_iterator_matches_len() {
        let r = BlockRange::new(100, 4);
        assert_eq!(r.blocks().collect::<Vec<_>>(), vec![100, 101, 102, 103]);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_range_rejected() {
        let _ = BlockRange::new(0, 0);
    }

    #[test]
    fn io_kind_predicates() {
        assert!(IoKind::Read.is_read());
        assert!(!IoKind::Read.is_write());
        assert!(IoKind::Write.is_write());
        assert_eq!(IoKind::Read.to_string(), "read");
        assert_eq!(IoKind::Write.to_string(), "write");
    }

    proptest! {
        /// Splitting a range into chunks always conserves the exact block set.
        #[test]
        fn prop_chunks_partition_range(start in 0u64..1_000_000, len in 1u64..4096, chunk in 1u64..512) {
            let r = BlockRange::new(start, len);
            let mut covered = Vec::new();
            let mut prev_end = r.start();
            for c in r.chunks(chunk) {
                prop_assert_eq!(c.start(), prev_end, "chunks must be contiguous");
                prop_assert!(c.len() <= chunk);
                prev_end = c.end();
                covered.extend(c.blocks());
            }
            prop_assert_eq!(prev_end, r.end());
            prop_assert_eq!(covered, r.blocks().collect::<Vec<_>>());
        }

        /// `overlaps` is symmetric and consistent with `contains`.
        #[test]
        fn prop_overlap_symmetric(a_start in 0u64..10_000, a_len in 1u64..128,
                                  b_start in 0u64..10_000, b_len in 1u64..128) {
            let a = BlockRange::new(a_start, a_len);
            let b = BlockRange::new(b_start, b_len);
            prop_assert_eq!(a.overlaps(b), b.overlaps(a));
            let any_shared = a.blocks().any(|blk| b.contains(blk));
            prop_assert_eq!(a.overlaps(b), any_shared);
        }
    }
}
