//! Device queueing and load accounting.
//!
//! [`StorageDevice`] turns a pure service-time model ([`DeviceModel`]) into a
//! queued device: requests submitted while the device is busy wait in FCFS
//! order, and the device records the per-device load statistics the paper's
//! evaluation reports — queue depth (Table 5), busy time and bytes moved
//! (Fig. 7 / Table 6 load balance), and the breakdown of where time went.

use serde::{Deserialize, Serialize};

use craid_simkit::{SimDuration, SimTime};

use crate::request::{BlockRange, IoKind};

/// Where the time of one device-level request went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServiceBreakdown {
    /// Fixed controller/command overhead.
    pub overhead: SimDuration,
    /// Head positioning time (zero for solid-state devices).
    pub seek: SimDuration,
    /// Rotational delay for disks; flash array time for SSDs.
    pub rotation: SimDuration,
    /// Media or interface transfer time.
    pub transfer: SimDuration,
    /// True if the request was served from the device's internal cache.
    pub cache_hit: bool,
}

impl ServiceBreakdown {
    /// Total service time of the request (excluding queueing delay).
    pub fn total(&self) -> SimDuration {
        self.overhead + self.seek + self.rotation + self.transfer
    }
}

/// A pure service-time model of a storage device.
///
/// Implementations are stateful: mechanical models track head position and
/// internal-cache contents between requests.
pub trait DeviceModel {
    /// Usable capacity in 4 KiB blocks.
    fn capacity_blocks(&self) -> u64;

    /// True for mechanical (rotating) devices.
    fn is_rotational(&self) -> bool;

    /// Computes the service time of one request and updates device state.
    fn service(&mut self, kind: IoKind, range: BlockRange) -> ServiceBreakdown;
}

/// A zero-latency model used for the policy-quality experiments.
///
/// The paper's Tables 2 and 3 measure hit and replacement ratios "with a
/// simplified disk model that resolves each I/O instantly" so that policy
/// quality can be observed without queueing interference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstantModel {
    capacity_blocks: u64,
}

impl InstantModel {
    /// Creates an instant device with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks` is zero.
    pub fn new(capacity_blocks: u64) -> Self {
        assert!(capacity_blocks > 0, "capacity must be positive");
        InstantModel { capacity_blocks }
    }
}

impl DeviceModel for InstantModel {
    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn is_rotational(&self) -> bool {
        false
    }

    fn service(&mut self, _kind: IoKind, range: BlockRange) -> ServiceBreakdown {
        assert!(
            range.end() <= self.capacity_blocks,
            "request {range} beyond device capacity {}",
            self.capacity_blocks
        );
        ServiceBreakdown::default()
    }
}

/// Aggregate load statistics of one device.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceLoadStats {
    /// Number of requests served.
    pub requests: u64,
    /// Number of read requests served.
    pub reads: u64,
    /// Number of write requests served.
    pub writes: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total time the device spent servicing requests.
    pub busy: SimDuration,
    /// Total time requests spent waiting in the queue.
    pub queued: SimDuration,
    /// Number of requests that hit the device's internal cache.
    pub internal_cache_hits: u64,
    /// Sum of queue depths observed at submission (for the mean).
    pub queue_depth_sum: u64,
    /// Largest queue depth observed at submission.
    pub queue_depth_max: u64,
}

impl DeviceLoadStats {
    /// Mean queue depth observed at request submission.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.requests as f64
        }
    }

    /// Device utilisation over `elapsed` wall-clock simulation time.
    pub fn utilisation(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            (self.busy.as_secs() / elapsed.as_secs()).min(1.0)
        }
    }
}

/// Completion report for one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// When the device started servicing the request.
    pub started: SimTime,
    /// When the request completed.
    pub finished: SimTime,
    /// Queue depth (requests ahead of this one) at submission time.
    pub queue_depth: u64,
    /// Service-time breakdown.
    pub breakdown: ServiceBreakdown,
}

impl Completion {
    /// Total time from submission to completion.
    pub fn latency(&self, submitted: SimTime) -> SimDuration {
        self.finished.saturating_since(submitted)
    }
}

/// A queued storage device: a [`DeviceModel`] plus FCFS queueing and load
/// accounting.
///
/// The device services one request at a time. A request submitted at time
/// `t` starts at `max(t, previous completion)`; its completion time is the
/// start plus the model's service time. This captures queueing delay and
/// device contention while keeping the whole simulation single-pass.
#[derive(Debug, Clone)]
pub struct StorageDevice<M> {
    id: usize,
    model: M,
    next_free: SimTime,
    /// Completion times of recent requests, pruned lazily; used to compute
    /// the queue depth seen by a new arrival.
    outstanding: Vec<SimTime>,
    stats: DeviceLoadStats,
}

impl<M: DeviceModel> StorageDevice<M> {
    /// Wraps `model` as device number `id`.
    pub fn new(id: usize, model: M) -> Self {
        StorageDevice {
            id,
            model,
            next_free: SimTime::ZERO,
            outstanding: Vec::new(),
            stats: DeviceLoadStats::default(),
        }
    }

    /// Device number within the array.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Usable capacity in 4 KiB blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.model.capacity_blocks()
    }

    /// True for mechanical devices.
    pub fn is_rotational(&self) -> bool {
        self.model.is_rotational()
    }

    /// Immutable access to the underlying model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Accumulated load statistics.
    pub fn stats(&self) -> &DeviceLoadStats {
        &self.stats
    }

    /// The earliest time a newly submitted request could start.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// True if the device would be servicing a request at time `at`.
    pub fn is_busy_at(&self, at: SimTime) -> bool {
        self.next_free > at
    }

    /// Submits a request arriving at `now` and returns its completion time.
    ///
    /// Convenience wrapper around [`StorageDevice::submit_detailed`].
    pub fn submit(&mut self, now: SimTime, kind: IoKind, start_block: u64, blocks: u64) -> SimTime {
        self.submit_detailed(now, kind, BlockRange::new(start_block, blocks))
            .finished
    }

    /// Submits a request arriving at `now` and returns the full completion
    /// report (start time, queue depth, breakdown).
    pub fn submit_detailed(&mut self, now: SimTime, kind: IoKind, range: BlockRange) -> Completion {
        // Queue depth = requests still outstanding when this one arrives.
        self.outstanding.retain(|&t| t > now);
        let queue_depth = self.outstanding.len() as u64;

        let started = self.next_free.max(now);
        let breakdown = self.model.service(kind, range);
        let service = breakdown.total();
        let finished = started + service;
        self.next_free = finished;
        self.outstanding.push(finished);

        self.stats.requests += 1;
        match kind {
            IoKind::Read => self.stats.reads += 1,
            IoKind::Write => self.stats.writes += 1,
        }
        self.stats.bytes += range.bytes();
        self.stats.busy += service;
        self.stats.queued += started.saturating_since(now);
        if breakdown.cache_hit {
            self.stats.internal_cache_hits += 1;
        }
        self.stats.queue_depth_sum += queue_depth;
        self.stats.queue_depth_max = self.stats.queue_depth_max.max(queue_depth);

        Completion {
            started,
            finished,
            queue_depth,
            breakdown,
        }
    }

    /// Resets queueing state and statistics, keeping the model (and therefore
    /// its capacity/parameters) intact. Used when an experiment reuses a
    /// testbed across configurations.
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
        self.outstanding.clear();
        self.stats = DeviceLoadStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdd::{HddModel, HddParameters};

    fn hdd_device() -> StorageDevice<HddModel> {
        StorageDevice::new(
            3,
            HddModel::new(HddParameters::cheetah_15k5_scaled(262_144)),
        )
    }

    #[test]
    fn instant_model_has_zero_latency() {
        let mut dev = StorageDevice::new(0, InstantModel::new(1_000));
        let c = dev.submit_detailed(
            SimTime::from_millis(5.0),
            IoKind::Read,
            BlockRange::new(0, 4),
        );
        assert_eq!(c.finished, SimTime::from_millis(5.0));
        assert_eq!(c.breakdown.total(), SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_requests_queue_up() {
        let mut dev = hdd_device();
        let a = dev.submit_detailed(SimTime::ZERO, IoKind::Read, BlockRange::new(10_000, 8));
        let b = dev.submit_detailed(SimTime::ZERO, IoKind::Read, BlockRange::new(200_000, 8));
        assert_eq!(a.queue_depth, 0);
        assert_eq!(b.queue_depth, 1);
        assert!(
            b.started >= a.finished,
            "second request waits for the first"
        );
        assert!(dev.stats().queued > SimDuration::ZERO);
        assert_eq!(dev.stats().requests, 2);
        assert_eq!(dev.stats().queue_depth_max, 1);
    }

    #[test]
    fn idle_gap_resets_queue_depth() {
        let mut dev = hdd_device();
        dev.submit(SimTime::ZERO, IoKind::Read, 1_000, 8);
        // Arrive long after the first completed.
        let c = dev.submit_detailed(
            SimTime::from_secs(10.0),
            IoKind::Read,
            BlockRange::new(2_000, 8),
        );
        assert_eq!(c.queue_depth, 0);
        assert_eq!(c.started, SimTime::from_secs(10.0));
    }

    #[test]
    fn stats_accumulate_bytes_and_kinds() {
        let mut dev = hdd_device();
        dev.submit(SimTime::ZERO, IoKind::Read, 0, 8);
        dev.submit(SimTime::ZERO, IoKind::Write, 100, 4);
        let s = dev.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes, 12 * crate::request::BLOCK_SIZE_BYTES);
        assert!(s.busy > SimDuration::ZERO);
    }

    #[test]
    fn utilisation_is_bounded() {
        let mut dev = hdd_device();
        for i in 0..50 {
            dev.submit(SimTime::ZERO, IoKind::Read, (i * 1_000) % 200_000, 8);
        }
        let elapsed = dev.next_free().saturating_since(SimTime::ZERO);
        let u = dev.stats().utilisation(elapsed);
        assert!(
            u > 0.9 && u <= 1.0,
            "device saturated by back-to-back work, got {u}"
        );
        assert_eq!(dev.stats().utilisation(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn latency_includes_queueing() {
        let mut dev = hdd_device();
        let submit = SimTime::ZERO;
        dev.submit(submit, IoKind::Read, 10_000, 8);
        let c = dev.submit_detailed(submit, IoKind::Read, BlockRange::new(220_000, 8));
        assert!(c.latency(submit) > c.breakdown.total());
    }

    #[test]
    fn reset_clears_state_but_keeps_capacity() {
        let mut dev = hdd_device();
        dev.submit(SimTime::ZERO, IoKind::Read, 0, 8);
        let cap = dev.capacity_blocks();
        dev.reset();
        assert_eq!(dev.stats().requests, 0);
        assert_eq!(dev.next_free(), SimTime::ZERO);
        assert_eq!(dev.capacity_blocks(), cap);
    }

    #[test]
    fn mean_queue_depth_reflects_burstiness() {
        let mut dev = hdd_device();
        for i in 0..10 {
            dev.submit(SimTime::ZERO, IoKind::Read, i * 10_000, 8);
        }
        assert!(dev.stats().mean_queue_depth() > 3.0);
        assert_eq!(dev.stats().queue_depth_max, 9);
    }
}
