//! The idealized SSD model.
//!
//! The paper's `CRAID-5ssd` and `CRAID-5+ssd` configurations dedicate five
//! SSDs to the cache partition. Its simulator uses Microsoft Research's
//! *idealized* SSD model, and the authors explicitly note (§5.2) that this
//! model "does not simulate a read/write cache". [`SsdModel`] mirrors that:
//! a fixed per-page read/write latency, a byte-rate transfer term, no cache,
//! and no mechanical state.

use serde::{Deserialize, Serialize};

use craid_simkit::SimDuration;

use crate::device::{DeviceModel, ServiceBreakdown};
use crate::request::{BlockRange, IoKind};

/// Parameters of an idealized flash device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdParameters {
    /// Usable capacity in 4 KiB blocks.
    pub capacity_blocks: u64,
    /// Latency to read one 4 KiB page.
    pub read_page_latency: SimDuration,
    /// Latency to program one 4 KiB page (includes amortized erase cost).
    pub write_page_latency: SimDuration,
    /// Interface transfer rate in MiB/s.
    pub interface_rate_mib_s: f64,
    /// Fixed controller/command overhead per request.
    pub controller_overhead: SimDuration,
    /// Number of flash channels that can transfer pages of one request in
    /// parallel (per-request intra-device parallelism).
    pub channels: u32,
}

impl SsdParameters {
    /// Parameters approximating the MSR idealized SSD used by the paper:
    /// 25 µs page reads, 200 µs page programs, 8 channels, no cache.
    pub fn msr_ideal() -> Self {
        SsdParameters {
            capacity_blocks: 32 * 1024 * 1024 * 1024 / crate::request::BLOCK_SIZE_BYTES,
            read_page_latency: SimDuration::from_micros(25.0),
            write_page_latency: SimDuration::from_micros(200.0),
            interface_rate_mib_s: 250.0,
            controller_overhead: SimDuration::from_micros(20.0),
            channels: 8,
        }
    }

    /// The same device scaled to `capacity_blocks`.
    pub fn msr_ideal_scaled(capacity_blocks: u64) -> Self {
        let mut p = Self::msr_ideal();
        p.capacity_blocks = capacity_blocks.max(1);
        p
    }

    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_blocks == 0 {
            return Err("capacity must be positive".into());
        }
        if self.channels == 0 {
            return Err("channel count must be positive".into());
        }
        if self.interface_rate_mib_s <= 0.0 {
            return Err("interface rate must be positive".into());
        }
        Ok(())
    }
}

impl Default for SsdParameters {
    fn default() -> Self {
        Self::msr_ideal()
    }
}

/// State of one simulated SSD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdModel {
    params: SsdParameters,
}

impl SsdModel {
    /// Creates an SSD with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`SsdParameters::validate`].
    pub fn new(params: SsdParameters) -> Self {
        if let Err(msg) = params.validate() {
            panic!("invalid SSD parameters: {msg}");
        }
        SsdModel { params }
    }

    /// The parameter set this model was built with.
    pub fn params(&self) -> &SsdParameters {
        &self.params
    }
}

impl DeviceModel for SsdModel {
    fn capacity_blocks(&self) -> u64 {
        self.params.capacity_blocks
    }

    fn is_rotational(&self) -> bool {
        false
    }

    fn service(&mut self, kind: IoKind, range: BlockRange) -> ServiceBreakdown {
        assert!(
            range.end() <= self.params.capacity_blocks,
            "request {range} beyond device capacity {}",
            self.params.capacity_blocks
        );
        let per_page = match kind {
            IoKind::Read => self.params.read_page_latency,
            IoKind::Write => self.params.write_page_latency,
        };
        // Pages of one request are spread over the channels; the flash time is
        // the per-page latency times the number of sequential rounds needed.
        let rounds = range.len().div_ceil(u64::from(self.params.channels));
        let flash = per_page.saturating_mul(rounds.max(1));
        let secs = range.bytes() as f64 / (self.params.interface_rate_mib_s * 1024.0 * 1024.0);
        let transfer = SimDuration::from_secs(secs);
        ServiceBreakdown {
            overhead: self.params.controller_overhead,
            seek: SimDuration::ZERO,
            rotation: flash,
            transfer,
            cache_hit: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdd::{HddModel, HddParameters};

    #[test]
    fn msr_parameters_are_sane() {
        let p = SsdParameters::msr_ideal();
        assert!(p.validate().is_ok());
        assert!(p.write_page_latency > p.read_page_latency);
    }

    #[test]
    fn reads_are_faster_than_writes() {
        let mut ssd = SsdModel::new(SsdParameters::msr_ideal_scaled(1_000_000));
        let r = ssd.service(IoKind::Read, BlockRange::new(0, 8));
        let mut ssd2 = SsdModel::new(SsdParameters::msr_ideal_scaled(1_000_000));
        let w = ssd2.service(IoKind::Write, BlockRange::new(0, 8));
        assert!(r.total() < w.total());
    }

    #[test]
    fn ssd_random_read_beats_hdd_random_read() {
        let mut ssd = SsdModel::new(SsdParameters::msr_ideal_scaled(262_144));
        let mut hdd = HddModel::new(HddParameters::cheetah_15k5_scaled(262_144));
        let s = ssd.service(IoKind::Read, BlockRange::new(200_000, 8));
        let h = hdd.service(IoKind::Read, BlockRange::new(200_000, 8));
        assert!(
            s.total().as_millis() * 5.0 < h.total().as_millis(),
            "ssd {} should be at least 5x faster than hdd {}",
            s.total(),
            h.total()
        );
    }

    #[test]
    fn repeated_access_gets_no_cache_benefit() {
        // The MSR model has no cache: the second identical access costs the
        // same as the first (unlike the HDD model).
        let mut ssd = SsdModel::new(SsdParameters::msr_ideal_scaled(1_000_000));
        let r = BlockRange::new(500, 8);
        let first = ssd.service(IoKind::Read, r);
        let second = ssd.service(IoKind::Read, r);
        assert_eq!(first.total(), second.total());
        assert!(!second.cache_hit);
    }

    #[test]
    fn channel_parallelism_flattens_small_requests() {
        let mut ssd = SsdModel::new(SsdParameters::msr_ideal_scaled(1_000_000));
        let one = ssd.service(IoKind::Read, BlockRange::new(0, 1));
        let eight = ssd.service(IoKind::Read, BlockRange::new(100, 8));
        // 8 pages over 8 channels need a single flash round, same as 1 page.
        assert_eq!(one.rotation, eight.rotation);
        let seventeen = ssd.service(IoKind::Read, BlockRange::new(200, 17));
        assert!(seventeen.rotation > eight.rotation);
    }

    #[test]
    fn not_rotational() {
        let ssd = SsdModel::new(SsdParameters::msr_ideal());
        assert!(!ssd.is_rotational());
        assert!(ssd.capacity_blocks() > 0);
    }

    #[test]
    #[should_panic(expected = "beyond device capacity")]
    fn out_of_range_request_panics() {
        let mut ssd = SsdModel::new(SsdParameters::msr_ideal_scaled(100));
        ssd.service(IoKind::Write, BlockRange::new(99, 2));
    }
}
