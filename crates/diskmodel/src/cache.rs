//! The on-disk segmented cache.
//!
//! Enterprise drives such as the Seagate Cheetah 15K.5 carry a small DRAM
//! buffer (16 MiB on that model) organised as a handful of segments, each
//! caching a recently touched extent plus read-ahead. The CRAID paper leans
//! on this behaviour to explain two effects (§5.2):
//!
//! * small cache partitions (PC) confine the hot set to a narrow region of
//!   every disk, so the region tends to stay resident in the drive's own
//!   cache and writes complete at buffer speed;
//! * for larger PC sizes that effect fades, which is why write latency grows
//!   slightly with PC size in Fig. 6.
//!
//! [`SegmentedCache`] models exactly that: an LRU set of block extents. A hit
//! is served at electronics speed by [`crate::HddModel`], a miss pays the
//! mechanical cost and installs a new segment covering the access plus
//! read-ahead.

use serde::{Deserialize, Serialize};

use crate::request::{BlockRange, IoKind, BLOCK_SIZE_BYTES};

/// Result of probing the cache for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheOutcome {
    /// Every block of the request was resident.
    Hit,
    /// At least one block missed; the mechanical path must be taken.
    Miss,
}

/// A fixed-size, segment-based model of a drive's internal DRAM cache.
///
/// # Example
///
/// ```
/// use craid_diskmodel::{SegmentedCache, BlockRange, IoKind, CacheOutcome};
///
/// let mut cache = SegmentedCache::new(16 * 1024 * 1024, 16, 64);
/// let r = BlockRange::new(1_000, 8);
/// assert_eq!(cache.access(IoKind::Read, r), CacheOutcome::Miss);
/// // The segment installed by the miss (with read-ahead) now covers it.
/// assert_eq!(cache.access(IoKind::Read, r), CacheOutcome::Hit);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentedCache {
    /// Cached extents, most recently used last.
    segments: Vec<BlockRange>,
    max_segments: usize,
    segment_blocks: u64,
    readahead_blocks: u64,
    hits: u64,
    misses: u64,
}

impl SegmentedCache {
    /// Creates a cache of `capacity_bytes` split into `max_segments` segments
    /// with `readahead_blocks` of read-ahead installed after every miss.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` or `max_segments` is zero.
    pub fn new(capacity_bytes: u64, max_segments: usize, readahead_blocks: u64) -> Self {
        assert!(capacity_bytes > 0, "cache capacity must be positive");
        assert!(max_segments > 0, "cache needs at least one segment");
        let segment_blocks = (capacity_bytes / max_segments as u64 / BLOCK_SIZE_BYTES).max(1);
        SegmentedCache {
            segments: Vec::with_capacity(max_segments),
            max_segments,
            segment_blocks,
            readahead_blocks,
            hits: 0,
            misses: 0,
        }
    }

    /// A cache that never hits (capacity of a single block, no read-ahead).
    /// Used to model the paper's observation that DiskSim's SSD model carries
    /// no cache.
    pub fn disabled() -> Self {
        SegmentedCache {
            segments: Vec::new(),
            max_segments: 1,
            segment_blocks: 0,
            readahead_blocks: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of blocks one segment can hold.
    pub fn segment_blocks(&self) -> u64 {
        self.segment_blocks
    }

    /// Total hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over the cache's lifetime, or 0 if it was never accessed.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Probes the cache for `range` and updates its state.
    ///
    /// Reads that hit refresh the segment's recency. Misses (reads and
    /// writes alike) install a segment covering the access plus read-ahead,
    /// evicting the least recently used segment if the cache is full — the
    /// write-caching behaviour of a drive with its buffer enabled.
    pub fn access(&mut self, kind: IoKind, range: BlockRange) -> CacheOutcome {
        if self.segment_blocks == 0 {
            self.misses += 1;
            return CacheOutcome::Miss;
        }
        if range.len() > self.segment_blocks {
            // Larger than a whole segment: treat as a streaming access that
            // bypasses the cache but still installs its tail for re-reads.
            self.misses += 1;
            self.install(range, kind);
            return CacheOutcome::Miss;
        }
        if let Some(idx) = self
            .segments
            .iter()
            .position(|seg| seg.contains(range.start()) && seg.contains(range.end() - 1))
        {
            // Refresh recency.
            let seg = self.segments.remove(idx);
            self.segments.push(seg);
            self.hits += 1;
            CacheOutcome::Hit
        } else {
            self.misses += 1;
            self.install(range, kind);
            CacheOutcome::Miss
        }
    }

    fn install(&mut self, range: BlockRange, kind: IoKind) {
        let extra = if kind.is_read() {
            self.readahead_blocks
        } else {
            0
        };
        let len = (range.len() + extra).min(self.segment_blocks.max(range.len()));
        let seg = BlockRange::new(range.start(), len.max(1));
        // Drop any older segment fully shadowed by the new one.
        self.segments
            .retain(|s| !seg.contains(s.start()) || !seg.contains(s.end() - 1));
        if self.segments.len() >= self.max_segments {
            self.segments.remove(0);
        }
        self.segments.push(seg);
    }

    /// Discards all cached segments (e.g. after a simulated power cycle).
    pub fn invalidate(&mut self) {
        self.segments.clear();
    }

    /// Number of resident segments.
    pub fn resident_segments(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SegmentedCache {
        // 4 segments of 16 blocks each.
        SegmentedCache::new(4 * 16 * BLOCK_SIZE_BYTES, 4, 8)
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = small_cache();
        let r = BlockRange::new(100, 4);
        assert_eq!(c.access(IoKind::Read, r), CacheOutcome::Miss);
        assert_eq!(c.access(IoKind::Read, r), CacheOutcome::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_ratio(), 0.5);
    }

    #[test]
    fn readahead_serves_sequential_follow_up() {
        let mut c = small_cache();
        assert_eq!(
            c.access(IoKind::Read, BlockRange::new(0, 4)),
            CacheOutcome::Miss
        );
        // Read-ahead of 8 blocks covers [0, 12); the next sequential read hits.
        assert_eq!(
            c.access(IoKind::Read, BlockRange::new(4, 4)),
            CacheOutcome::Hit
        );
    }

    #[test]
    fn writes_install_but_get_no_readahead() {
        let mut c = small_cache();
        assert_eq!(
            c.access(IoKind::Write, BlockRange::new(50, 4)),
            CacheOutcome::Miss
        );
        assert_eq!(
            c.access(IoKind::Read, BlockRange::new(50, 4)),
            CacheOutcome::Hit
        );
        // Beyond the written extent there is no read-ahead.
        assert_eq!(
            c.access(IoKind::Read, BlockRange::new(54, 4)),
            CacheOutcome::Miss
        );
    }

    #[test]
    fn lru_eviction_drops_oldest_segment() {
        let mut c = small_cache();
        for i in 0..5u64 {
            c.access(IoKind::Read, BlockRange::new(i * 1_000, 2));
        }
        // Segment for the first extent (around block 0) should be gone.
        assert_eq!(
            c.access(IoKind::Read, BlockRange::new(0, 2)),
            CacheOutcome::Miss
        );
        // The most recent extents are still resident.
        assert_eq!(
            c.access(IoKind::Read, BlockRange::new(4_000, 2)),
            CacheOutcome::Hit
        );
        assert!(c.resident_segments() <= 4);
    }

    #[test]
    fn oversized_request_streams_past_cache() {
        let mut c = small_cache();
        let big = BlockRange::new(0, 64);
        assert_eq!(c.access(IoKind::Read, big), CacheOutcome::Miss);
        assert_eq!(c.access(IoKind::Read, big), CacheOutcome::Miss);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = SegmentedCache::disabled();
        let r = BlockRange::new(10, 2);
        for _ in 0..5 {
            assert_eq!(c.access(IoKind::Read, r), CacheOutcome::Miss);
        }
        assert_eq!(c.hit_ratio(), 0.0);
    }

    #[test]
    fn invalidate_clears_residency() {
        let mut c = small_cache();
        let r = BlockRange::new(7, 3);
        c.access(IoKind::Read, r);
        assert_eq!(c.access(IoKind::Read, r), CacheOutcome::Hit);
        c.invalidate();
        assert_eq!(c.access(IoKind::Read, r), CacheOutcome::Miss);
    }

    #[test]
    fn hot_narrow_band_stays_resident() {
        // The effect the paper relies on: if all traffic targets a narrow
        // band, the band stays cached and the hit ratio climbs.
        let mut c = small_cache();
        let mut hits = 0;
        for i in 0..1_000u64 {
            let r = BlockRange::new((i * 3) % 32, 2);
            if c.access(IoKind::Read, r) == CacheOutcome::Hit {
                hits += 1;
            }
        }
        assert!(
            hits > 700,
            "narrow working set should mostly hit, got {hits}"
        );
    }
}
