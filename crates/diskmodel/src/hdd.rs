//! The mechanical disk model.
//!
//! An analytic stand-in for DiskSim's validated Seagate Cheetah 15K.5 model
//! (the drive used throughout the paper's evaluation, §5). The model captures
//! the effects that drive the paper's comparative results:
//!
//! * **seek time** grows with the square root of the cylinder distance
//!   between consecutive accesses, so clustering hot blocks into a narrow
//!   cache partition shortens seeks;
//! * **rotational latency** is paid on every non-sequential access
//!   (a deterministic half rotation, keeping runs reproducible);
//! * **transfer rate** is zoned: outer cylinders stream faster than inner
//!   ones, which slightly favours the cache partition placed at the start of
//!   each disk;
//! * a small **segmented cache** with read-ahead serves re-reads and
//!   recently-written extents at electronics speed.

use serde::{Deserialize, Serialize};

use craid_simkit::SimDuration;

use crate::cache::{CacheOutcome, SegmentedCache};
use crate::device::{DeviceModel, ServiceBreakdown};
use crate::request::{BlockRange, IoKind, BLOCK_SIZE_BYTES};

/// Mechanical and electronic parameters of a disk drive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HddParameters {
    /// Usable capacity in 4 KiB blocks.
    pub capacity_blocks: u64,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Number of seek cylinders (zones of equal block count).
    pub cylinders: u32,
    /// Track-to-track (single cylinder) seek time.
    pub track_to_track_seek: SimDuration,
    /// Full-stroke seek time.
    pub full_stroke_seek: SimDuration,
    /// Sustained media transfer rate at the outermost zone, in MiB/s.
    pub outer_rate_mib_s: f64,
    /// Sustained media transfer rate at the innermost zone, in MiB/s.
    pub inner_rate_mib_s: f64,
    /// Interface/buffer transfer rate used for cache hits, in MiB/s.
    pub interface_rate_mib_s: f64,
    /// Fixed controller/command overhead per request.
    pub controller_overhead: SimDuration,
    /// On-disk cache size in bytes (0 disables the cache).
    pub cache_bytes: u64,
    /// Number of cache segments.
    pub cache_segments: usize,
    /// Read-ahead installed after a cache miss, in blocks.
    pub readahead_blocks: u64,
}

impl HddParameters {
    /// Parameters approximating the Seagate Cheetah 15K.5 (146 GB, 15 000 RPM,
    /// 16 MiB cache) from its public product manual, the drive used by the
    /// paper's DiskSim testbed.
    pub fn cheetah_15k5() -> Self {
        HddParameters {
            capacity_blocks: 146 * 1024 * 1024 * 1024 / BLOCK_SIZE_BYTES,
            rpm: 15_000,
            cylinders: 50_000,
            track_to_track_seek: SimDuration::from_millis(0.2),
            full_stroke_seek: SimDuration::from_millis(7.4),
            outer_rate_mib_s: 125.0,
            inner_rate_mib_s: 73.0,
            interface_rate_mib_s: 320.0,
            controller_overhead: SimDuration::from_millis(0.1),
            cache_bytes: 16 * 1024 * 1024,
            cache_segments: 16,
            readahead_blocks: 64,
        }
    }

    /// The same drive scaled down to `capacity_blocks`, used by the
    /// experiment harness to keep week-long replays tractable while
    /// preserving every latency constant.
    pub fn cheetah_15k5_scaled(capacity_blocks: u64) -> Self {
        let mut p = Self::cheetah_15k5();
        p.capacity_blocks = capacity_blocks.max(1);
        p
    }

    /// Duration of one full platter revolution.
    pub fn revolution_time(&self) -> SimDuration {
        SimDuration::from_secs(60.0 / f64::from(self.rpm))
    }

    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_blocks == 0 {
            return Err("capacity must be positive".into());
        }
        if self.rpm == 0 {
            return Err("rpm must be positive".into());
        }
        if self.cylinders == 0 {
            return Err("cylinder count must be positive".into());
        }
        if self.outer_rate_mib_s <= 0.0 || self.inner_rate_mib_s <= 0.0 {
            return Err("media transfer rates must be positive".into());
        }
        if self.inner_rate_mib_s > self.outer_rate_mib_s {
            return Err("inner zone cannot be faster than the outer zone".into());
        }
        if self.interface_rate_mib_s <= 0.0 {
            return Err("interface rate must be positive".into());
        }
        if self.full_stroke_seek < self.track_to_track_seek {
            return Err("full stroke seek cannot be shorter than track-to-track".into());
        }
        Ok(())
    }
}

impl Default for HddParameters {
    fn default() -> Self {
        Self::cheetah_15k5()
    }
}

/// State of one simulated mechanical disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HddModel {
    params: HddParameters,
    cache: SegmentedCache,
    /// Cylinder under the head after the last request.
    head_cylinder: u32,
    /// One block past the end of the last transferred extent, used to detect
    /// physically sequential follow-up accesses that skip rotational latency.
    last_block_end: Option<u64>,
}

impl HddModel {
    /// Creates a disk with the given parameters and a cold cache.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`HddParameters::validate`].
    pub fn new(params: HddParameters) -> Self {
        if let Err(msg) = params.validate() {
            panic!("invalid HDD parameters: {msg}");
        }
        let cache = if params.cache_bytes == 0 {
            SegmentedCache::disabled()
        } else {
            SegmentedCache::new(
                params.cache_bytes,
                params.cache_segments,
                params.readahead_blocks,
            )
        };
        HddModel {
            params,
            cache,
            head_cylinder: 0,
            last_block_end: None,
        }
    }

    /// The parameter set this model was built with.
    pub fn params(&self) -> &HddParameters {
        &self.params
    }

    /// Hit ratio of the drive's internal cache so far.
    pub fn internal_cache_hit_ratio(&self) -> f64 {
        self.cache.hit_ratio()
    }

    fn blocks_per_cylinder(&self) -> u64 {
        (self.params.capacity_blocks / u64::from(self.params.cylinders)).max(1)
    }

    fn cylinder_of(&self, block: u64) -> u32 {
        let cyl = block / self.blocks_per_cylinder();
        cyl.min(u64::from(self.params.cylinders - 1)) as u32
    }

    /// Seek time for a move of `distance` cylinders.
    ///
    /// Uses the standard square-root interpolation between track-to-track and
    /// full-stroke seek times, which matches measured curves of server drives
    /// to first order.
    pub fn seek_time(&self, distance: u32) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let t2t = self.params.track_to_track_seek.as_millis();
        let full = self.params.full_stroke_seek.as_millis();
        // Distance 1 maps to the track-to-track time, the maximum possible
        // distance (cylinders - 1) maps to the full-stroke time.
        let max_extra = (self.params.cylinders.saturating_sub(2)).max(1) as f64;
        let frac = (f64::from(distance - 1) / max_extra).sqrt().min(1.0);
        SimDuration::from_millis(t2t + (full - t2t) * frac)
    }

    /// Media transfer rate (MiB/s) in the zone holding `block`.
    pub fn media_rate_at(&self, block: u64) -> f64 {
        let cyl = f64::from(self.cylinder_of(block));
        let max_cyl = f64::from(self.params.cylinders - 1).max(1.0);
        let span = self.params.outer_rate_mib_s - self.params.inner_rate_mib_s;
        self.params.outer_rate_mib_s - span * (cyl / max_cyl)
    }

    fn transfer_time(&self, block: u64, bytes: u64, rate_override: Option<f64>) -> SimDuration {
        let rate = rate_override.unwrap_or_else(|| self.media_rate_at(block));
        let secs = bytes as f64 / (rate * 1024.0 * 1024.0);
        SimDuration::from_secs(secs)
    }
}

impl DeviceModel for HddModel {
    fn capacity_blocks(&self) -> u64 {
        self.params.capacity_blocks
    }

    fn is_rotational(&self) -> bool {
        true
    }

    fn service(&mut self, kind: IoKind, range: BlockRange) -> ServiceBreakdown {
        assert!(
            range.end() <= self.params.capacity_blocks,
            "request {range} beyond device capacity {}",
            self.params.capacity_blocks
        );
        let overhead = self.params.controller_overhead;

        // Probe the internal cache first; hits avoid all mechanical latency.
        if self.cache.access(kind, range) == CacheOutcome::Hit {
            let transfer = self.transfer_time(
                range.start(),
                range.bytes(),
                Some(self.params.interface_rate_mib_s),
            );
            // The head does not move on a buffer hit; positional state is kept.
            return ServiceBreakdown {
                overhead,
                seek: SimDuration::ZERO,
                rotation: SimDuration::ZERO,
                transfer,
                cache_hit: true,
            };
        }

        let target_cyl = self.cylinder_of(range.start());
        let distance = target_cyl.abs_diff(self.head_cylinder);
        let seek = self.seek_time(distance);

        // Physically sequential follow-up accesses ride the same track and pay
        // no rotational delay; everything else waits half a revolution on
        // average (modelled deterministically to keep strategy comparisons
        // noise-free).
        let sequential = self.last_block_end == Some(range.start()) && distance == 0;
        let rotation = if sequential {
            SimDuration::ZERO
        } else {
            self.params.revolution_time() / 2
        };

        let transfer = self.transfer_time(range.start(), range.bytes(), None);

        self.head_cylinder = self.cylinder_of(range.end().saturating_sub(1));
        self.last_block_end = Some(range.end());

        ServiceBreakdown {
            overhead,
            seek,
            rotation,
            transfer,
            cache_hit: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> HddModel {
        // Small disk: 1 GiB, so tests are not dominated by huge addresses.
        HddModel::new(HddParameters::cheetah_15k5_scaled(262_144))
    }

    #[test]
    fn cheetah_parameters_are_sane() {
        let p = HddParameters::cheetah_15k5();
        assert!(p.validate().is_ok());
        assert_eq!(p.capacity_blocks, 38_273_024);
        assert_eq!(p.revolution_time().as_millis(), 4.0);
    }

    #[test]
    fn seek_time_monotone_in_distance() {
        let m = model();
        assert_eq!(m.seek_time(0), SimDuration::ZERO);
        let mut prev = SimDuration::ZERO;
        for d in [1, 10, 100, 1_000, 10_000, 49_999] {
            let t = m.seek_time(d);
            assert!(t >= prev, "seek time must not decrease with distance");
            prev = t;
        }
        assert_eq!(m.seek_time(1), m.params().track_to_track_seek);
        assert_eq!(
            m.seek_time(m.params().cylinders - 1),
            m.params().full_stroke_seek
        );
    }

    #[test]
    fn zoned_rate_decreases_inward() {
        let m = model();
        let outer = m.media_rate_at(0);
        let inner = m.media_rate_at(m.params().capacity_blocks - 1);
        assert!(outer > inner);
        assert!((outer - 125.0).abs() < 1e-6);
        assert!((inner - 73.0).abs() < 1.0);
    }

    #[test]
    fn random_read_pays_seek_and_rotation() {
        let mut m = model();
        let b = m.service(IoKind::Read, BlockRange::new(200_000, 8));
        assert!(!b.cache_hit);
        assert!(b.seek > SimDuration::ZERO);
        assert_eq!(b.rotation, m.params().revolution_time() / 2);
        assert!(b.total() > SimDuration::from_millis(2.0));
    }

    #[test]
    fn sequential_read_skips_rotation_after_first() {
        let mut m = model();
        let first = m.service(IoKind::Read, BlockRange::new(100_000, 8));
        // Far enough to defeat read-ahead but on the same cylinder region:
        // immediately following blocks, outside the cached extent.
        let second = m.service(IoKind::Read, BlockRange::new(100_008, 200));
        assert!(first.rotation > SimDuration::ZERO);
        if !second.cache_hit {
            assert_eq!(
                second.rotation,
                SimDuration::ZERO,
                "sequential follow-up pays no rotation"
            );
            assert_eq!(second.seek, SimDuration::ZERO);
        }
    }

    #[test]
    fn cache_hit_is_much_faster_than_miss() {
        let mut m = model();
        let r = BlockRange::new(50_000, 8);
        let miss = m.service(IoKind::Read, r);
        let hit = m.service(IoKind::Read, r);
        assert!(!miss.cache_hit);
        assert!(hit.cache_hit);
        assert!(
            hit.total() < miss.total() / 4,
            "hit {} vs miss {}",
            hit.total(),
            miss.total()
        );
        assert!(m.internal_cache_hit_ratio() > 0.0);
    }

    #[test]
    fn narrow_band_workload_beats_scattered_workload() {
        // The core mechanical argument of the paper: the same number of
        // accesses confined to a narrow band completes faster than scattered
        // over the whole disk.
        let capacity = 262_144u64;
        let mut narrow = HddModel::new(HddParameters::cheetah_15k5_scaled(capacity));
        let mut scattered = HddModel::new(HddParameters::cheetah_15k5_scaled(capacity));
        let accesses = 500u64;
        let narrow_total: SimDuration = (0..accesses)
            .map(|i| {
                narrow
                    .service(IoKind::Read, BlockRange::new((i * 37) % 2_048, 8))
                    .total()
            })
            .sum();
        let scattered_total: SimDuration = (0..accesses)
            .map(|i| {
                let blk = (i * 104_729) % (capacity - 8);
                scattered
                    .service(IoKind::Read, BlockRange::new(blk, 8))
                    .total()
            })
            .sum();
        assert!(
            narrow_total < scattered_total / 2,
            "narrow {} should be far faster than scattered {}",
            narrow_total,
            scattered_total
        );
    }

    #[test]
    #[should_panic(expected = "beyond device capacity")]
    fn out_of_range_request_panics() {
        let mut m = model();
        let cap = m.capacity_blocks();
        m.service(IoKind::Read, BlockRange::new(cap, 1));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut p = HddParameters::cheetah_15k5();
        p.inner_rate_mib_s = 500.0;
        assert!(p.validate().is_err());
        let mut p2 = HddParameters::cheetah_15k5();
        p2.capacity_blocks = 0;
        assert!(p2.validate().is_err());
    }
}
