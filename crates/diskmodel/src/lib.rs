//! # craid-diskmodel
//!
//! Device service-time models for the CRAID storage simulator.
//!
//! The FAST '14 CRAID paper evaluates its design on DiskSim 4.0 with the
//! validated Seagate Cheetah 15K.5 disk model plus Microsoft Research's
//! idealized SSD model. Neither simulator is available as a Rust library, so
//! this crate implements the closest analytic equivalents:
//!
//! * [`HddModel`] — a mechanical disk with a square-root seek curve, 15 000
//!   RPM rotational latency, zoned (outer-faster) transfer rates and a small
//!   segmented on-disk cache with read-ahead. These are the first-order
//!   effects that make the paper's results move: random I/O pays seek +
//!   rotation, sequential runs amortize them, and confining the hot set to a
//!   narrow band of the platter shortens seeks and keeps the band resident in
//!   the disk cache.
//! * [`SsdModel`] — an idealized flash device with fixed per-page read/write
//!   latencies and **no** internal cache, mirroring the paper's observation
//!   that DiskSim's SSD model does not simulate one.
//! * [`StorageDevice`] — wraps either model with FCFS queueing, per-device
//!   load accounting (busy time, bytes, queue-depth samples) used by the
//!   load-balance and queue-depth experiments (Fig. 7, Tables 5–6).
//!
//! # Example
//!
//! ```
//! use craid_diskmodel::{HddModel, HddParameters, IoKind, StorageDevice};
//! use craid_simkit::SimTime;
//!
//! let mut disk = StorageDevice::new(0, HddModel::new(HddParameters::cheetah_15k5()));
//! let done = disk.submit(SimTime::ZERO, IoKind::Read, 1_000, 8); // 8 blocks = 32 KiB
//! assert!(done > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod device;
pub mod hdd;
pub mod request;
pub mod ssd;

pub use cache::{CacheOutcome, SegmentedCache};
pub use device::{
    Completion, DeviceLoadStats, DeviceModel, InstantModel, ServiceBreakdown, StorageDevice,
};
pub use hdd::{HddModel, HddParameters};
pub use request::{BlockRange, IoKind, BLOCK_SIZE_BYTES};
pub use ssd::{SsdModel, SsdParameters};
