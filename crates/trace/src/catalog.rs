//! The seven paper workloads and their published summary statistics.
//!
//! Table 1 of the paper summarises one week of each trace. The real traces
//! (HP cello99, Harvard deasna/home02, FIU webresearch/webusers, MSR
//! wdev/proj) are not redistributable, so the specs below record the
//! published statistics and the synthetic generator reproduces them; the
//! working-set overlap column condenses Fig. 1 (bottom row).

use serde::{Deserialize, Serialize};

use craid_diskmodel::BLOCK_SIZE_BYTES;

/// Identifier of one of the paper's seven traces.
///
/// Serializes as the paper's lower-case trace name (`"wdev"`, `"cello99"`,
/// ...) so scenario files read naturally; parsing accepts the same names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// HP Labs research cluster, 1999.
    Cello99,
    /// Harvard DEAS NFS (research + email), 2002.
    Deasna,
    /// Harvard CAMPUS NFS home directories, 2001.
    Home02,
    /// FIU Apache server for research projects, 2009 (write-dominated).
    Webresearch,
    /// FIU web server hosting personal sites, 2009.
    Webusers,
    /// MSR Cambridge test web server, 2007.
    Wdev,
    /// MSR Cambridge project-files server, 2007.
    Proj,
}

impl WorkloadId {
    /// All seven workloads, in the order the paper's tables list them.
    pub const ALL: [WorkloadId; 7] = [
        WorkloadId::Cello99,
        WorkloadId::Deasna,
        WorkloadId::Home02,
        WorkloadId::Webresearch,
        WorkloadId::Webusers,
        WorkloadId::Wdev,
        WorkloadId::Proj,
    ];

    /// The lower-case name used in the paper's tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Cello99 => "cello99",
            WorkloadId::Deasna => "deasna",
            WorkloadId::Home02 => "home02",
            WorkloadId::Webresearch => "webresearch",
            WorkloadId::Webusers => "webusers",
            WorkloadId::Wdev => "wdev",
            WorkloadId::Proj => "proj",
        }
    }
}

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for WorkloadId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        WorkloadId::ALL
            .into_iter()
            .find(|id| id.name() == s.trim().to_ascii_lowercase())
            .ok_or_else(|| format!("unknown workload '{s}'"))
    }
}

impl Serialize for WorkloadId {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for WorkloadId {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("workload name", value))?;
        s.parse().map_err(serde::Error::custom)
    }
}

/// Published (Table 1 / Fig. 1) characteristics of one week of a workload,
/// plus the handful of modelling knobs the synthetic generator needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which trace this spec describes.
    pub id: WorkloadId,
    /// Wall-clock length of the traced period in seconds (one week).
    pub duration_secs: f64,
    /// Total bytes read over the week, in GB (Table 1 "Reads Total").
    pub read_gb: f64,
    /// Total bytes written over the week, in GB (Table 1 "Writes Total").
    pub write_gb: f64,
    /// Distinct data read over the week, in GB (Table 1 "Reads Unique").
    pub unique_read_gb: f64,
    /// Distinct data written over the week, in GB (Table 1 "Writes Unique").
    pub unique_write_gb: f64,
    /// Fraction of all accesses that target the 20 % most-accessed blocks
    /// (Table 1, last column), in `[0, 1]`.
    pub top20_share: f64,
    /// Typical fraction of blocks shared between consecutive days'
    /// working sets (Fig. 1 bottom row), in `[0, 1]`.
    pub daily_overlap: f64,
    /// Mean client request size in 4 KiB blocks.
    pub avg_request_blocks: u64,
}

const WEEK_SECS: f64 = 7.0 * 24.0 * 3600.0;
const GB: f64 = 1024.0 * 1024.0 * 1024.0;

impl WorkloadSpec {
    /// The published spec for one of the paper's workloads.
    pub fn paper(id: WorkloadId) -> Self {
        // Numbers straight from Table 1; daily overlap condensed from Fig. 1.
        match id {
            WorkloadId::Cello99 => WorkloadSpec {
                id,
                duration_secs: WEEK_SECS,
                read_gb: 73.73,
                write_gb: 129.91,
                unique_read_gb: 10.52,
                unique_write_gb: 10.92,
                top20_share: 0.6577,
                daily_overlap: 0.65,
                avg_request_blocks: 8,
            },
            WorkloadId::Deasna => WorkloadSpec {
                id,
                duration_secs: WEEK_SECS,
                read_gb: 672.4,
                write_gb: 231.57,
                unique_read_gb: 23.32,
                unique_write_gb: 45.45,
                top20_share: 0.8688,
                daily_overlap: 0.30,
                avg_request_blocks: 16,
            },
            WorkloadId::Home02 => WorkloadSpec {
                id,
                duration_secs: WEEK_SECS,
                read_gb: 269.29,
                write_gb: 66.35,
                unique_read_gb: 9.07,
                unique_write_gb: 4.49,
                top20_share: 0.6136,
                daily_overlap: 0.70,
                avg_request_blocks: 16,
            },
            WorkloadId::Webresearch => WorkloadSpec {
                id,
                duration_secs: WEEK_SECS,
                read_gb: 0.0,
                write_gb: 3.37,
                unique_read_gb: 0.0,
                unique_write_gb: 0.51,
                top20_share: 0.5133,
                daily_overlap: 0.60,
                avg_request_blocks: 8,
            },
            WorkloadId::Webusers => WorkloadSpec {
                id,
                duration_secs: WEEK_SECS,
                read_gb: 1.16,
                write_gb: 6.85,
                unique_read_gb: 0.45,
                unique_write_gb: 0.50,
                top20_share: 0.5617,
                daily_overlap: 0.60,
                avg_request_blocks: 8,
            },
            WorkloadId::Wdev => WorkloadSpec {
                id,
                duration_secs: WEEK_SECS,
                read_gb: 2.76,
                write_gb: 8.77,
                unique_read_gb: 0.2,
                unique_write_gb: 0.42,
                top20_share: 0.7244,
                daily_overlap: 0.75,
                avg_request_blocks: 8,
            },
            WorkloadId::Proj => WorkloadSpec {
                id,
                duration_secs: WEEK_SECS,
                read_gb: 2152.74,
                write_gb: 367.05,
                unique_read_gb: 1238.86,
                unique_write_gb: 168.88,
                top20_share: 0.5764,
                daily_overlap: 0.55,
                avg_request_blocks: 32,
            },
        }
    }

    /// Total traffic over the week in GB (Table 1 "Total accessed data").
    pub fn total_gb(&self) -> f64 {
        self.read_gb + self.write_gb
    }

    /// Fraction of requests that are reads.
    pub fn read_fraction(&self) -> f64 {
        if self.total_gb() == 0.0 {
            0.0
        } else {
            self.read_gb / self.total_gb()
        }
    }

    /// Read/write ratio as printed in Table 1 (0 when there are no writes).
    pub fn rw_ratio(&self) -> f64 {
        if self.write_gb == 0.0 {
            0.0
        } else {
            self.read_gb / self.write_gb
        }
    }

    /// Number of distinct 4 KiB blocks the workload touches over the week.
    pub fn footprint_blocks(&self) -> u64 {
        (((self.unique_read_gb + self.unique_write_gb) * GB) / BLOCK_SIZE_BYTES as f64).ceil()
            as u64
    }

    /// Number of client requests over the week implied by the traffic volume
    /// and the mean request size.
    pub fn total_requests(&self) -> u64 {
        let bytes = self.total_gb() * GB;
        let per_request = self.avg_request_blocks as f64 * BLOCK_SIZE_BYTES as f64;
        (bytes / per_request).ceil() as u64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration_secs <= 0.0 {
            return Err("duration must be positive".into());
        }
        if self.total_gb() <= 0.0 {
            return Err("workload must move some data".into());
        }
        if self.unique_read_gb + self.unique_write_gb <= 0.0 {
            return Err("footprint must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.top20_share) {
            return Err("top20 share must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.daily_overlap) {
            return Err("daily overlap must be in [0,1]".into());
        }
        if self.avg_request_blocks == 0 {
            return Err("average request size must be positive".into());
        }
        if self.unique_read_gb > self.read_gb + 1e-9 || self.unique_write_gb > self.write_gb + 1e-9
        {
            return Err("unique volume cannot exceed total volume".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_are_consistent() {
        for id in WorkloadId::ALL {
            let spec = WorkloadSpec::paper(id);
            assert!(spec.validate().is_ok(), "{id}: {:?}", spec.validate());
            assert!(spec.footprint_blocks() > 0);
            assert!(spec.total_requests() > 0);
        }
    }

    #[test]
    fn table1_totals_match_the_paper() {
        let cello = WorkloadSpec::paper(WorkloadId::Cello99);
        assert!((cello.total_gb() - 203.64).abs() < 0.1);
        assert!((cello.rw_ratio() - 0.57).abs() < 0.1);
        let proj = WorkloadSpec::paper(WorkloadId::Proj);
        assert!((proj.total_gb() - 2519.79).abs() < 0.1);
        assert!(proj.rw_ratio() > 5.0);
        let webresearch = WorkloadSpec::paper(WorkloadId::Webresearch);
        assert_eq!(
            webresearch.read_fraction(),
            0.0,
            "webresearch is write-only"
        );
    }

    #[test]
    fn footprints_order_matches_table1() {
        // proj has by far the largest footprint, wdev one of the smallest.
        let proj = WorkloadSpec::paper(WorkloadId::Proj).footprint_blocks();
        let wdev = WorkloadSpec::paper(WorkloadId::Wdev).footprint_blocks();
        let deasna = WorkloadSpec::paper(WorkloadId::Deasna).footprint_blocks();
        assert!(proj > deasna);
        assert!(deasna > wdev);
    }

    #[test]
    fn workload_id_round_trips_through_strings() {
        for id in WorkloadId::ALL {
            let parsed: WorkloadId = id.name().parse().unwrap();
            assert_eq!(parsed, id);
        }
        assert!("nosuchtrace".parse::<WorkloadId>().is_err());
    }

    #[test]
    fn workload_serde_uses_table_names() {
        for id in WorkloadId::ALL {
            let v = Serialize::serialize(&id);
            assert_eq!(v, serde::Value::Str(id.name().to_string()));
            let back: WorkloadId = Deserialize::deserialize(&v).unwrap();
            assert_eq!(back, id);
        }
        assert!(WorkloadId::deserialize(&serde::Value::Null).is_err());
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut s = WorkloadSpec::paper(WorkloadId::Wdev);
        s.top20_share = 1.5;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::paper(WorkloadId::Wdev);
        s.unique_read_gb = 100.0;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::paper(WorkloadId::Wdev);
        s.avg_request_blocks = 0;
        assert!(s.validate().is_err());
    }
}
