//! Trace analysis: the paper's workload-characterisation artifacts.
//!
//! * [`summarize`] — the per-trace row of Table 1 (read/write volume, unique
//!   footprint, R/W ratio, share of accesses to the top-20 % blocks).
//! * [`frequency_cdf`] — the block-access-frequency CDF of Fig. 1 (top row):
//!   a point `(f, p)` means `p` % of blocks were accessed at most `f` times.
//! * [`overlap_series`] — the day-over-day working-set overlap of Fig. 1
//!   (bottom row), for all accessed blocks and for the top-20 % most accessed
//!   blocks.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use craid_diskmodel::{IoKind, BLOCK_SIZE_BYTES};

use crate::record::Trace;

/// One row of the paper's Table 1, computed from a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Workload name.
    pub name: String,
    /// Total gigabytes read.
    pub read_gb: f64,
    /// Gigabytes of distinct blocks read.
    pub unique_read_gb: f64,
    /// Total gigabytes written.
    pub write_gb: f64,
    /// Gigabytes of distinct blocks written.
    pub unique_write_gb: f64,
    /// Read/write volume ratio (0 when nothing was written).
    pub rw_ratio: f64,
    /// Total gigabytes moved.
    pub total_gb: f64,
    /// Fraction of accesses that target the 20 % most accessed blocks.
    pub top20_access_share: f64,
    /// Number of requests in the trace.
    pub requests: usize,
}

/// Computes the Table 1 row for a trace.
pub fn summarize(trace: &Trace) -> TraceSummary {
    let mut read_bytes = 0u64;
    let mut write_bytes = 0u64;
    let mut unique_read: BTreeSet<u64> = BTreeSet::new();
    let mut unique_write: BTreeSet<u64> = BTreeSet::new();
    let mut per_block_accesses: BTreeMap<u64, u64> = BTreeMap::new();
    let mut total_block_accesses = 0u64;

    for r in trace {
        match r.kind {
            IoKind::Read => {
                read_bytes += r.bytes();
                unique_read.extend(r.blocks());
            }
            IoKind::Write => {
                write_bytes += r.bytes();
                unique_write.extend(r.blocks());
            }
        }
        for b in r.blocks() {
            *per_block_accesses.entry(b).or_default() += 1;
            total_block_accesses += 1;
        }
    }

    let mut freqs: Vec<u64> = per_block_accesses.values().copied().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    let top20_count = (freqs.len() / 5).max(1).min(freqs.len().max(1));
    let top20_accesses: u64 = freqs.iter().take(top20_count).sum();
    let top20_share = if total_block_accesses == 0 {
        0.0
    } else {
        top20_accesses as f64 / total_block_accesses as f64
    };

    let gb = |bytes: u64| bytes as f64 / (1024.0 * 1024.0 * 1024.0);
    TraceSummary {
        name: trace.name().to_string(),
        read_gb: gb(read_bytes),
        unique_read_gb: gb(unique_read.len() as u64 * BLOCK_SIZE_BYTES),
        write_gb: gb(write_bytes),
        unique_write_gb: gb(unique_write.len() as u64 * BLOCK_SIZE_BYTES),
        rw_ratio: if write_bytes == 0 {
            0.0
        } else {
            read_bytes as f64 / write_bytes as f64
        },
        total_gb: gb(read_bytes + write_bytes),
        top20_access_share: top20_share,
        requests: trace.len(),
    }
}

/// The block-access-frequency CDF of Fig. 1 (top row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyCdf {
    /// `(frequency, fraction_of_blocks_accessed_at_most_that_often)` points,
    /// in increasing frequency order.
    pub points: Vec<(u64, f64)>,
}

impl FrequencyCdf {
    /// Fraction of blocks accessed at most `freq` times.
    pub fn fraction_at(&self, freq: u64) -> f64 {
        let mut best = 0.0;
        for &(f, p) in &self.points {
            if f <= freq {
                best = p;
            } else {
                break;
            }
        }
        best
    }
}

/// Computes the access-frequency CDF for the given request kind
/// (`None` = both kinds combined).
pub fn frequency_cdf(trace: &Trace, kind: Option<IoKind>) -> FrequencyCdf {
    let mut per_block: BTreeMap<u64, u64> = BTreeMap::new();
    for r in trace {
        if kind.is_none() || kind == Some(r.kind) {
            for b in r.blocks() {
                *per_block.entry(b).or_default() += 1;
            }
        }
    }
    let total_blocks = per_block.len();
    if total_blocks == 0 {
        return FrequencyCdf { points: Vec::new() };
    }
    let mut freq_histogram: BTreeMap<u64, u64> = BTreeMap::new();
    for &f in per_block.values() {
        *freq_histogram.entry(f).or_default() += 1;
    }
    let mut freqs: Vec<u64> = freq_histogram.keys().copied().collect();
    freqs.sort_unstable();
    let mut cumulative = 0u64;
    let points = freqs
        .into_iter()
        .map(|f| {
            cumulative += freq_histogram[&f];
            (f, cumulative as f64 / total_blocks as f64)
        })
        .collect();
    FrequencyCdf { points }
}

/// The day-over-day working-set overlap of Fig. 1 (bottom row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapSeries {
    /// `overlap_all[d]` is the fraction of blocks accessed on both day `d`
    /// and day `d + 1`, over all blocks accessed on day `d`.
    pub overlap_all: Vec<f64>,
    /// Same, restricted to each day's top-20 % most accessed blocks.
    pub overlap_top20: Vec<f64>,
}

impl OverlapSeries {
    /// Mean overlap across days, for all blocks.
    pub fn mean_all(&self) -> f64 {
        mean(&self.overlap_all)
    }

    /// Mean overlap across days, for the top-20 % blocks.
    pub fn mean_top20(&self) -> f64 {
        mean(&self.overlap_top20)
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Splits the trace into `days` equal time windows and computes the overlap
/// between consecutive windows' working sets.
///
/// # Panics
///
/// Panics if `days < 2`.
pub fn overlap_series(trace: &Trace, days: usize) -> OverlapSeries {
    assert!(
        days >= 2,
        "need at least two day buckets to compute overlap"
    );
    if trace.is_empty() {
        return OverlapSeries {
            overlap_all: Vec::new(),
            overlap_top20: Vec::new(),
        };
    }
    let start = trace.records().first().expect("non-empty").time;
    let end = trace.records().last().expect("non-empty").time;
    let span = end.saturating_since(start).as_secs().max(1e-9);
    let day_len = span / days as f64;

    let mut daily_counts: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); days];
    for r in trace {
        let elapsed = r.time.saturating_since(start).as_secs();
        let day = ((elapsed / day_len) as usize).min(days - 1);
        for b in r.blocks() {
            *daily_counts[day].entry(b).or_default() += 1;
        }
    }

    let top20 = |counts: &BTreeMap<u64, u64>| -> BTreeSet<u64> {
        let mut entries: Vec<(u64, u64)> = counts.iter().map(|(&b, &c)| (b, c)).collect();
        entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let keep = (entries.len() / 5).max(1);
        entries.into_iter().take(keep).map(|(b, _)| b).collect()
    };

    let mut overlap_all = Vec::new();
    let mut overlap_top20 = Vec::new();
    for d in 0..days - 1 {
        let today: BTreeSet<u64> = daily_counts[d].keys().copied().collect();
        let tomorrow: BTreeSet<u64> = daily_counts[d + 1].keys().copied().collect();
        if today.is_empty() {
            overlap_all.push(0.0);
            overlap_top20.push(0.0);
            continue;
        }
        let shared = today.intersection(&tomorrow).count();
        overlap_all.push(shared as f64 / today.len() as f64);

        let today_hot = top20(&daily_counts[d]);
        let tomorrow_hot = top20(&daily_counts[d + 1]);
        if today_hot.is_empty() {
            overlap_top20.push(0.0);
        } else {
            let shared_hot = today_hot.intersection(&tomorrow_hot).count();
            overlap_top20.push(shared_hot as f64 / today_hot.len() as f64);
        }
    }
    OverlapSeries {
        overlap_all,
        overlap_top20,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;
    use crate::synth::SyntheticWorkload;
    use crate::WorkloadId;
    use craid_simkit::SimTime;

    fn rec(secs: f64, kind: IoKind, offset: u64, len: u64) -> TraceRecord {
        TraceRecord::new(SimTime::from_secs(secs), kind, offset, len)
    }

    #[test]
    fn summary_of_a_hand_built_trace() {
        let t = Trace::new(
            "toy",
            100,
            vec![
                rec(0.0, IoKind::Read, 0, 2),
                rec(1.0, IoKind::Read, 0, 2),
                rec(2.0, IoKind::Write, 10, 1),
            ],
        );
        let s = summarize(&t);
        assert_eq!(s.requests, 3);
        assert!((s.rw_ratio - 4.0).abs() < 1e-9);
        assert!(s.read_gb > s.write_gb);
        assert!(s.unique_read_gb < s.read_gb, "blocks 0..2 were read twice");
        // 3 distinct blocks; top-20% = 1 block (block 0 or 1, accessed twice
        // out of 5 block-accesses).
        assert!((s.top20_access_share - 0.4).abs() < 1e-9);
    }

    #[test]
    fn frequency_cdf_is_monotone_and_ends_at_one() {
        let t = SyntheticWorkload::paper(WorkloadId::Wdev)
            .scale(50_000)
            .generate(1);
        let cdf = frequency_cdf(&t, None);
        assert!(!cdf.points.is_empty());
        for w in cdf.points.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.points.last().unwrap().1 - 1.0).abs() < 1e-12);
        // Most blocks are accessed few times (the paper's Observation 1).
        assert!(cdf.fraction_at(50) > 0.75);
    }

    #[test]
    fn frequency_cdf_filters_by_kind() {
        let t = Trace::new(
            "toy",
            10,
            vec![rec(0.0, IoKind::Read, 0, 1), rec(1.0, IoKind::Write, 5, 1)],
        );
        let reads = frequency_cdf(&t, Some(IoKind::Read));
        let writes = frequency_cdf(&t, Some(IoKind::Write));
        let both = frequency_cdf(&t, None);
        assert_eq!(reads.points, vec![(1, 1.0)]);
        assert_eq!(writes.points, vec![(1, 1.0)]);
        assert_eq!(both.points, vec![(1, 1.0)]);
        assert_eq!(
            frequency_cdf(&Trace::new("e", 1, vec![]), None).points,
            vec![]
        );
    }

    #[test]
    fn overlap_detects_stable_working_sets() {
        // Two "days": identical working sets → overlap 1.0.
        let mut records = Vec::new();
        for day in 0..2 {
            for i in 0..50u64 {
                records.push(rec(day as f64 * 100.0 + i as f64, IoKind::Read, i, 1));
            }
        }
        let t = Trace::new("stable", 1_000, records);
        let o = overlap_series(&t, 2);
        assert_eq!(o.overlap_all.len(), 1);
        assert!((o.overlap_all[0] - 1.0).abs() < 1e-9);
        assert!((o.overlap_top20[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_detects_disjoint_working_sets() {
        let mut records = Vec::new();
        for i in 0..50u64 {
            records.push(rec(i as f64, IoKind::Read, i, 1));
        }
        for i in 0..50u64 {
            records.push(rec(100.0 + i as f64, IoKind::Read, 500 + i, 1));
        }
        let t = Trace::new("disjoint", 1_000, records);
        let o = overlap_series(&t, 2);
        assert_eq!(o.overlap_all[0], 0.0);
        assert_eq!(o.mean_all(), 0.0);
    }

    #[test]
    fn synthetic_workloads_show_working_set_stability() {
        // The qualitative contrast of Fig. 1 (bottom row): working sets show
        // substantial day-over-day overlap, and for deasna — the paper's
        // "diverse but heavily reusing" outlier — the top-20 % blocks are far
        // more stable than the working set as a whole.
        let wdev = SyntheticWorkload::paper_scaled_to(WorkloadId::Wdev, 8_000).generate(5);
        let deasna = SyntheticWorkload::paper_scaled_to(WorkloadId::Deasna, 8_000).generate(5);
        let o_wdev = overlap_series(&wdev, 7);
        let o_deasna = overlap_series(&deasna, 7);
        assert!(
            o_wdev.mean_all() > 0.25,
            "wdev working set should be stable"
        );
        assert!(o_wdev.mean_top20() > 0.35);
        assert!(
            o_deasna.mean_top20() > o_deasna.mean_all() + 0.15,
            "deasna's hot blocks ({}) must be much more stable than its overall working set ({})",
            o_deasna.mean_top20(),
            o_deasna.mean_all()
        );
    }

    #[test]
    fn synthetic_top20_share_tracks_spec() {
        for (id, scale) in [
            (WorkloadId::Deasna, 200_000u64),
            (WorkloadId::Webresearch, 100),
        ] {
            let spec_share = crate::WorkloadSpec::paper(id).top20_share;
            let t = SyntheticWorkload::paper(id).scale(scale).generate(11);
            let measured = summarize(&t).top20_access_share;
            assert!(
                (measured - spec_share).abs() < 0.22,
                "{id}: measured {measured} vs spec {spec_share}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two day buckets")]
    fn overlap_needs_two_days() {
        let t = Trace::new("toy", 10, vec![rec(0.0, IoKind::Read, 0, 1)]);
        overlap_series(&t, 1);
    }
}
