//! Synthetic workload generation.
//!
//! The generator reproduces the four properties of the paper's traces that
//! CRAID's behaviour depends on (§2):
//!
//! 1. **Skewed popularity** — extents are chosen through a Zipf sampler whose
//!    exponent is calibrated so that the top 20 % of the footprint receives
//!    the share of accesses Table 1 reports for the trace.
//! 2. **Long-term temporal locality** — the popularity ranking drifts slowly
//!    from day to day; the drift rate is derived from the day-over-day
//!    working-set overlap of Fig. 1.
//! 3. **Read/write mix** — requests are reads with the probability implied by
//!    the trace's R/W volume ratio.
//! 4. **Multi-block requests** — request lengths follow a truncated Pareto,
//!    so the redirector has real multi-block I/Os to split.
//!
//! Generation is fully deterministic given `(spec, scale, seed)`.

use craid_diskmodel::IoKind;
use craid_simkit::dist::{RunLength, Zipf};
use craid_simkit::{SimRng, SimTime};

use crate::catalog::{WorkloadId, WorkloadSpec};
use crate::record::{Trace, TraceRecord};

/// Number of blocks grouped into one popularity extent. Popularity is
/// tracked per extent rather than per block so that synthetic requests keep
/// the intra-request contiguity of real workloads.
const EXTENT_BLOCKS: u64 = 16;

/// Floors applied after scaling so heavily scaled-down workloads still
/// exercise meaningful cache behaviour.
const MIN_FOOTPRINT_BLOCKS: u64 = 8_192;
const MIN_REQUESTS: u64 = 4_000;

/// A deterministic generator of synthetic traces matching a [`WorkloadSpec`].
///
/// # Example
///
/// ```
/// use craid_trace::{SyntheticWorkload, WorkloadId};
///
/// let gen = SyntheticWorkload::paper(WorkloadId::Webusers).scale(500);
/// let a = gen.generate(7);
/// let b = gen.generate(7);
/// assert_eq!(a.records().len(), b.records().len(), "generation is deterministic");
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    spec: WorkloadSpec,
    scale: u64,
}

impl SyntheticWorkload {
    /// A generator for one of the paper's workloads at scale 1 (full size).
    pub fn paper(id: WorkloadId) -> Self {
        Self::from_spec(WorkloadSpec::paper(id))
    }

    /// A generator for an arbitrary spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn from_spec(spec: WorkloadSpec) -> Self {
        if let Err(msg) = spec.validate() {
            panic!("invalid workload spec: {msg}");
        }
        SyntheticWorkload { spec, scale: 1 }
    }

    /// Divides the footprint, request count and duration by `scale`, keeping
    /// the arrival intensity and popularity skew of the original.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn scale(mut self, scale: u64) -> Self {
        assert!(scale > 0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// A generator scaled so that roughly `target_requests` requests are
    /// produced — the knob the experiment harness uses to keep every
    /// workload's simulation time comparable.
    ///
    /// # Panics
    ///
    /// Panics if `target_requests` is zero.
    pub fn paper_scaled_to(id: WorkloadId, target_requests: u64) -> Self {
        assert!(target_requests > 0, "target request count must be positive");
        let spec = WorkloadSpec::paper(id);
        let scale = (spec.total_requests() / target_requests).max(1);
        Self::from_spec(spec).scale(scale)
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The configured scale factor.
    pub fn scale_factor(&self) -> u64 {
        self.scale
    }

    /// Footprint (distinct 4 KiB blocks) after scaling.
    pub fn scaled_footprint_blocks(&self) -> u64 {
        let scaled = self.spec.footprint_blocks() / self.scale;
        // Round up to whole extents.
        let scaled = scaled.max(MIN_FOOTPRINT_BLOCKS);
        scaled.div_ceil(EXTENT_BLOCKS) * EXTENT_BLOCKS
    }

    /// Number of requests after scaling.
    pub fn scaled_requests(&self) -> u64 {
        (self.spec.total_requests() / self.scale).max(MIN_REQUESTS)
    }

    /// Trace duration in seconds after scaling.
    ///
    /// Scaling down the request count without also compressing time would
    /// leave the array nearly idle, hiding the queueing effects that make
    /// stripe width and load balance matter in the original traces' bursts.
    /// The scaled duration therefore targets a mean arrival rate of
    /// ~150 requests/s (burst peaks are ~25× that), with a floor of a dozen
    /// simulated seconds per "day" so per-second metrics stay meaningful.
    pub fn scaled_duration_secs(&self) -> f64 {
        let natural = self.spec.duration_secs / self.scale as f64;
        let intense = self.scaled_requests() as f64 / 150.0;
        natural.min(intense).max(7.0 * 12.0)
    }

    /// Calibrates a Zipf exponent so the top 20 % of extents receive the
    /// spec's share of accesses.
    ///
    /// The head is taken at 12 % of the extents rather than 20 % to
    /// compensate for two flattening effects of the generator: the daily
    /// drift of the ranking and the partial intra-extent overlap of
    /// multi-block requests. The compensation was tuned so the measured
    /// block-level top-20 % share of the generated traces lands near the
    /// spec value.
    fn calibrate_theta(&self, extents: usize) -> f64 {
        let target = self.spec.top20_share;
        let head = (extents * 12 / 100).max(1);
        let (mut lo, mut hi) = (0.0f64, 3.0f64);
        for _ in 0..40 {
            let mid = (lo + hi) / 2.0;
            let mass = Zipf::new(extents, mid).head_mass(head);
            if mass < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo + hi) / 2.0
    }

    /// Generates the synthetic trace.
    pub fn generate(&self, seed: u64) -> Trace {
        let footprint = self.scaled_footprint_blocks();
        let requests = self.scaled_requests();
        let duration = self.scaled_duration_secs();
        let extents = (footprint / EXTENT_BLOCKS).max(8) as usize;

        let theta = self.calibrate_theta(extents);
        let zipf = Zipf::new(extents, theta);
        // Request sizes follow a truncated Pareto with a heavy tail (up to
        // 16× the trace's mean request): the occasional large, multi-stripe
        // request is what lets wide arrays exploit intra-request parallelism.
        let lengths = RunLength::new((self.spec.avg_request_blocks * 16).max(4) as usize, 1.15);

        let root = SimRng::from_seed(seed ^ hash_name(self.spec.id));
        let mut arrivals = root.substream("arrivals");
        let mut popularity = root.substream("popularity");
        let mut sizes = root.substream("sizes");
        let mut kinds = root.substream("kinds");
        let mut offsets = root.substream("offsets");

        // How far the popularity ranking slides per day: a low day-over-day
        // overlap means a larger slide. The very hottest extents are pinned —
        // the paper's Fig. 1 shows that even when the overall working set
        // drifts (deasna), the top-20 % blocks stay heavily reused.
        let day_secs = duration / 7.0;
        let shift_per_day = ((1.0 - self.spec.daily_overlap) * extents as f64 * 0.18) as u64;
        let pinned = (extents as f64 * 0.04).ceil() as u64;
        let perm_stride = coprime_stride(extents as u64);

        let mean_interarrival = duration / requests as f64;
        let read_fraction = self.spec.read_fraction();

        let mut records = Vec::with_capacity(requests as usize);
        let mut now = 0.0f64;
        for _ in 0..requests {
            // Real block traces are bursty: most requests arrive in dense
            // clusters separated by long idle gaps. The two-phase arrival
            // process below keeps the configured mean rate but concentrates
            // ~80 % of the requests into bursts ~25× the average intensity —
            // which is what makes stripe width and load balance matter for
            // response times (the effect behind the paper's Figs. 4 and 6).
            let dt = arrivals.exponential(mean_interarrival);
            now += if arrivals.chance(0.8) {
                dt * 0.04
            } else {
                dt * 4.84
            };
            let day = (now / day_secs) as u64;

            let rank = zipf.sample(&mut popularity) as u64;
            let shifted = if rank < pinned {
                rank
            } else {
                let movable = extents as u64 - pinned;
                pinned + ((rank - pinned + day * shift_per_day) % movable)
            };
            let extent = (shifted * perm_stride) % extents as u64;

            let base = extent * EXTENT_BLOCKS;
            // Accesses cluster near the start of the extent so repeated visits
            // to a hot extent reuse the same blocks.
            let offset = offsets.index((EXTENT_BLOCKS / 4).max(1) as usize) as u64;
            let start = (base + offset).min(footprint - 1);
            let max_len = footprint - start;
            let length = (lengths.sample(&mut sizes) as u64).min(max_len).max(1);

            let kind = if kinds.chance(read_fraction) {
                IoKind::Read
            } else {
                IoKind::Write
            };

            records.push(TraceRecord::new(
                SimTime::from_secs(now),
                kind,
                start,
                length,
            ));
        }

        Trace::new(self.spec.id.name(), footprint, records)
    }
}

/// A multiplicative stride coprime with `n`, used as a cheap deterministic
/// permutation that scatters consecutive popularity ranks across the dataset.
fn coprime_stride(n: u64) -> u64 {
    let mut stride = (n / 2 + 1) | 1; // odd, roughly half the range
    while gcd(stride, n) != 1 {
        stride += 2;
    }
    stride
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn hash_name(id: WorkloadId) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.name().as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small(id: WorkloadId) -> Trace {
        SyntheticWorkload::paper(id).scale(50_000).generate(1)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(WorkloadId::Wdev);
        let b = small(WorkloadId::Wdev);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let gen = SyntheticWorkload::paper(WorkloadId::Wdev).scale(50_000);
        let a = gen.generate(1);
        let b = gen.generate(2);
        assert_ne!(a, b);
    }

    #[test]
    fn respects_footprint_and_ordering() {
        let t = small(WorkloadId::Webusers);
        assert!(!t.is_empty());
        let mut prev = SimTime::ZERO;
        for r in &t {
            assert!(r.time >= prev);
            assert!(r.end() <= t.footprint_blocks());
            prev = r.time;
        }
    }

    #[test]
    fn read_write_mix_tracks_spec() {
        let t = small(WorkloadId::Home02); // read-mostly (R/W ≈ 3.9 by volume)
        let reads = t.records().iter().filter(|r| r.kind.is_read()).count();
        let frac = reads as f64 / t.len() as f64;
        assert!(frac > 0.6, "home02 should be read-dominated, got {frac}");

        let w = small(WorkloadId::Webresearch); // write-only
        assert!(w.records().iter().all(|r| r.kind.is_write()));
    }

    #[test]
    fn popularity_is_skewed() {
        let t = small(WorkloadId::Wdev);
        let mut counts = std::collections::HashMap::new();
        for r in &t {
            for b in r.blocks() {
                *counts.entry(b).or_insert(0u64) += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top20_count = (counts.len() / 5).max(1);
        let top20: u64 = freqs[..top20_count].iter().sum();
        let share = top20 as f64 / total as f64;
        assert!(
            share > 0.5,
            "wdev's top 20% blocks should dominate accesses, got {share}"
        );
    }

    #[test]
    fn footprint_is_actually_used() {
        let gen = SyntheticWorkload::paper(WorkloadId::Wdev).scale(50_000);
        let t = gen.generate(3);
        let distinct: HashSet<u64> = t.records().iter().flat_map(|r| r.blocks()).collect();
        // The skew means not every block is touched, but a meaningful part
        // of the footprint must be.
        assert!(
            distinct.len() as u64 > t.footprint_blocks() / 20,
            "only {} of {} blocks touched",
            distinct.len(),
            t.footprint_blocks()
        );
    }

    #[test]
    fn scaled_to_produces_roughly_target_requests() {
        let gen = SyntheticWorkload::paper_scaled_to(WorkloadId::Proj, 10_000);
        let reqs = gen.scaled_requests();
        assert!(
            (5_000..=20_000).contains(&reqs),
            "expected about 10k requests, got {reqs}"
        );
    }

    #[test]
    fn scale_floors_apply() {
        let gen = SyntheticWorkload::paper(WorkloadId::Webusers).scale(u64::MAX / 2);
        assert_eq!(gen.scaled_requests(), MIN_REQUESTS);
        assert!(gen.scaled_footprint_blocks() >= MIN_FOOTPRINT_BLOCKS);
        assert_eq!(gen.scaled_footprint_blocks() % EXTENT_BLOCKS, 0);
    }

    #[test]
    fn theta_calibration_orders_workloads_by_skew() {
        // deasna (86.9% to top 20%) must get a larger exponent than
        // webresearch (51.3%).
        let deasna = SyntheticWorkload::paper(WorkloadId::Deasna);
        let webresearch = SyntheticWorkload::paper(WorkloadId::Webresearch);
        let e = 10_000;
        assert!(deasna.calibrate_theta(e) > webresearch.calibrate_theta(e));
    }

    #[test]
    fn coprime_stride_is_coprime() {
        for n in [8u64, 100, 1024, 7_919, 65_536] {
            let s = coprime_stride(n);
            assert_eq!(gcd(s, n), 1, "stride {s} not coprime with {n}");
        }
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = SyntheticWorkload::paper(WorkloadId::Wdev).scale(0);
    }
}
