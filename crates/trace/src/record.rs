//! Trace records and whole traces.

use serde::{Deserialize, Serialize};

use craid_diskmodel::{IoKind, BLOCK_SIZE_BYTES};
use craid_simkit::SimTime;

/// One block-level I/O request of a trace.
///
/// Offsets are dataset-relative logical block numbers (4 KiB blocks); the
/// simulator maps them onto the array's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Arrival time relative to the start of the trace.
    pub time: SimTime,
    /// Read or write.
    pub kind: IoKind,
    /// First logical block touched.
    pub offset: u64,
    /// Number of blocks touched.
    pub length: u64,
}

impl TraceRecord {
    /// Creates a record.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn new(time: SimTime, kind: IoKind, offset: u64, length: u64) -> Self {
        assert!(length > 0, "a request must touch at least one block");
        TraceRecord {
            time,
            kind,
            offset,
            length,
        }
    }

    /// Bytes moved by this request.
    pub fn bytes(&self) -> u64 {
        self.length * BLOCK_SIZE_BYTES
    }

    /// One past the last block touched.
    pub fn end(&self) -> u64 {
        self.offset + self.length
    }

    /// Iterates over the logical blocks touched by this request.
    pub fn blocks(&self) -> impl Iterator<Item = u64> {
        self.offset..self.end()
    }
}

/// An ordered sequence of trace records plus identifying metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    records: Vec<TraceRecord>,
    /// Number of distinct logical blocks the workload may touch.
    footprint_blocks: u64,
}

impl Trace {
    /// Creates a trace from records (must be in non-decreasing time order).
    ///
    /// # Panics
    ///
    /// Panics if the records are not time-ordered or a record addresses a
    /// block at or beyond `footprint_blocks`.
    pub fn new(name: impl Into<String>, footprint_blocks: u64, records: Vec<TraceRecord>) -> Self {
        assert!(footprint_blocks > 0, "footprint must be positive");
        for pair in records.windows(2) {
            assert!(
                pair[0].time <= pair[1].time,
                "trace records must be in time order"
            );
        }
        for r in &records {
            assert!(
                r.end() <= footprint_blocks,
                "record at {} touches block {} beyond the footprint of {footprint_blocks}",
                r.time,
                r.end() - 1
            );
        }
        Trace {
            name: name.into(),
            records,
            footprint_blocks,
        }
    }

    /// The workload's name (e.g. `"wdev"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct logical blocks the workload may touch.
    pub fn footprint_blocks(&self) -> u64 {
        self.footprint_blocks
    }

    /// The records, in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Duration from the first to the last request (zero for traces with at
    /// most one request).
    pub fn duration(&self) -> craid_simkit::SimDuration {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => last.time.saturating_since(first.time),
            _ => craid_simkit::SimDuration::ZERO,
        }
    }

    /// Total bytes read by the trace.
    pub fn read_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.kind.is_read())
            .map(TraceRecord::bytes)
            .sum()
    }

    /// Total bytes written by the trace.
    pub fn write_bytes(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.kind.is_write())
            .map(TraceRecord::bytes)
            .sum()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ms: f64, kind: IoKind, offset: u64, len: u64) -> TraceRecord {
        TraceRecord::new(SimTime::from_millis(ms), kind, offset, len)
    }

    #[test]
    fn record_accessors() {
        let r = rec(5.0, IoKind::Read, 100, 8);
        assert_eq!(r.bytes(), 8 * BLOCK_SIZE_BYTES);
        assert_eq!(r.end(), 108);
        assert_eq!(r.blocks().count(), 8);
    }

    #[test]
    fn trace_metadata_and_totals() {
        let t = Trace::new(
            "toy",
            1_000,
            vec![
                rec(0.0, IoKind::Read, 0, 4),
                rec(1.0, IoKind::Write, 10, 2),
                rec(2.0, IoKind::Read, 20, 2),
            ],
        );
        assert_eq!(t.name(), "toy");
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.footprint_blocks(), 1_000);
        assert_eq!(t.read_bytes(), 6 * BLOCK_SIZE_BYTES);
        assert_eq!(t.write_bytes(), 2 * BLOCK_SIZE_BYTES);
        assert_eq!(t.duration().as_millis(), 2.0);
        assert_eq!(t.iter().count(), 3);
        assert_eq!((&t).into_iter().count(), 3);
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = Trace::new("empty", 10, Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.duration(), craid_simkit::SimDuration::ZERO);
        assert_eq!(t.read_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_records_rejected() {
        Trace::new(
            "bad",
            100,
            vec![rec(5.0, IoKind::Read, 0, 1), rec(1.0, IoKind::Read, 0, 1)],
        );
    }

    #[test]
    #[should_panic(expected = "beyond the footprint")]
    fn records_must_fit_footprint() {
        Trace::new("bad", 10, vec![rec(0.0, IoKind::Read, 8, 4)]);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_length_record_rejected() {
        rec(0.0, IoKind::Read, 0, 0);
    }
}
