//! # craid-trace
//!
//! Block-level workload traces for the CRAID simulator.
//!
//! The paper replays one week of seven real-world traces (its Table 1):
//! `cello99`, `deasna`, `home02`, `webresearch`, `webusers`, `wdev` and
//! `proj`. Those traces are not redistributable, so this crate provides
//! **synthetic equivalents**: for every trace, [`catalog`] records the
//! published summary statistics (read/write volume, unique footprint, R/W
//! ratio, share of accesses going to the top-20 % blocks, day-to-day
//! working-set overlap) and [`synth`] generates a deterministic workload that
//! matches them — Zipf-skewed popularity, slowly drifting daily working sets,
//! bursty multi-block requests.
//!
//! [`stats`] analyses any trace (synthetic or otherwise) and reproduces the
//! paper's workload-characterisation artifacts: the Table 1 summary row, the
//! block-access-frequency CDF and the daily working-set overlap of Fig. 1.
//!
//! # Example
//!
//! ```
//! use craid_trace::{SyntheticWorkload, WorkloadId};
//!
//! // A heavily scaled-down wdev workload (deterministic for a given seed).
//! let trace = SyntheticWorkload::paper(WorkloadId::Wdev)
//!     .scale(2_000)
//!     .generate(42);
//! assert!(!trace.is_empty());
//! let stats = craid_trace::stats::summarize(&trace);
//! assert!(stats.top20_access_share > 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod record;
pub mod stats;
pub mod synth;

pub use catalog::{WorkloadId, WorkloadSpec};
pub use record::{Trace, TraceRecord};
pub use stats::{FrequencyCdf, OverlapSeries, TraceSummary};
pub use synth::SyntheticWorkload;
