//! A workspace-local stand-in for the `serde` crate.
//!
//! This build environment has no access to a crates registry, so the
//! workspace vendors the small slice of serde it actually needs: a
//! self-describing value tree ([`Value`]), [`Serialize`] / [`Deserialize`]
//! traits over it, and `#[derive(Serialize, Deserialize)]` for plain data
//! structs and enums (externally-tagged, like real serde). The `serde_json`
//! and `toml` shims are front-ends that print and parse [`Value`] trees.
//!
//! The surface is intentionally tiny; if the real serde ever becomes
//! available, the derives and trait bounds in the workspace are
//! source-compatible with it.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing value: the data model every (de)serializer works on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map (insertion order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short human-readable description of the value's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced by deserialization (and by the format front-ends).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Error for a value of the wrong kind.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {}", got.kind()))
    }

    /// Error for a missing struct field.
    pub fn missing_field(field: &str) -> Self {
        Error::custom(format!("missing field `{field}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the value data model.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from the value data model.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;

    /// What an *absent* struct field deserializes to. Only types with a
    /// natural "nothing" — `Option` (`None`) and collections (empty) —
    /// override this; everything else reports the missing field. This is
    /// deliberately distinct from deserializing an explicit `null` (e.g.
    /// `f64` accepts `null` as NaN for round-tripping non-finite floats,
    /// but a *missing* `f64` field is still an error, as in real serde).
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] unless the type has an absent-value default.
    fn deserialize_missing() -> Result<Self, Error> {
        Err(Error::custom("missing value"))
    }
}

/// Deserializes a struct field from a map, treating a missing key the way
/// real serde does: `Option` fields default to `None` (and collections to
/// empty) via [`Deserialize::deserialize_missing`]; every other type
/// reports a missing-field error.
pub fn field<T: Deserialize>(map: &Value, name: &str) -> Result<T, Error> {
    match map.get(name) {
        Some(v) => T::deserialize(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::deserialize_missing().map_err(|_| Error::missing_field(name)),
    }
}

macro_rules! impl_serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let v = *self as i128;
                if let Ok(i) = i64::try_from(v) {
                    Value::Int(i)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let out = match *value {
                    Value::Int(i) => <$ty>::try_from(i).ok(),
                    Value::UInt(u) => <$ty>::try_from(u).ok(),
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 2e18 => {
                        <$ty>::try_from(f as i64).ok()
                    }
                    _ => None,
                };
                out.ok_or_else(|| Error::expected(stringify!($ty), value))
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Serialize for u64 {
    fn serialize(&self) -> Value {
        if let Ok(i) = i64::try_from(*self) {
            Value::Int(i)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Int(i) => u64::try_from(i).map_err(|_| Error::expected("u64", value)),
            Value::UInt(u) => Ok(u),
            Value::Float(f) if f.fract() == 0.0 && (0.0..2e18).contains(&f) => Ok(f as u64),
            _ => Err(Error::expected("u64", value)),
        }
    }
}

impl Serialize for u128 {
    fn serialize(&self) -> Value {
        // Large enough for every counter in this workspace; saturate rather
        // than extend the data model.
        u64::try_from(*self).map_or(Value::UInt(u64::MAX), |u| u.serialize())
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            // Non-finite floats serialize as null (as in real serde_json).
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::expected("f64", value)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        f64::from(*self).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", value)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }

    // Documents can omit empty arrays entirely (TOML has no way to express
    // them per-table otherwise).
    fn deserialize_missing() -> Result<Self, Error> {
        Ok(Vec::new())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn deserialize_missing() -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let seq = value.as_seq().ok_or_else(|| Error::expected("tuple", value))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a tuple of {expected} elements, got {}",
                        seq.len()
                    )));
                }
                Ok(($($name::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys, which the data model stores as strings.
pub trait MapKey: Sized {
    /// The key rendered as a map-entry string.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($ty:ty),*) => {$(
        impl MapKey for $ty {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse()
                    .map_err(|_| Error::custom(format!("invalid map key `{key}`")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0)); // deterministic output regardless of hash order
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::expected("map", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::expected("map", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn serialize(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort(); // deterministic output regardless of hash order
        Value::Seq(items.into_iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = Deserialize::deserialize(&v.serialize()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u64> = None;
        assert_eq!(opt.serialize(), Value::Null);
        let back: Option<u64> = Deserialize::deserialize(&Value::Null).unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn field_lookup_handles_missing_keys() {
        let map = Value::Map(vec![("a".into(), Value::Int(1))]);
        let a: u64 = field(&map, "a").unwrap();
        assert_eq!(a, 1);
        let missing: Option<u64> = field(&map, "b").unwrap();
        assert_eq!(missing, None);
        let empty: Vec<u64> = field(&map, "b").unwrap();
        assert!(empty.is_empty());
        assert!(field::<u64>(&map, "b").is_err());
        // A *missing* f64 is an error even though an explicit null is NaN.
        assert!(field::<f64>(&map, "b").is_err());
        let nulled = Value::Map(vec![("b".into(), Value::Null)]);
        assert!(field::<f64>(&nulled, "b").unwrap().is_nan());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.serialize(), Value::Null);
        assert!(f64::deserialize(&Value::Null).unwrap().is_nan());
    }
}
