//! TOML printing and parsing for the workspace-local serde shim.
//!
//! Implements the subset of TOML that declarative scenario files use:
//! `key = value` pairs, `[tables]`, `[[arrays of tables]]`, dotted headers,
//! basic strings, integers, floats, booleans, arrays, and inline tables.
//! Dates, multi-line strings, and literal strings are not supported.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` as a TOML document. The top level must be a map.
///
/// # Errors
///
/// Returns an [`Error`] if the value tree does not form a valid TOML
/// document (e.g. the top level is not a map).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let root = value.serialize();
    let Value::Map(_) = &root else {
        return Err(Error::custom("TOML documents must be maps at top level"));
    };
    let mut out = String::new();
    write_table(&mut out, &root, &mut Vec::new())?;
    Ok(out)
}

/// Parses a TOML document and deserializes it into `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed TOML or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_document(text)?;
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

/// True when the value can appear on the right-hand side of `key = ...`.
fn is_inline(value: &Value) -> bool {
    match value {
        Value::Map(_) => false,
        Value::Seq(items) => items.iter().all(is_inline_in_array),
        _ => true,
    }
}

/// Inside arrays everything is written inline (inline tables for maps),
/// except arrays of maps which become `[[...]]` tables.
fn is_inline_in_array(value: &Value) -> bool {
    !matches!(value, Value::Map(_))
}

fn write_table(out: &mut String, table: &Value, path: &mut Vec<String>) -> Result<(), Error> {
    let entries = table
        .as_map()
        .ok_or_else(|| Error::custom("expected a map"))?;

    // Scalars and inline arrays first, then sub-tables, then table arrays —
    // the order TOML requires to avoid re-opening headers.
    for (key, value) in entries.iter().filter(|(_, v)| v.kind() != "null") {
        if is_inline(value) {
            out.push_str(&format!("{} = ", bare_key(key)));
            write_inline(out, value)?;
            out.push('\n');
        }
    }
    for (key, value) in entries {
        match value {
            Value::Map(_) => {
                path.push(key.clone());
                out.push_str(&format!("\n[{}]\n", path_key(path)));
                write_table(out, value, path)?;
                path.pop();
            }
            Value::Seq(items) if !is_inline(value) => {
                for item in items {
                    path.push(key.clone());
                    out.push_str(&format!("\n[[{}]]\n", path_key(path)));
                    write_table(out, item, path)?;
                    path.pop();
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn write_inline(out: &mut String, value: &Value) -> Result<(), Error> {
    match value {
        Value::Null => return Err(Error::custom("null has no TOML representation")),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            let text = f.to_string();
            out.push_str(&text);
            if !text.contains('.') && !text.contains('e') && !text.contains('E') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push_str("{ ");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{} = ", bare_key(k)));
                write_inline(out, v)?;
            }
            out.push_str(" }");
        }
    }
    Ok(())
}

fn bare_key(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        key.to_string()
    } else {
        format!("{key:?}")
    }
}

fn path_key(path: &[String]) -> String {
    path.iter()
        .map(|k| bare_key(k))
        .collect::<Vec<_>>()
        .join(".")
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_document(text: &str) -> Result<Value, Error> {
    let mut root = Value::Map(Vec::new());
    // Path of the table currently being filled (empty = root).
    let mut current: Vec<String> = Vec::new();

    let mut lines = text.lines().enumerate().peekable();
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| Error::custom(format!("line {}: {msg}", lineno + 1));

        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let path = parse_header_path(header).map_err(|e| err(&e))?;
            push_table_array(&mut root, &path).map_err(|e| err(&e))?;
            current = path;
            current.push(String::new()); // marker: inside the last array element
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let path = parse_header_path(header).map_err(|e| err(&e))?;
            ensure_table(&mut root, &path).map_err(|e| err(&e))?;
            current = path;
        } else {
            // A key = value line; values may span lines for arrays.
            let mut full = line;
            while needs_continuation(&full) {
                match lines.next() {
                    Some((_, next)) => {
                        full.push(' ');
                        full.push_str(strip_comment(next).trim());
                    }
                    None => return Err(err("unterminated value")),
                }
            }
            let (key, rest) = full
                .split_once('=')
                .ok_or_else(|| err("expected `key = value`"))?;
            let key = parse_key(key.trim()).map_err(|e| err(&e))?;
            let mut cursor = Cursor::new(rest.trim());
            let value = cursor.value().map_err(|e| err(&e))?;
            cursor.skip_ws();
            if !cursor.done() {
                return Err(err("trailing characters after value"));
            }
            insert_at(&mut root, &current, &key, value).map_err(|e| err(&e))?;
        }
    }
    Ok(root)
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => {
                escaped = !escaped;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// True while an array value still has unbalanced brackets.
fn needs_continuation(line: &str) -> bool {
    let Some((_, rest)) = line.split_once('=') else {
        return false;
    };
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in rest.chars() {
        match c {
            '\\' if in_str => {
                escaped = !escaped;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            '{' if !in_str => depth += 1,
            '}' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth > 0
}

fn parse_header_path(header: &str) -> Result<Vec<String>, String> {
    header
        .split('.')
        .map(|part| parse_key(part.trim()))
        .collect()
}

fn parse_key(key: &str) -> Result<String, String> {
    if let Some(quoted) = key.strip_prefix('"').and_then(|k| k.strip_suffix('"')) {
        return Ok(quoted.to_string());
    }
    if !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(key.to_string())
    } else {
        Err(format!("invalid key `{key}`"))
    }
}

/// Walks `path` from the root, creating tables as needed, and returns the
/// target table. A path segment that lands on an array of tables descends
/// into the array's last element.
fn descend<'a>(root: &'a mut Value, path: &[String]) -> Result<&'a mut Value, String> {
    let mut node = root;
    for seg in path {
        if seg.is_empty() {
            continue; // the inside-array marker from `[[...]]`
        }
        // Insert the key if absent.
        let entries = match node {
            Value::Map(entries) => entries,
            Value::Seq(items) => match items.last_mut() {
                Some(Value::Map(entries)) => entries,
                _ => return Err("array of tables contains a non-table".into()),
            },
            _ => return Err(format!("`{seg}` is not a table")),
        };
        if !entries.iter().any(|(k, _)| k == seg) {
            entries.push((seg.clone(), Value::Map(Vec::new())));
        }
        let (_, next) = entries
            .iter_mut()
            .find(|(k, _)| k == seg)
            .expect("just inserted");
        node = next;
    }
    // Land inside the last array element if the path ends on an array.
    if let Value::Seq(items) = node {
        node = items
            .last_mut()
            .ok_or_else(|| "empty array of tables".to_string())?;
    }
    Ok(node)
}

fn ensure_table(root: &mut Value, path: &[String]) -> Result<(), String> {
    descend(root, path).map(|_| ())
}

fn push_table_array(root: &mut Value, path: &[String]) -> Result<(), String> {
    let (last, parent_path) = path.split_last().ok_or("empty table-array header")?;
    let parent = descend(root, parent_path)?;
    let entries = match parent {
        Value::Map(entries) => entries,
        _ => return Err("parent of an array of tables must be a table".into()),
    };
    match entries.iter_mut().find(|(k, _)| k == last) {
        Some((_, Value::Seq(items))) => items.push(Value::Map(Vec::new())),
        Some(_) => return Err(format!("key `{last}` is not an array of tables")),
        None => entries.push((last.clone(), Value::Seq(vec![Value::Map(Vec::new())]))),
    }
    Ok(())
}

fn insert_at(root: &mut Value, table: &[String], key: &str, value: Value) -> Result<(), String> {
    let node = descend(root, table)?;
    let entries = match node {
        Value::Map(entries) => entries,
        _ => return Err("cannot insert into a non-table".into()),
    };
    if entries.iter().any(|(k, _)| k == key) {
        return Err(format!("duplicate key `{key}`"));
    }
    entries.push((key.to_string(), value));
    Ok(())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.inline_table(),
            Some(b't') | Some(b'f') => self.boolean(),
            Some(b) if b == b'-' || b == b'+' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?}", other.map(|b| b as char))),
        }
    }

    fn boolean(&mut self) -> Result<Value, String> {
        for (kw, v) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                return Ok(Value::Bool(v));
            }
        }
        Err("invalid boolean".into())
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8")?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.pos += 1; // [
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err("expected ',' or ']' in array".into()),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Value, String> {
        self.pos += 1; // {
        let mut entries = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Map(entries));
            }
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'=' {
                    break;
                }
                self.pos += 1;
            }
            let key = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "invalid UTF-8")?
                .trim()
                .to_string();
            let key = parse_key(&key)?;
            if self.peek() != Some(b'=') {
                return Err("expected '=' in inline table".into());
            }
            self.pos += 1;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err("expected ',' or '}' in inline table".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'-') | Some(b'+')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'-') | Some(b'+')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid UTF-8")?
            .replace('_', "");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| format!("invalid float `{text}`"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            Err(format!("invalid integer `{text}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_and_parses_nested_tables() {
        let value = Value::Map(vec![
            ("name".into(), Value::Str("demo".into())),
            ("count".into(), Value::Int(3)),
            (
                "inner".into(),
                Value::Map(vec![("flag".into(), Value::Bool(true))]),
            ),
            (
                "events".into(),
                Value::Seq(vec![
                    Value::Map(vec![("at".into(), Value::Float(0.5))]),
                    Value::Map(vec![("at".into(), Value::Float(1.5))]),
                ]),
            ),
        ]);
        let text = to_string(&value).unwrap();
        assert!(text.contains("[inner]"));
        assert!(text.contains("[[events]]"));
        let back = parse_document(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn parses_handwritten_documents() {
        let text = r#"
            # a scenario-ish document
            name = "hand written"
            fractions = [0.05, 0.1,
                         0.2]
            mixed = { kind = "Wlru", w = 0.5 }

            [array]
            disks = 50

            [[events]]
            at = 100.0
            added = 3

            [[events]]
            at = 200.0
            added = 4
        "#;
        let doc = parse_document(text).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str().unwrap(), "hand written");
        assert_eq!(doc.get("fractions").unwrap().as_seq().unwrap().len(), 3);
        assert_eq!(
            doc.get("array").unwrap().get("disks").unwrap(),
            &Value::Int(50)
        );
        let events = doc.get("events").unwrap().as_seq().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].get("added").unwrap(), &Value::Int(4));
        assert_eq!(
            doc.get("mixed").unwrap().get("kind").unwrap().as_str(),
            Some("Wlru")
        );
    }

    #[test]
    fn strings_with_hashes_and_quotes_survive() {
        let value = Value::Map(vec![(
            "s".into(),
            Value::Str("a # not-a-comment \"quoted\"".into()),
        )]);
        let text = to_string(&value).unwrap();
        let back = parse_document(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        assert!(parse_document("a = 1\na = 2").is_err());
    }
}
