//! `#[derive(Serialize, Deserialize)]` for the workspace-local serde shim.
//!
//! The registry is unavailable in this build environment, so this derive is
//! written against `proc_macro` alone: it walks the item's token trees to
//! recover the shape (struct with named fields, tuple struct, or enum with
//! unit / tuple / struct variants) and then emits the trait impl as source
//! text. Generics are not supported — every serialized type in the
//! workspace is a plain data type.
//!
//! Representation matches real serde's defaults: structs become maps,
//! newtype structs are transparent, enums are externally tagged.
//!
//! One field attribute is honoured, with real serde's syntax:
//! `#[serde(skip_serializing_if = "path")]` omits the field from the
//! serialized map when `path(&value)` is true (deserialization of a missing
//! field already falls back through `serde::field`'s missing-value path).
//! All other `#[serde(...)]` attributes are rejected rather than silently
//! ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its name plus the optional `skip_serializing_if` guard.
#[derive(Debug)]
struct FieldDef {
    name: String,
    skip_if: Option<String>,
}

#[derive(Debug)]
enum Fields {
    /// `struct S;` or a unit enum variant.
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<FieldDef>),
    /// Tuple fields (count).
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => emit_serialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => emit_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected a type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, got {other:?}")),
        },
        other => return Err(format!("cannot derive serde for `{other}` items")),
    };
    Ok(Input { name, shape })
}

/// Advances past `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility prefix.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` then the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Parses `name: Type, ...` bodies, returning field definitions in order
/// (field name plus any `#[serde(skip_serializing_if = "path")]` guard).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<FieldDef>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip_if = take_field_attributes(&tokens, &mut i)?;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected a field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(&tokens, &mut i);
        fields.push(FieldDef { name, skip_if });
    }
    Ok(fields)
}

/// Advances past a field's attributes and visibility like
/// [`skip_attributes_and_visibility`], but inspects `#[serde(...)]`
/// attributes on the way: returns the `skip_serializing_if` path when one is
/// present, and rejects any other serde attribute (this shim must not
/// silently ignore behaviour the real crate would honour).
fn take_field_attributes(tokens: &[TokenTree], i: &mut usize) -> Result<Option<String>, String> {
    let mut skip_if = None;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if let Some(path) = parse_serde_attribute(g.stream())? {
                        skip_if = Some(path);
                    }
                }
                *i += 2; // `#` then the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
    Ok(skip_if)
}

/// Inspects one attribute body (the tokens inside `#[...]`). For
/// `serde(skip_serializing_if = "path")` returns the path; for any other
/// `serde(...)` form errors; for non-serde attributes returns `None`.
fn parse_serde_attribute(stream: TokenStream) -> Result<Option<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(None),
    }
    let Some(TokenTree::Group(g)) = tokens.get(1) else {
        return Err("malformed #[serde] attribute (expected #[serde(...)])".to_string());
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match (inner.first(), inner.get(1), inner.get(2), inner.len()) {
        (
            Some(TokenTree::Ident(key)),
            Some(TokenTree::Punct(eq)),
            Some(TokenTree::Literal(lit)),
            3,
        ) if key.to_string() == "skip_serializing_if" && eq.as_char() == '=' => {
            let raw = lit.to_string();
            let path = raw.trim_matches('"');
            if path.is_empty() || path.len() == raw.len() {
                return Err(format!(
                    "skip_serializing_if needs a quoted path, got {raw}"
                ));
            }
            Ok(Some(path.to_string()))
        }
        _ => Err(format!(
            "unsupported #[serde(...)] attribute (only `skip_serializing_if = \"path\"` \
             is implemented by the shim derive): serde({})",
            g.stream()
        )),
    }
}

/// Skips a type expression up to (and including) the next top-level comma.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected a variant name, got {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn emit_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Struct(Fields::Named(fields)) => named_map_body(fields, "self."),
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// The serialize expression for a named-field map: a plain `vec![...]` when
/// no field carries a skip guard, a conditional-push block otherwise (so a
/// skipped field leaves no `null` behind — the byte-identity contract for
/// optional report sections). `access` prefixes each field (`self.` for
/// structs, empty for enum-variant bindings).
fn named_map_body(fields: &[FieldDef], access: &str) -> String {
    if fields.iter().all(|f| f.skip_if.is_none()) {
        let entries: Vec<String> = fields
            .iter()
            .map(|f| {
                let n = &f.name;
                format!("({n:?}.to_string(), ::serde::Serialize::serialize(&{access}{n}))")
            })
            .collect();
        return format!("::serde::Value::Map(vec![{}])", entries.join(", "));
    }
    let pushes: Vec<String> = fields
        .iter()
        .map(|f| {
            let n = &f.name;
            let push = format!(
                "entries.push(({n:?}.to_string(), ::serde::Serialize::serialize(&{access}{n})));"
            );
            match &f.skip_if {
                None => push,
                Some(path) => format!("if !{path}(&{access}{n}) {{ {push} }}"),
            }
        })
        .collect();
    format!(
        "{{ let mut entries: Vec<(String, ::serde::Value)> = Vec::new(); {} \
         ::serde::Value::Map(entries) }}",
        pushes.join(" ")
    )
}

fn serialize_arm(name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.fields {
        Fields::Unit => {
            format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),")
        }
        Fields::Tuple(1) => format!(
            "{name}::{v}(f0) => ::serde::Value::Map(vec![({v:?}.to_string(), \
             ::serde::Serialize::serialize(f0))]),"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::serialize({b})"))
                .collect();
            format!(
                "{name}::{v}({}) => ::serde::Value::Map(vec![({v:?}.to_string(), \
                 ::serde::Value::Seq(vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        Fields::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let n = &f.name;
                    format!("({n:?}.to_string(), ::serde::Serialize::serialize({n}))")
                })
                .collect();
            format!(
                "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![({v:?}.to_string(), \
                 ::serde::Value::Map(vec![{entries}]))]),",
                binds = binds.join(", "),
                entries = entries.join(", ")
            )
        }
    }
}

fn emit_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Unit) => format!("Ok({name})"),
        Shape::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let n = &f.name;
                    format!("{n}: ::serde::field(value, {n:?})?")
                })
                .collect();
            format!(
                "if value.as_map().is_none() {{\n\
                     return Err(::serde::Error::expected(\"map for struct {name}\", value));\n\
                 }}\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = value.as_seq().ok_or_else(|| \
                     ::serde::Error::expected(\"sequence for tuple struct {name}\", value))?;\n\
                 if seq.len() != {n} {{\n\
                     return Err(::serde::Error::custom(format!(\
                         \"expected {n} elements for {name}, got {{}}\", seq.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => emit_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn emit_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("{0:?} => return Ok({name}::{0}),", v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let tag = &v.name;
            let build = match &v.fields {
                Fields::Unit => return None,
                Fields::Tuple(1) => {
                    format!("return Ok({name}::{tag}(::serde::Deserialize::deserialize(inner)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&seq[{i}])?"))
                        .collect();
                    format!(
                        "let seq = inner.as_seq().ok_or_else(|| \
                             ::serde::Error::expected(\"sequence for variant {tag}\", inner))?;\n\
                         if seq.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\
                                 \"wrong arity for variant {tag}\"));\n\
                         }}\n\
                         return Ok({name}::{tag}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let n = &f.name;
                            format!("{n}: ::serde::field(inner, {n:?})?")
                        })
                        .collect();
                    format!("return Ok({name}::{tag} {{ {} }})", inits.join(", "))
                }
            };
            Some(format!("{tag:?} => {{ {build} }}"))
        })
        .collect();

    format!(
        "match value {{\n\
             ::serde::Value::Str(s) => {{\n\
                 match s.as_str() {{\n\
                     {unit}\n\
                     _ => {{}}\n\
                 }}\n\
             }}\n\
             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                     {tagged}\n\
                     _ => {{}}\n\
                 }}\n\
             }}\n\
             _ => {{}}\n\
         }}\n\
         Err(::serde::Error::custom(format!(\
             \"unknown variant for enum {name}: {{value:?}}\")))",
        unit = unit_arms.join("\n"),
        tagged = tagged_arms.join("\n"),
    )
}
