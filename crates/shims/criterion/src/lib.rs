//! A workspace-local stand-in for `criterion`.
//!
//! Implements the call surface the microbenchmarks use — `Criterion`
//! builders, `bench_function`, benchmark groups, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with straightforward
//! wall-clock timing: warm up, then run batches until the measurement
//! window closes, and print the mean time per iteration. No statistics
//! beyond the mean; the real criterion can be dropped in unchanged when a
//! registry is available.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of samples (kept for call compatibility; the shim
    /// only uses it to bound batch counts).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.clone(),
            result: None,
        };
        f(&mut bencher);
        if let Some((iters, elapsed)) = bencher.result {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!(
                "{name:<50} {} /iter ({iters} iterations)",
                format_ns(per_iter)
            );
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }
}

/// A group of related benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("  {}", name.into());
        self.criterion.bench_function(&name, f);
        self
    }

    /// Finishes the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; measures the routine under test.
pub struct Bencher {
    config: Criterion,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, first warming up and then running batches until the
    /// measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < self.config.measurement_time {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.result = Some((iters, start.elapsed()));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else {
        format!("{:8.2} ms", ns / 1_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }
}
