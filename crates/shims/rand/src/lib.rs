//! A workspace-local stand-in for the `rand` crate (0.8 trait surface).
//!
//! Provides the small slice the simulator uses: [`RngCore`], [`SeedableRng`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded through SplitMix64
//! — deterministic, portable, and statistically strong enough for the
//! workload models (the real `StdRng` makes no cross-version stability
//! promises either, so pinning our own keeps experiments reproducible).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (infallible here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`].
    ///
    /// # Errors
    ///
    /// Never fails for the generators in this shim.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// A uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's multiply-shift; bias is < 2^-64 per draw.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                if start == <$ty>::MIN && end == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                (start..end + 1).sample_single(rng)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as i64 + hi as i64) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).sample_single(rng) as f32
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let f: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        rng.try_fill_bytes(&mut buf).unwrap();
    }
}
