//! A workspace-local stand-in for `proptest`.
//!
//! Supports the features the workspace's property tests use: the
//! `proptest!` macro over functions whose arguments bind `pattern in
//! strategy`, range strategies over integers and floats, tuple strategies,
//! `proptest::collection::vec`, `any::<bool>()`, and the `prop_assert*`
//! macros. Each test runs a fixed number of random cases from a
//! deterministic seed; there is no shrinking — a failing case prints its
//! inputs via the assertion message instead.

#![forbid(unsafe_code)]

/// Number of random cases each property runs.
pub const NUM_CASES: u32 = 96;

/// Deterministic RNG for test-case generation.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// A fixed-seed RNG: property runs are reproducible across invocations.
    pub fn deterministic() -> TestRng {
        StdRng::seed_from_u64(0x70726f70_74657374) // "proptest"
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Generates random values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u32>()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs each `fn name(bindings in strategies) { body }` as a `#[test]`
/// executing [`NUM_CASES`] random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )+) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let mut proptest_rng = $crate::test_runner::deterministic();
                for proptest_case in 0..$crate::NUM_CASES {
                    let _ = proptest_case;
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The usual import surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Doc comments before properties must parse.
        fn ranges_stay_in_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        fn vectors_respect_length(v in crate::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        fn tuples_and_any_compose((a, b, flag) in (0u64..4, 0u64..4, any::<bool>())) {
            prop_assert!(a < 4 && b < 4);
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::deterministic();
        let mut b = crate::test_runner::deterministic();
        for _ in 0..32 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }
}
