//! JSON printing and parsing for the workspace-local serde shim.
//!
//! Supports exactly the JSON subset the shim's [`serde::Value`] model can
//! represent. Floats are printed with Rust's shortest round-trip formatting,
//! so `serialize -> print -> parse -> deserialize` preserves every finite
//! `f64` bit-for-bit; non-finite floats print as `null` (as real serde_json
//! does).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for value-model types; the `Result` mirrors real serde_json.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, indented JSON.
///
/// # Errors
///
/// Never fails for value-model types; the `Result` mirrors real serde_json.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::deserialize(&value)
}

/// Parses JSON text into a raw [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_block(out, items.iter().map(Item::Seq), '[', ']', indent, depth),
        Value::Map(entries) => write_block(
            out,
            entries.iter().map(|(k, v)| Item::Map(k, v)),
            '{',
            '}',
            indent,
            depth,
        ),
    }
}

enum Item<'a> {
    Seq(&'a Value),
    Map(&'a str, &'a Value),
}

fn write_block<'a>(
    out: &mut String,
    items: impl Iterator<Item = Item<'a>>,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
) {
    let items: Vec<Item<'a>> = items.collect();
    out.push(open);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        match item {
            Item::Seq(v) => write_value(out, v, indent, depth + 1),
            Item::Map(k, v) => {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let text = f.to_string();
    out.push_str(&text);
    // Keep the value recognizably a float so it parses back as one.
    if !text.contains('.') && !text.contains('e') && !text.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid float `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let json = to_string(&vec![1.5f64, -2.0, 1e300]).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, vec![1.5, -2.0, 1e300]);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let value = Value::Map(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert_eq!(parse_value(&pretty).unwrap(), value);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\none \"two\" \\ three\ttab".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let json = to_string(&vec![4.0f64]).unwrap();
        assert_eq!(json, "[4.0]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, vec![4.0]);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("12 34").is_err());
    }
}
