//! Umbrella package for the CRAID reproduction workspace.
//!
//! The real library code lives in the `crates/` workspace members; this
//! package only hosts the cross-crate integration tests under `tests/` and
//! the runnable examples under `examples/`. It re-exports the main library
//! crate so documentation readers land in the right place.

#![forbid(unsafe_code)]

pub use craid;
