//! LRU and Weighted-LRU policies, plus the recency list shared with ARC.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::policy::{AccessMeta, AccessOutcome, Evicted, ReplacementPolicy};

/// An ordered recency list: O(log n) touch/insert/evict with strict LRU
/// ordering. Shared by [`LruPolicy`], [`WlruPolicy`] and the ARC lists.
#[derive(Debug, Clone, Default)]
pub(crate) struct LruList {
    /// block -> recency stamp
    stamps: HashMap<u64, u64>,
    /// recency stamp -> block (ascending = least recently used first)
    order: BTreeMap<u64, u64>,
    next_stamp: u64,
}

impl LruList {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.stamps.len()
    }

    pub(crate) fn contains(&self, block: u64) -> bool {
        self.stamps.contains_key(&block)
    }

    /// Inserts `block` as the most recently used entry (or refreshes it).
    pub(crate) fn touch(&mut self, block: u64) {
        if let Some(old) = self.stamps.remove(&block) {
            self.order.remove(&old);
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.stamps.insert(block, stamp);
        self.order.insert(stamp, block);
    }

    /// Removes and returns the least recently used block.
    pub(crate) fn pop_lru(&mut self) -> Option<u64> {
        let (&stamp, &block) = self.order.iter().next()?;
        self.order.remove(&stamp);
        self.stamps.remove(&block);
        Some(block)
    }

    /// Removes a specific block; returns true if it was present.
    pub(crate) fn remove(&mut self, block: u64) -> bool {
        if let Some(stamp) = self.stamps.remove(&block) {
            self.order.remove(&stamp);
            true
        } else {
            false
        }
    }

    /// Blocks in least-recently-used-first order.
    pub(crate) fn iter_lru_first(&self) -> impl Iterator<Item = u64> + '_ {
        self.order.values().copied()
    }

    pub(crate) fn clear(&mut self) -> Vec<u64> {
        let blocks: Vec<u64> = self.order.values().copied().collect();
        self.order.clear();
        self.stamps.clear();
        blocks
    }
}

/// Plain Least Recently Used replacement.
#[derive(Debug, Clone)]
pub struct LruPolicy {
    capacity: usize,
    list: LruList,
    dirty: HashMap<u64, bool>,
}

impl LruPolicy {
    /// Creates an LRU policy holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruPolicy {
            capacity,
            list: LruList::new(),
            dirty: HashMap::new(),
        }
    }

    fn evict_one(&mut self) -> Option<Evicted> {
        let victim = self.list.pop_lru()?;
        let dirty = self.dirty.remove(&victim).unwrap_or(false);
        Some(Evicted {
            block: victim,
            dirty,
        })
    }
}

impl ReplacementPolicy for LruPolicy {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.list.len()
    }

    fn contains(&self, block: u64) -> bool {
        self.list.contains(block)
    }

    fn access(&mut self, block: u64, meta: AccessMeta) -> AccessOutcome {
        if self.list.contains(block) {
            self.list.touch(block);
            if meta.is_write {
                self.dirty.insert(block, true);
            }
            return AccessOutcome::Hit;
        }
        let evicted = if self.list.len() >= self.capacity {
            self.evict_one()
        } else {
            None
        };
        self.list.touch(block);
        self.dirty.insert(block, meta.is_write);
        match evicted {
            Some(e) => AccessOutcome::InsertedWithEviction(e),
            None => AccessOutcome::Inserted,
        }
    }

    fn mark_clean(&mut self, block: u64) {
        if let Some(d) = self.dirty.get_mut(&block) {
            *d = false;
        }
    }

    fn is_dirty(&self, block: u64) -> bool {
        self.dirty.get(&block).copied().unwrap_or(false)
    }

    fn remove(&mut self, block: u64) -> Option<Evicted> {
        if self.list.remove(block) {
            let dirty = self.dirty.remove(&block).unwrap_or(false);
            Some(Evicted { block, dirty })
        } else {
            None
        }
    }

    fn clear(&mut self) -> Vec<Evicted> {
        let blocks = self.list.clear();
        blocks
            .into_iter()
            .map(|block| Evicted {
                block,
                dirty: self.dirty.remove(&block).unwrap_or(false),
            })
            .collect()
    }

    fn resize(&mut self, capacity: usize) -> Vec<Evicted> {
        assert!(capacity > 0, "cache capacity must be positive");
        self.capacity = capacity;
        let mut out = Vec::new();
        while self.list.len() > self.capacity {
            if let Some(e) = self.evict_one() {
                out.push(e);
            }
        }
        out
    }

    fn resident_blocks(&self) -> Vec<u64> {
        self.list.iter_lru_first().collect()
    }
}

/// A Fenwick (binary-indexed) tree counting resident recency stamps, so the
/// LRU rank of a stamp — "how many resident blocks are older?" — is an
/// O(log n) prefix sum instead of an O(n) list walk.
///
/// Stamps index the tree directly, so the stamp space must stay inside the
/// window the tree was built for; [`WlruPolicy`] renumbers all live stamps
/// (compaction) whenever `next_stamp` would leave the window.
#[derive(Debug, Clone, Default)]
struct StampRanks {
    /// 1-based Fenwick array; `tree.len() - 1` is the stamp window.
    tree: Vec<u32>,
}

impl StampRanks {
    fn new(window: usize) -> Self {
        StampRanks {
            tree: vec![0; window + 1],
        }
    }

    fn window(&self) -> u64 {
        (self.tree.len() - 1) as u64
    }

    fn add(&mut self, stamp: u64) {
        let mut i = stamp as usize + 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    fn remove(&mut self, stamp: u64) {
        let mut i = stamp as usize + 1;
        while i < self.tree.len() {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Number of resident stamps strictly below `stamp` — the stamp's
    /// 0-based position from the LRU end.
    fn count_below(&self, stamp: u64) -> usize {
        let mut i = stamp as usize;
        let mut sum = 0u32;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum as usize
    }
}

/// Weighted LRU (the paper's WLRUw, §4.1): prefer evicting a *clean* block,
/// considering at most the `⌈k·w⌉` least-recently-used candidates; fall back
/// to the plain LRU victim if every candidate in that window is dirty.
///
/// With `w = 0` it degenerates to plain LRU; with `w = 1` the whole cache is
/// eligible. The reference algorithm scans the recency list from the LRU end,
/// an `O(k·w)` walk per eviction that dominated replay time on large cache
/// partitions. This implementation keeps the clean residents in a stamp-
/// ordered set and ranks the oldest one with a Fenwick tree (`StampRanks`), so every access
/// — eviction included — is `O(log k)` while selecting the exact victim the
/// reference scan would: the oldest clean block when its LRU rank falls
/// inside the scan window, the LRU head otherwise.
#[derive(Debug, Clone)]
pub struct WlruPolicy {
    capacity: usize,
    w: f64,
    /// block -> (recency stamp, dirty flag)
    entries: HashMap<u64, (u64, bool)>,
    /// stamp -> block, ascending = least recently used first
    order: BTreeMap<u64, u64>,
    /// Stamps of clean resident blocks (the eviction candidates).
    clean: BTreeSet<u64>,
    ranks: StampRanks,
    next_stamp: u64,
}

impl WlruPolicy {
    /// Creates a WLRU policy with scan fraction `w ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `w` is outside `[0, 1]`.
    pub fn new(capacity: usize, w: f64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(
            (0.0..=1.0).contains(&w),
            "WLRU weight must be in [0,1], got {w}"
        );
        WlruPolicy {
            capacity,
            w,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            clean: BTreeSet::new(),
            ranks: StampRanks::new(Self::stamp_window(capacity, 0)),
            next_stamp: 0,
        }
    }

    /// The scan fraction.
    pub fn weight(&self) -> f64 {
        self.w
    }

    /// Stamp window: live stamps fit with at least a same-sized headroom of
    /// fresh stamps before the next compaction, so compaction cost amortizes
    /// to O(1) per access.
    fn stamp_window(capacity: usize, len: usize) -> usize {
        (2 * capacity).max(2 * len).max(64)
    }

    /// Renumbers all live stamps densely from 0 in LRU order (order
    /// preserved, so behaviour is unchanged) and rebuilds the rank tree.
    fn compact(&mut self) {
        let window = Self::stamp_window(self.capacity, self.order.len());
        let mut order = BTreeMap::new();
        let mut clean = BTreeSet::new();
        let mut ranks = StampRanks::new(window);
        for (fresh, (_, &block)) in self.order.iter().enumerate() {
            let fresh = fresh as u64;
            let entry = self
                .entries
                .get_mut(&block)
                .expect("ordered blocks are resident");
            entry.0 = fresh;
            if !entry.1 {
                clean.insert(fresh);
            }
            order.insert(fresh, block);
            ranks.add(fresh);
        }
        self.next_stamp = order.len() as u64;
        self.order = order;
        self.clean = clean;
        self.ranks = ranks;
    }

    fn alloc_stamp(&mut self) -> u64 {
        if self.next_stamp >= self.ranks.window() {
            self.compact();
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        stamp
    }

    /// Inserts `block` as the most recently used entry with dirty flag
    /// `dirty` (the block must not be resident).
    fn insert_mru(&mut self, block: u64, dirty: bool) {
        let stamp = self.alloc_stamp();
        self.entries.insert(block, (stamp, dirty));
        self.order.insert(stamp, block);
        self.ranks.add(stamp);
        if !dirty {
            self.clean.insert(stamp);
        }
    }

    /// Drops a resident block from every index, returning its dirty flag.
    fn detach(&mut self, block: u64) -> Option<bool> {
        let (stamp, dirty) = self.entries.remove(&block)?;
        self.order.remove(&stamp);
        self.ranks.remove(stamp);
        if !dirty {
            self.clean.remove(&stamp);
        }
        Some(dirty)
    }

    /// The victim the reference WLRU scan would pick: the oldest clean block
    /// when its LRU rank is inside the first `⌈k·w⌉` positions, otherwise the
    /// LRU head.
    fn pick_victim(&self) -> Option<u64> {
        let scan_limit = ((self.capacity as f64) * self.w).ceil() as usize;
        if let Some(&oldest_clean) = self.clean.iter().next() {
            // Every resident stamp below the oldest clean one belongs to a
            // dirty block, so `count_below` is exactly the number of dirty
            // candidates the reference scan would skip first.
            if self.ranks.count_below(oldest_clean) < scan_limit {
                return self.order.get(&oldest_clean).copied();
            }
        }
        self.order.values().next().copied()
    }
}

impl ReplacementPolicy for WlruPolicy {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn contains(&self, block: u64) -> bool {
        self.entries.contains_key(&block)
    }

    fn access(&mut self, block: u64, meta: AccessMeta) -> AccessOutcome {
        if let Some(&(_, dirty)) = self.entries.get(&block) {
            let dirty = dirty || meta.is_write;
            self.detach(block);
            self.insert_mru(block, dirty);
            return AccessOutcome::Hit;
        }
        let evicted = if self.entries.len() >= self.capacity {
            let victim = self
                .pick_victim()
                .expect("cache is full, a victim must exist");
            let dirty = self.detach(victim).expect("the victim is resident");
            Some(Evicted {
                block: victim,
                dirty,
            })
        } else {
            None
        };
        self.insert_mru(block, meta.is_write);
        match evicted {
            Some(e) => AccessOutcome::InsertedWithEviction(e),
            None => AccessOutcome::Inserted,
        }
    }

    fn mark_clean(&mut self, block: u64) {
        if let Some((stamp, dirty)) = self.entries.get_mut(&block) {
            if *dirty {
                *dirty = false;
                self.clean.insert(*stamp);
            }
        }
    }

    fn is_dirty(&self, block: u64) -> bool {
        self.entries
            .get(&block)
            .map(|&(_, dirty)| dirty)
            .unwrap_or(false)
    }

    fn remove(&mut self, block: u64) -> Option<Evicted> {
        let dirty = self.detach(block)?;
        Some(Evicted { block, dirty })
    }

    fn clear(&mut self) -> Vec<Evicted> {
        let blocks: Vec<u64> = self.order.values().copied().collect();
        blocks
            .into_iter()
            .map(|block| {
                let dirty = self.detach(block).expect("ordered blocks are resident");
                Evicted { block, dirty }
            })
            .collect()
    }

    fn resize(&mut self, capacity: usize) -> Vec<Evicted> {
        assert!(capacity > 0, "cache capacity must be positive");
        self.capacity = capacity;
        // Like the plain LRU resize: surplus entries leave in strict LRU
        // order (no clean-first preference when the shrink itself evicts).
        let mut out = Vec::new();
        while self.entries.len() > self.capacity {
            let victim = *self
                .order
                .values()
                .next()
                .expect("non-empty: len exceeds a positive capacity");
            let dirty = self.detach(victim).expect("the LRU head is resident");
            out.push(Evicted {
                block: victim,
                dirty,
            });
        }
        out
    }

    fn resident_blocks(&self) -> Vec<u64> {
        self.order.values().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: AccessMeta = AccessMeta::read(1);
    const W: AccessMeta = AccessMeta::write(1);

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = LruPolicy::new(3);
        p.access(1, R);
        p.access(2, R);
        p.access(3, R);
        p.access(1, R); // refresh 1; 2 is now LRU
        let out = p.access(4, R);
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 2,
                dirty: false
            })
        );
        assert!(p.contains(1) && p.contains(3) && p.contains(4));
    }

    #[test]
    fn lru_tracks_dirtiness() {
        let mut p = LruPolicy::new(2);
        p.access(1, W);
        p.access(2, R);
        assert!(p.is_dirty(1));
        assert!(!p.is_dirty(2));
        let out = p.access(3, R);
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 1,
                dirty: true
            })
        );
    }

    #[test]
    fn lru_mark_clean_clears_dirty_bit() {
        let mut p = LruPolicy::new(2);
        p.access(1, W);
        p.mark_clean(1);
        assert!(!p.is_dirty(1));
        p.access(2, R);
        let out = p.access(3, R);
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 1,
                dirty: false
            })
        );
    }

    #[test]
    fn lru_hit_on_write_marks_dirty() {
        let mut p = LruPolicy::new(2);
        p.access(1, R);
        assert!(!p.is_dirty(1));
        assert!(p.access(1, W).is_hit());
        assert!(p.is_dirty(1));
    }

    #[test]
    fn lru_resize_evicts_surplus() {
        let mut p = LruPolicy::new(4);
        for b in 1..=4 {
            p.access(b, R);
        }
        let evicted = p.resize(2);
        assert_eq!(evicted.len(), 2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.capacity(), 2);
        // The survivors are the most recently used (3 and 4).
        assert!(p.contains(3) && p.contains(4));
    }

    #[test]
    fn lru_clear_returns_all_entries() {
        let mut p = LruPolicy::new(3);
        p.access(1, W);
        p.access(2, R);
        let drained = p.clear();
        assert_eq!(drained.len(), 2);
        assert!(p.is_empty());
        assert!(drained.iter().any(|e| e.block == 1 && e.dirty));
        assert!(drained.iter().any(|e| e.block == 2 && !e.dirty));
    }

    #[test]
    fn lru_remove_specific_block() {
        let mut p = LruPolicy::new(3);
        p.access(1, W);
        assert_eq!(
            p.remove(1),
            Some(Evicted {
                block: 1,
                dirty: true
            })
        );
        assert_eq!(p.remove(1), None);
        assert!(!p.contains(1));
    }

    #[test]
    fn lru_never_exceeds_capacity() {
        let mut p = LruPolicy::new(5);
        for b in 0..100 {
            p.access(b, R);
            assert!(p.len() <= 5);
        }
    }

    #[test]
    fn wlru_prefers_clean_victim() {
        let mut p = WlruPolicy::new(3, 1.0);
        p.access(1, W); // dirty, LRU position
        p.access(2, R); // clean
        p.access(3, W); // dirty
        let out = p.access(4, R);
        // Plain LRU would evict 1 (dirty); WLRU skips it and evicts clean 2.
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 2,
                dirty: false
            })
        );
        assert!(p.contains(1) && p.contains(3) && p.contains(4));
    }

    #[test]
    fn wlru_falls_back_to_lru_when_all_dirty() {
        let mut p = WlruPolicy::new(3, 0.5);
        p.access(1, W);
        p.access(2, W);
        p.access(3, W);
        let out = p.access(4, R);
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 1,
                dirty: true
            })
        );
    }

    #[test]
    fn wlru_scan_limit_is_respected() {
        // With w such that only 1 candidate is scanned, a clean block further
        // up the list is NOT considered.
        let mut p = WlruPolicy::new(4, 0.25); // scan limit = ceil(4*0.25) = 1
        p.access(1, W); // LRU, dirty — the only scanned candidate
        p.access(2, R); // clean but outside the scan window
        p.access(3, R);
        p.access(4, R);
        let out = p.access(5, R);
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 1,
                dirty: true
            })
        );
    }

    #[test]
    fn wlru_zero_weight_is_plain_lru() {
        let mut wlru = WlruPolicy::new(3, 0.0);
        let mut lru = LruPolicy::new(3);
        for &(b, m) in &[(1, W), (2, R), (3, W), (4, R), (2, R), (5, W)] {
            let a = wlru.access(b, m);
            let b2 = lru.access(b, m);
            assert_eq!(a, b2);
        }
    }

    #[test]
    fn wlru_behaves_like_set_for_membership() {
        let mut p = WlruPolicy::new(2, 0.5);
        assert_eq!(p.capacity(), 2);
        p.access(10, R);
        assert!(p.contains(10));
        assert!(!p.contains(11));
        assert_eq!(p.resident_blocks().len(), 1);
        assert_eq!(p.weight(), 0.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn wlru_rejects_bad_weight() {
        WlruPolicy::new(2, 1.5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn lru_rejects_zero_capacity() {
        LruPolicy::new(0);
    }

    #[test]
    fn wlru_stamp_compaction_preserves_order() {
        // Small capacity → small stamp window, so a long access run forces
        // many compactions; the recency order must survive each one.
        let mut p = WlruPolicy::new(4, 0.5);
        for i in 0..10_000u64 {
            p.access(i % 7, if i % 3 == 0 { W } else { R });
        }
        let mut reference = WlruPolicy::new(4, 0.5);
        // Replaying into a fresh policy must land in the same state: the
        // windows differ but the observable order and dirt must match.
        for i in 0..10_000u64 {
            reference.access(i % 7, if i % 3 == 0 { W } else { R });
        }
        assert_eq!(p.resident_blocks(), reference.resident_blocks());
    }

    /// The reference WLRU victim selection from the paper: scan the recency
    /// list from the LRU end, return the first clean block among the first
    /// `⌈k·w⌉` candidates, else the LRU head. Kept as the oracle for the
    /// equivalence property below; the shipping [`WlruPolicy`] answers the
    /// same question with an order-statistic index instead of a scan.
    #[derive(Debug, Clone)]
    struct ScanWlru {
        inner: LruPolicy,
        w: f64,
    }

    impl ScanWlru {
        fn new(capacity: usize, w: f64) -> Self {
            ScanWlru {
                inner: LruPolicy::new(capacity),
                w,
            }
        }

        fn pick_victim(&self) -> Option<u64> {
            let scan_limit = ((self.inner.capacity() as f64) * self.w).ceil() as usize;
            let mut fallback = None;
            for (i, block) in self.inner.list.iter_lru_first().enumerate() {
                if fallback.is_none() {
                    fallback = Some(block);
                }
                if i >= scan_limit {
                    break;
                }
                if !self.inner.is_dirty(block) {
                    return Some(block);
                }
            }
            fallback
        }

        fn access(&mut self, block: u64, meta: AccessMeta) -> AccessOutcome {
            if self.inner.contains(block) {
                return self.inner.access(block, meta);
            }
            let evicted = if self.inner.len() >= self.inner.capacity() {
                let victim = self.pick_victim().expect("full cache has a victim");
                self.inner.remove(victim)
            } else {
                None
            };
            let inserted = self.inner.access(block, meta);
            assert!(!inserted.is_replacement());
            match evicted {
                Some(e) => AccessOutcome::InsertedWithEviction(e),
                None => AccessOutcome::Inserted,
            }
        }
    }

    use proptest::prelude::*;

    proptest! {
        /// The indexed WLRU is operation-for-operation identical to the
        /// reference scan: same outcomes (same victims, same dirty flags)
        /// and the same resident set in the same recency order, across
        /// mixed accesses, writeback completions, removals, and resizes.
        /// Each raw tuple decodes to one operation: `kind` selects access
        /// (weighted heaviest), mark-clean, remove, or resize.
        #[test]
        fn prop_wlru_index_matches_reference_scan(
            cap in 1usize..12,
            wsel in 0usize..5,
            ops in proptest::collection::vec(
                (0u8..12, 0u64..48, any::<bool>(), 1usize..12),
                1..300,
            ),
        ) {
            let w = [0.0, 0.25, 0.5, 0.75, 1.0][wsel];
            let mut fast = WlruPolicy::new(cap, w);
            let mut oracle = ScanWlru::new(cap, w);
            for (kind, block, write, new_cap) in ops {
                match kind {
                    0..=7 => {
                        let meta = if write { W } else { R };
                        prop_assert_eq!(fast.access(block, meta), oracle.access(block, meta));
                    }
                    8 | 9 => {
                        fast.mark_clean(block);
                        oracle.inner.mark_clean(block);
                    }
                    10 => {
                        prop_assert_eq!(fast.remove(block), oracle.inner.remove(block));
                    }
                    _ => {
                        prop_assert_eq!(fast.resize(new_cap), oracle.inner.resize(new_cap));
                    }
                }
                prop_assert_eq!(fast.resident_blocks(), oracle.inner.resident_blocks());
                for b in fast.resident_blocks() {
                    prop_assert_eq!(fast.is_dirty(b), oracle.inner.is_dirty(b));
                }
            }
        }
    }
}
