//! LRU and Weighted-LRU policies, plus the recency list shared with ARC.

use std::collections::{BTreeMap, HashMap};

use crate::policy::{AccessMeta, AccessOutcome, Evicted, ReplacementPolicy};

/// An ordered recency list: O(log n) touch/insert/evict with strict LRU
/// ordering. Shared by [`LruPolicy`], [`WlruPolicy`] and the ARC lists.
#[derive(Debug, Clone, Default)]
pub(crate) struct LruList {
    /// block -> recency stamp
    stamps: HashMap<u64, u64>,
    /// recency stamp -> block (ascending = least recently used first)
    order: BTreeMap<u64, u64>,
    next_stamp: u64,
}

impl LruList {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.stamps.len()
    }

    pub(crate) fn contains(&self, block: u64) -> bool {
        self.stamps.contains_key(&block)
    }

    /// Inserts `block` as the most recently used entry (or refreshes it).
    pub(crate) fn touch(&mut self, block: u64) {
        if let Some(old) = self.stamps.remove(&block) {
            self.order.remove(&old);
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.stamps.insert(block, stamp);
        self.order.insert(stamp, block);
    }

    /// Removes and returns the least recently used block.
    pub(crate) fn pop_lru(&mut self) -> Option<u64> {
        let (&stamp, &block) = self.order.iter().next()?;
        self.order.remove(&stamp);
        self.stamps.remove(&block);
        Some(block)
    }

    /// Removes a specific block; returns true if it was present.
    pub(crate) fn remove(&mut self, block: u64) -> bool {
        if let Some(stamp) = self.stamps.remove(&block) {
            self.order.remove(&stamp);
            true
        } else {
            false
        }
    }

    /// Blocks in least-recently-used-first order.
    pub(crate) fn iter_lru_first(&self) -> impl Iterator<Item = u64> + '_ {
        self.order.values().copied()
    }

    pub(crate) fn clear(&mut self) -> Vec<u64> {
        let blocks: Vec<u64> = self.order.values().copied().collect();
        self.order.clear();
        self.stamps.clear();
        blocks
    }
}

/// Plain Least Recently Used replacement.
#[derive(Debug, Clone)]
pub struct LruPolicy {
    capacity: usize,
    list: LruList,
    dirty: HashMap<u64, bool>,
}

impl LruPolicy {
    /// Creates an LRU policy holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruPolicy {
            capacity,
            list: LruList::new(),
            dirty: HashMap::new(),
        }
    }

    fn evict_one(&mut self) -> Option<Evicted> {
        let victim = self.list.pop_lru()?;
        let dirty = self.dirty.remove(&victim).unwrap_or(false);
        Some(Evicted {
            block: victim,
            dirty,
        })
    }
}

impl ReplacementPolicy for LruPolicy {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.list.len()
    }

    fn contains(&self, block: u64) -> bool {
        self.list.contains(block)
    }

    fn access(&mut self, block: u64, meta: AccessMeta) -> AccessOutcome {
        if self.list.contains(block) {
            self.list.touch(block);
            if meta.is_write {
                self.dirty.insert(block, true);
            }
            return AccessOutcome::Hit;
        }
        let evicted = if self.list.len() >= self.capacity {
            self.evict_one()
        } else {
            None
        };
        self.list.touch(block);
        self.dirty.insert(block, meta.is_write);
        match evicted {
            Some(e) => AccessOutcome::InsertedWithEviction(e),
            None => AccessOutcome::Inserted,
        }
    }

    fn mark_clean(&mut self, block: u64) {
        if let Some(d) = self.dirty.get_mut(&block) {
            *d = false;
        }
    }

    fn is_dirty(&self, block: u64) -> bool {
        self.dirty.get(&block).copied().unwrap_or(false)
    }

    fn remove(&mut self, block: u64) -> Option<Evicted> {
        if self.list.remove(block) {
            let dirty = self.dirty.remove(&block).unwrap_or(false);
            Some(Evicted { block, dirty })
        } else {
            None
        }
    }

    fn clear(&mut self) -> Vec<Evicted> {
        let blocks = self.list.clear();
        blocks
            .into_iter()
            .map(|block| Evicted {
                block,
                dirty: self.dirty.remove(&block).unwrap_or(false),
            })
            .collect()
    }

    fn resize(&mut self, capacity: usize) -> Vec<Evicted> {
        assert!(capacity > 0, "cache capacity must be positive");
        self.capacity = capacity;
        let mut out = Vec::new();
        while self.list.len() > self.capacity {
            if let Some(e) = self.evict_one() {
                out.push(e);
            }
        }
        out
    }

    fn resident_blocks(&self) -> Vec<u64> {
        self.list.iter_lru_first().collect()
    }
}

/// Weighted LRU (the paper's WLRUw, §4.1): prefer evicting a *clean* block,
/// scanning at most `⌈k·w⌉` candidates from the LRU end; fall back to the
/// plain LRU victim if every scanned candidate is dirty.
///
/// With `w = 0` it degenerates to plain LRU; with `w = 1` the whole cache may
/// be scanned (the `O(k)` traversal the parameter exists to avoid).
#[derive(Debug, Clone)]
pub struct WlruPolicy {
    inner: LruPolicy,
    w: f64,
}

impl WlruPolicy {
    /// Creates a WLRU policy with scan fraction `w ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `w` is outside `[0, 1]`.
    pub fn new(capacity: usize, w: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&w),
            "WLRU weight must be in [0,1], got {w}"
        );
        WlruPolicy {
            inner: LruPolicy::new(capacity),
            w,
        }
    }

    /// The scan fraction.
    pub fn weight(&self) -> f64 {
        self.w
    }

    fn pick_victim(&self) -> Option<u64> {
        let scan_limit = ((self.inner.capacity as f64) * self.w).ceil() as usize;
        let mut fallback = None;
        for (i, block) in self.inner.list.iter_lru_first().enumerate() {
            if fallback.is_none() {
                fallback = Some(block);
            }
            if i >= scan_limit {
                break;
            }
            if !self.inner.is_dirty(block) {
                return Some(block);
            }
        }
        fallback
    }
}

impl ReplacementPolicy for WlruPolicy {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn contains(&self, block: u64) -> bool {
        self.inner.contains(block)
    }

    fn access(&mut self, block: u64, meta: AccessMeta) -> AccessOutcome {
        if self.inner.contains(block) {
            return self.inner.access(block, meta);
        }
        let evicted = if self.inner.len() >= self.inner.capacity() {
            let victim = self
                .pick_victim()
                .expect("cache is full, a victim must exist");
            self.inner.remove(victim)
        } else {
            None
        };
        // Insert through the inner policy (cannot evict again: room was made).
        let inserted = self.inner.access(block, meta);
        debug_assert!(
            !inserted.is_replacement(),
            "room was already made for the insert"
        );
        match evicted {
            Some(e) => AccessOutcome::InsertedWithEviction(e),
            None => AccessOutcome::Inserted,
        }
    }

    fn mark_clean(&mut self, block: u64) {
        self.inner.mark_clean(block);
    }

    fn is_dirty(&self, block: u64) -> bool {
        self.inner.is_dirty(block)
    }

    fn remove(&mut self, block: u64) -> Option<Evicted> {
        self.inner.remove(block)
    }

    fn clear(&mut self) -> Vec<Evicted> {
        self.inner.clear()
    }

    fn resize(&mut self, capacity: usize) -> Vec<Evicted> {
        self.inner.resize(capacity)
    }

    fn resident_blocks(&self) -> Vec<u64> {
        self.inner.resident_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: AccessMeta = AccessMeta::read(1);
    const W: AccessMeta = AccessMeta::write(1);

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = LruPolicy::new(3);
        p.access(1, R);
        p.access(2, R);
        p.access(3, R);
        p.access(1, R); // refresh 1; 2 is now LRU
        let out = p.access(4, R);
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 2,
                dirty: false
            })
        );
        assert!(p.contains(1) && p.contains(3) && p.contains(4));
    }

    #[test]
    fn lru_tracks_dirtiness() {
        let mut p = LruPolicy::new(2);
        p.access(1, W);
        p.access(2, R);
        assert!(p.is_dirty(1));
        assert!(!p.is_dirty(2));
        let out = p.access(3, R);
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 1,
                dirty: true
            })
        );
    }

    #[test]
    fn lru_mark_clean_clears_dirty_bit() {
        let mut p = LruPolicy::new(2);
        p.access(1, W);
        p.mark_clean(1);
        assert!(!p.is_dirty(1));
        p.access(2, R);
        let out = p.access(3, R);
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 1,
                dirty: false
            })
        );
    }

    #[test]
    fn lru_hit_on_write_marks_dirty() {
        let mut p = LruPolicy::new(2);
        p.access(1, R);
        assert!(!p.is_dirty(1));
        assert!(p.access(1, W).is_hit());
        assert!(p.is_dirty(1));
    }

    #[test]
    fn lru_resize_evicts_surplus() {
        let mut p = LruPolicy::new(4);
        for b in 1..=4 {
            p.access(b, R);
        }
        let evicted = p.resize(2);
        assert_eq!(evicted.len(), 2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.capacity(), 2);
        // The survivors are the most recently used (3 and 4).
        assert!(p.contains(3) && p.contains(4));
    }

    #[test]
    fn lru_clear_returns_all_entries() {
        let mut p = LruPolicy::new(3);
        p.access(1, W);
        p.access(2, R);
        let drained = p.clear();
        assert_eq!(drained.len(), 2);
        assert!(p.is_empty());
        assert!(drained.iter().any(|e| e.block == 1 && e.dirty));
        assert!(drained.iter().any(|e| e.block == 2 && !e.dirty));
    }

    #[test]
    fn lru_remove_specific_block() {
        let mut p = LruPolicy::new(3);
        p.access(1, W);
        assert_eq!(
            p.remove(1),
            Some(Evicted {
                block: 1,
                dirty: true
            })
        );
        assert_eq!(p.remove(1), None);
        assert!(!p.contains(1));
    }

    #[test]
    fn lru_never_exceeds_capacity() {
        let mut p = LruPolicy::new(5);
        for b in 0..100 {
            p.access(b, R);
            assert!(p.len() <= 5);
        }
    }

    #[test]
    fn wlru_prefers_clean_victim() {
        let mut p = WlruPolicy::new(3, 1.0);
        p.access(1, W); // dirty, LRU position
        p.access(2, R); // clean
        p.access(3, W); // dirty
        let out = p.access(4, R);
        // Plain LRU would evict 1 (dirty); WLRU skips it and evicts clean 2.
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 2,
                dirty: false
            })
        );
        assert!(p.contains(1) && p.contains(3) && p.contains(4));
    }

    #[test]
    fn wlru_falls_back_to_lru_when_all_dirty() {
        let mut p = WlruPolicy::new(3, 0.5);
        p.access(1, W);
        p.access(2, W);
        p.access(3, W);
        let out = p.access(4, R);
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 1,
                dirty: true
            })
        );
    }

    #[test]
    fn wlru_scan_limit_is_respected() {
        // With w such that only 1 candidate is scanned, a clean block further
        // up the list is NOT considered.
        let mut p = WlruPolicy::new(4, 0.25); // scan limit = ceil(4*0.25) = 1
        p.access(1, W); // LRU, dirty — the only scanned candidate
        p.access(2, R); // clean but outside the scan window
        p.access(3, R);
        p.access(4, R);
        let out = p.access(5, R);
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 1,
                dirty: true
            })
        );
    }

    #[test]
    fn wlru_zero_weight_is_plain_lru() {
        let mut wlru = WlruPolicy::new(3, 0.0);
        let mut lru = LruPolicy::new(3);
        for &(b, m) in &[(1, W), (2, R), (3, W), (4, R), (2, R), (5, W)] {
            let a = wlru.access(b, m);
            let b2 = lru.access(b, m);
            assert_eq!(a, b2);
        }
    }

    #[test]
    fn wlru_behaves_like_set_for_membership() {
        let mut p = WlruPolicy::new(2, 0.5);
        assert_eq!(p.capacity(), 2);
        p.access(10, R);
        assert!(p.contains(10));
        assert!(!p.contains(11));
        assert_eq!(p.resident_blocks().len(), 1);
        assert_eq!(p.weight(), 0.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn wlru_rejects_bad_weight() {
        WlruPolicy::new(2, 1.5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn lru_rejects_zero_capacity() {
        LruPolicy::new(0);
    }
}
