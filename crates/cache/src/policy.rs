//! The [`ReplacementPolicy`] trait and its shared vocabulary.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Per-access metadata a policy may use for its replacement decision.
///
/// `request_blocks` is the size of the *original* client request the block
/// belonged to — the `S_i` term of GDSF. `is_write` lets the policy keep a
/// dirty bit so that clean-preferring policies (WLRU) and the eviction
/// write-back accounting work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessMeta {
    /// True if the access modifies the block.
    pub is_write: bool,
    /// Size (in blocks) of the client request this access belongs to.
    pub request_blocks: u64,
}

impl AccessMeta {
    /// Metadata for a read access belonging to a request of `request_blocks`.
    pub const fn read(request_blocks: u64) -> Self {
        AccessMeta {
            is_write: false,
            request_blocks,
        }
    }

    /// Metadata for a write access belonging to a request of `request_blocks`.
    pub const fn write(request_blocks: u64) -> Self {
        AccessMeta {
            is_write: true,
            request_blocks,
        }
    }
}

/// An entry pushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evicted {
    /// The block that was evicted.
    pub block: u64,
    /// True if the cached copy had been modified and must be written back to
    /// the archive partition (costing the RAID-5 read-modify-write).
    pub dirty: bool,
}

/// Result of recording one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The block was already resident.
    Hit,
    /// The block was inserted; the cache still had room.
    Inserted,
    /// The block was inserted and `Evicted` was pushed out to make room.
    InsertedWithEviction(Evicted),
}

impl AccessOutcome {
    /// True for [`AccessOutcome::Hit`].
    pub const fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// True if the access caused a replacement.
    pub const fn is_replacement(self) -> bool {
        matches!(self, AccessOutcome::InsertedWithEviction(_))
    }

    /// The eviction carried by this outcome, if any.
    pub const fn evicted(self) -> Option<Evicted> {
        match self {
            AccessOutcome::InsertedWithEviction(e) => Some(e),
            _ => None,
        }
    }
}

/// A block-granular cache replacement policy.
///
/// Policies track *which* blocks should be resident in the cache partition
/// and which block to push out when it is full; they do not perform I/O.
/// Capacities are expressed in blocks.
pub trait ReplacementPolicy: fmt::Debug {
    /// Maximum number of resident blocks.
    fn capacity(&self) -> usize;

    /// Number of currently resident blocks.
    fn len(&self) -> usize;

    /// True if no blocks are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `block` is resident.
    fn contains(&self, block: u64) -> bool;

    /// Records an access to `block`, inserting it (and possibly evicting a
    /// victim) if it is not resident.
    fn access(&mut self, block: u64, meta: AccessMeta) -> AccessOutcome;

    /// Marks a resident block clean (after its content has been written back
    /// to the archive partition). Unknown blocks are ignored.
    fn mark_clean(&mut self, block: u64);

    /// True if `block` is resident and dirty.
    fn is_dirty(&self, block: u64) -> bool;

    /// Removes a specific block, returning its eviction record if it was
    /// resident.
    fn remove(&mut self, block: u64) -> Option<Evicted>;

    /// Removes every resident block, returning their eviction records (the
    /// paper's "invalidate PC on expansion" step — dirty entries must be
    /// written back by the caller).
    fn clear(&mut self) -> Vec<Evicted>;

    /// Changes the capacity. If the new capacity is smaller, surplus victims
    /// are evicted and returned.
    fn resize(&mut self, capacity: usize) -> Vec<Evicted>;

    /// Blocks currently resident, in no particular order.
    fn resident_blocks(&self) -> Vec<u64>;
}

/// Selector for the five policies of the paper, used by experiment configs
/// and the command-line harness.
///
/// Serializes as its display name (`"ARC"`, `"WLRU0.5"`, ...) so scenario
/// files can name policies the way the paper's tables do; parsing accepts
/// the same spellings via [`FromStr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// Least Recently Used.
    Lru,
    /// Least Frequently Used with Dynamic Aging.
    Lfuda,
    /// Greedy-Dual-Size with Frequency.
    Gdsf,
    /// Adaptive Replacement Cache.
    Arc,
    /// Weighted LRU with scan-fraction `w` (the paper uses 0.5).
    Wlru(f64),
}

impl PolicyKind {
    /// All policies evaluated by the paper's Tables 2 and 3, in table order.
    pub fn paper_set() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Lru,
            PolicyKind::Lfuda,
            PolicyKind::Gdsf,
            PolicyKind::Arc,
            PolicyKind::Wlru(0.5),
        ]
    }

    /// Instantiates the policy with the given capacity (in blocks).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn build(self, capacity: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(crate::lru::LruPolicy::new(capacity)),
            PolicyKind::Lfuda => Box::new(crate::keyed::LfudaPolicy::new(capacity)),
            PolicyKind::Gdsf => Box::new(crate::keyed::GdsfPolicy::new(capacity)),
            PolicyKind::Arc => Box::new(crate::arc::ArcPolicy::new(capacity)),
            PolicyKind::Wlru(w) => Box::new(crate::lru::WlruPolicy::new(capacity, w)),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::Lru => write!(f, "LRU"),
            PolicyKind::Lfuda => write!(f, "LFUDA"),
            PolicyKind::Gdsf => write!(f, "GDSF"),
            PolicyKind::Arc => write!(f, "ARC"),
            PolicyKind::Wlru(w) => write!(f, "WLRU{w}"),
        }
    }
}

impl FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "lru" => Ok(PolicyKind::Lru),
            "lfuda" => Ok(PolicyKind::Lfuda),
            "gdsf" => Ok(PolicyKind::Gdsf),
            "arc" => Ok(PolicyKind::Arc),
            _ => {
                if let Some(w) = lower.strip_prefix("wlru") {
                    let w = if w.is_empty() {
                        0.5
                    } else {
                        w.parse::<f64>()
                            .map_err(|e| format!("invalid WLRU weight: {e}"))?
                    };
                    if !(0.0..=1.0).contains(&w) {
                        return Err(format!("WLRU weight must be in [0,1], got {w}"));
                    }
                    Ok(PolicyKind::Wlru(w))
                } else {
                    Err(format!(
                        "unknown policy '{s}' (expected lru, lfuda, gdsf, arc or wlru<w>)"
                    ))
                }
            }
        }
    }
}

impl Serialize for PolicyKind {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for PolicyKind {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("policy name", value))?;
        s.parse().map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(AccessOutcome::Hit.is_hit());
        assert!(!AccessOutcome::Hit.is_replacement());
        assert_eq!(AccessOutcome::Hit.evicted(), None);
        let e = Evicted {
            block: 7,
            dirty: true,
        };
        let o = AccessOutcome::InsertedWithEviction(e);
        assert!(o.is_replacement());
        assert_eq!(o.evicted(), Some(e));
        assert!(!AccessOutcome::Inserted.is_hit());
    }

    #[test]
    fn policy_kind_parsing() {
        assert_eq!("lru".parse::<PolicyKind>().unwrap(), PolicyKind::Lru);
        assert_eq!("ARC".parse::<PolicyKind>().unwrap(), PolicyKind::Arc);
        assert_eq!(
            "wlru0.5".parse::<PolicyKind>().unwrap(),
            PolicyKind::Wlru(0.5)
        );
        assert_eq!("wlru".parse::<PolicyKind>().unwrap(), PolicyKind::Wlru(0.5));
        assert!("wlru1.5".parse::<PolicyKind>().is_err());
        assert!("clock".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn policy_kind_display_round_trip() {
        for kind in PolicyKind::paper_set() {
            let shown = kind.to_string();
            let parsed: PolicyKind = shown.parse().unwrap();
            assert_eq!(parsed, kind, "{shown} should parse back to {kind:?}");
        }
    }

    #[test]
    fn policy_serde_uses_display_names() {
        for kind in PolicyKind::paper_set() {
            let v = Serialize::serialize(&kind);
            assert_eq!(v, serde::Value::Str(kind.to_string()));
            let back: PolicyKind = Deserialize::deserialize(&v).unwrap();
            assert_eq!(back, kind);
        }
        assert!(PolicyKind::deserialize(&serde::Value::Bool(true)).is_err());
    }

    #[test]
    fn paper_set_has_five_policies() {
        assert_eq!(PolicyKind::paper_set().len(), 5);
    }

    #[test]
    fn build_produces_working_policies() {
        for kind in PolicyKind::paper_set() {
            let mut p = kind.build(4);
            assert_eq!(p.capacity(), 4);
            assert!(p.is_empty());
            p.access(1, AccessMeta::read(1));
            assert!(p.contains(1), "{kind} should contain the inserted block");
        }
    }

    #[test]
    fn access_meta_constructors() {
        assert!(AccessMeta::write(4).is_write);
        assert!(!AccessMeta::read(4).is_write);
        assert_eq!(AccessMeta::read(4).request_blocks, 4);
    }
}
