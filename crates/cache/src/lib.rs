//! # craid-cache
//!
//! Replacement policies for CRAID's cache partition.
//!
//! The paper's I/O monitor (§4.1) supports five "simple, controller-friendly"
//! policies and selects the victim block whenever the cache partition (PC) is
//! full:
//!
//! * [`LruPolicy`] — Least Recently Used.
//! * [`LfudaPolicy`] — Least Frequently Used with Dynamic Aging, key
//!   `K_i = C_i·F_i + L`.
//! * [`GdsfPolicy`] — Greedy-Dual-Size with Frequency, key
//!   `K_i = C_i·F_i / S_i + L` (the request size term is what makes it lose
//!   badly in the paper's Table 2/3).
//! * [`ArcPolicy`] — Adaptive Replacement Cache, self-tuning between recency
//!   and frequency using ghost lists.
//! * [`WlruPolicy`] — Weighted LRU: scan at most `⌈k·w⌉` entries from the LRU
//!   end for a *clean* victim before falling back to plain LRU. Preferred by
//!   the paper (with `w = 0.5`) because clean evictions avoid the 4-I/O
//!   parity write-back.
//!
//! All policies implement [`ReplacementPolicy`] and are exercised identically
//! by the Table 2 / Table 3 experiments.
//!
//! # Example
//!
//! ```
//! use craid_cache::{AccessMeta, AccessOutcome, PolicyKind, ReplacementPolicy};
//!
//! let mut policy = PolicyKind::Arc.build(2);
//! let meta = AccessMeta::read(1);
//! assert!(matches!(policy.access(10, meta), AccessOutcome::Inserted));
//! assert!(matches!(policy.access(10, meta), AccessOutcome::Hit));
//! assert!(matches!(policy.access(11, meta), AccessOutcome::Inserted));
//! // The cache is full now; a third distinct block evicts someone.
//! assert!(matches!(policy.access(12, meta), AccessOutcome::InsertedWithEviction(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arc;
pub mod keyed;
pub mod lru;
pub mod policy;

pub use arc::ArcPolicy;
pub use keyed::{GdsfPolicy, LfudaPolicy};
pub use lru::{LruPolicy, WlruPolicy};
pub use policy::{AccessMeta, AccessOutcome, Evicted, PolicyKind, ReplacementPolicy};
