//! Adaptive Replacement Cache (ARC).
//!
//! The self-tuning policy of Megiddo & Modha that the paper reports as the
//! best pure predictor in its Tables 2 and 3 (CRAID nevertheless ships with
//! WLRU because clean-preferring evictions save parity write-backs). ARC
//! balances two resident lists — `T1` for blocks seen once recently, `T2` for
//! blocks seen at least twice — and adapts the split `p` between them by
//! watching hits in two ghost lists (`B1`, `B2`) of recently evicted blocks.

use std::collections::HashMap;

use crate::lru::LruList;
use crate::policy::{AccessMeta, AccessOutcome, Evicted, ReplacementPolicy};

/// The ARC replacement policy.
#[derive(Debug, Clone)]
pub struct ArcPolicy {
    capacity: usize,
    /// Target size for T1 (the adaptation parameter `p`).
    p: usize,
    t1: LruList,
    t2: LruList,
    b1: LruList,
    b2: LruList,
    dirty: HashMap<u64, bool>,
}

impl ArcPolicy {
    /// Creates an ARC policy holding at most `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ArcPolicy {
            capacity,
            p: 0,
            t1: LruList::new(),
            t2: LruList::new(),
            b1: LruList::new(),
            b2: LruList::new(),
            dirty: HashMap::new(),
        }
    }

    /// The current adaptation target for the recency list `T1`.
    pub fn recency_target(&self) -> usize {
        self.p
    }

    /// Number of entries in the ghost lists (recently evicted history).
    pub fn ghost_len(&self) -> usize {
        self.b1.len() + self.b2.len()
    }

    /// Evicts the appropriate resident block into its ghost list and returns
    /// it. `from_b2` is true when the current miss hit ghost list B2.
    fn replace(&mut self, from_b2: bool) -> Option<Evicted> {
        let take_from_t1 =
            self.t1.len() >= 1 && ((from_b2 && self.t1.len() == self.p) || self.t1.len() > self.p);
        let (block, ghost) = if take_from_t1 {
            (self.t1.pop_lru()?, &mut self.b1)
        } else {
            match self.t2.pop_lru() {
                Some(b) => (b, &mut self.b2),
                None => (self.t1.pop_lru()?, &mut self.b1),
            }
        };
        ghost.touch(block);
        let dirty = self.dirty.remove(&block).unwrap_or(false);
        Some(Evicted { block, dirty })
    }

    fn record_dirty(&mut self, block: u64, is_write: bool) {
        let entry = self.dirty.entry(block).or_insert(false);
        if is_write {
            *entry = true;
        }
    }
}

impl ReplacementPolicy for ArcPolicy {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn contains(&self, block: u64) -> bool {
        self.t1.contains(block) || self.t2.contains(block)
    }

    fn access(&mut self, block: u64, meta: AccessMeta) -> AccessOutcome {
        // Case I: hit in T1 or T2 → promote to MRU of T2.
        if self.t1.contains(block) {
            self.t1.remove(block);
            self.t2.touch(block);
            self.record_dirty(block, meta.is_write);
            return AccessOutcome::Hit;
        }
        if self.t2.contains(block) {
            self.t2.touch(block);
            self.record_dirty(block, meta.is_write);
            return AccessOutcome::Hit;
        }

        // Case II: ghost hit in B1 → grow the recency target.
        if self.b1.contains(block) {
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(self.capacity);
            let evicted = self.replace(false);
            self.b1.remove(block);
            self.t2.touch(block);
            self.dirty.insert(block, meta.is_write);
            return match evicted {
                Some(e) => AccessOutcome::InsertedWithEviction(e),
                None => AccessOutcome::Inserted,
            };
        }

        // Case III: ghost hit in B2 → grow the frequency side.
        if self.b2.contains(block) {
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            let evicted = self.replace(true);
            self.b2.remove(block);
            self.t2.touch(block);
            self.dirty.insert(block, meta.is_write);
            return match evicted {
                Some(e) => AccessOutcome::InsertedWithEviction(e),
                None => AccessOutcome::Inserted,
            };
        }

        // Case IV: a completely new block.
        let mut evicted = None;
        let l1 = self.t1.len() + self.b1.len();
        if l1 == self.capacity {
            if self.t1.len() < self.capacity {
                self.b1.pop_lru();
                evicted = self.replace(false);
            } else {
                // B1 is empty and T1 is full: evict the LRU of T1 outright.
                if let Some(victim) = self.t1.pop_lru() {
                    let dirty = self.dirty.remove(&victim).unwrap_or(false);
                    evicted = Some(Evicted {
                        block: victim,
                        dirty,
                    });
                }
            }
        } else {
            let total = l1 + self.t2.len() + self.b2.len();
            if total >= self.capacity {
                if total == 2 * self.capacity {
                    self.b2.pop_lru();
                }
                if self.len() >= self.capacity {
                    evicted = self.replace(false);
                }
            }
        }
        self.t1.touch(block);
        self.dirty.insert(block, meta.is_write);
        match evicted {
            Some(e) => AccessOutcome::InsertedWithEviction(e),
            None => AccessOutcome::Inserted,
        }
    }

    fn mark_clean(&mut self, block: u64) {
        if let Some(d) = self.dirty.get_mut(&block) {
            *d = false;
        }
    }

    fn is_dirty(&self, block: u64) -> bool {
        self.contains(block) && self.dirty.get(&block).copied().unwrap_or(false)
    }

    fn remove(&mut self, block: u64) -> Option<Evicted> {
        if self.t1.remove(block) || self.t2.remove(block) {
            let dirty = self.dirty.remove(&block).unwrap_or(false);
            Some(Evicted { block, dirty })
        } else {
            self.b1.remove(block);
            self.b2.remove(block);
            None
        }
    }

    fn clear(&mut self) -> Vec<Evicted> {
        let mut out = Vec::new();
        for block in self.t1.clear().into_iter().chain(self.t2.clear()) {
            out.push(Evicted {
                block,
                dirty: self.dirty.remove(&block).unwrap_or(false),
            });
        }
        self.b1.clear();
        self.b2.clear();
        self.dirty.clear();
        self.p = 0;
        out
    }

    fn resize(&mut self, capacity: usize) -> Vec<Evicted> {
        assert!(capacity > 0, "cache capacity must be positive");
        self.capacity = capacity;
        self.p = self.p.min(capacity);
        let mut out = Vec::new();
        while self.len() > capacity {
            if let Some(e) = self.replace(false) {
                out.push(e);
            } else {
                break;
            }
        }
        out
    }

    fn resident_blocks(&self) -> Vec<u64> {
        self.t1
            .iter_lru_first()
            .chain(self.t2.iter_lru_first())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const R: AccessMeta = AccessMeta::read(1);
    const W: AccessMeta = AccessMeta::write(1);

    #[test]
    fn hit_promotes_to_frequency_list() {
        let mut p = ArcPolicy::new(4);
        assert!(!p.access(1, R).is_hit());
        assert!(p.access(1, R).is_hit());
        assert!(p.contains(1));
        // Still a hit on the third access (now in T2).
        assert!(p.access(1, R).is_hit());
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut p = ArcPolicy::new(8);
        for b in 0..1_000u64 {
            p.access(b % 50, R);
            assert!(p.len() <= 8, "resident count {} exceeds capacity", p.len());
        }
    }

    #[test]
    fn ghost_hit_reinserts_block() {
        let mut p = ArcPolicy::new(2);
        p.access(1, R);
        p.access(2, R);
        p.access(1, R); // promote 1 to the frequency list
        let out = p.access(3, R); // evicts the T1 LRU (block 2) into ghost list B1
        assert_eq!(
            out.evicted(),
            Some(Evicted {
                block: 2,
                dirty: false
            })
        );
        assert_eq!(p.len(), 2);
        assert!(p.ghost_len() >= 1);
        // Access the evicted block again: a ghost hit brings it back resident.
        let out = p.access(2, R);
        assert!(!out.is_hit());
        assert!(p.contains(2));
    }

    #[test]
    fn scan_resistance_keeps_frequent_blocks() {
        // A frequently reused block should survive a long one-shot scan —
        // the property that distinguishes ARC from plain LRU.
        let mut p = ArcPolicy::new(8);
        for _ in 0..20 {
            p.access(1, R);
            p.access(2, R);
        }
        for b in 100..140u64 {
            p.access(b, R);
            // Keep touching the hot pair occasionally.
            if b % 4 == 0 {
                p.access(1, R);
                p.access(2, R);
            }
        }
        assert!(
            p.contains(1) && p.contains(2),
            "hot blocks evicted by a scan"
        );
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut p = ArcPolicy::new(2);
        p.access(1, W);
        p.access(2, R);
        let out = p.access(3, R);
        let e = out.evicted().expect("cache was full");
        if e.block == 1 {
            assert!(e.dirty);
        } else {
            assert!(!e.dirty);
        }
    }

    #[test]
    fn mark_clean_and_is_dirty() {
        let mut p = ArcPolicy::new(4);
        p.access(9, W);
        assert!(p.is_dirty(9));
        p.mark_clean(9);
        assert!(!p.is_dirty(9));
        assert!(!p.is_dirty(12345), "non-resident blocks are never dirty");
    }

    #[test]
    fn clear_returns_residents_and_resets_adaptation() {
        let mut p = ArcPolicy::new(3);
        p.access(1, W);
        p.access(2, R);
        p.access(2, R);
        let drained = p.clear();
        assert_eq!(drained.len(), 2);
        assert_eq!(p.len(), 0);
        assert_eq!(p.ghost_len(), 0);
        assert_eq!(p.recency_target(), 0);
    }

    #[test]
    fn resize_shrinks_residency() {
        let mut p = ArcPolicy::new(6);
        for b in 0..6u64 {
            p.access(b, R);
        }
        let evicted = p.resize(2);
        assert_eq!(p.capacity(), 2);
        assert!(p.len() <= 2);
        assert_eq!(evicted.len(), 4);
    }

    #[test]
    fn remove_specific_block() {
        let mut p = ArcPolicy::new(4);
        p.access(5, W);
        assert_eq!(
            p.remove(5),
            Some(Evicted {
                block: 5,
                dirty: true
            })
        );
        assert_eq!(p.remove(5), None);
    }

    #[test]
    fn adaptation_target_moves_with_workload() {
        let mut p = ArcPolicy::new(4);
        // Promote two blocks to the frequency list, then let two one-timers
        // spill into the ghost list and re-reference one of them: the B1
        // ghost hit must grow the recency target.
        p.access(1, R);
        p.access(2, R);
        p.access(1, R);
        p.access(2, R);
        p.access(3, R);
        p.access(4, R);
        assert_eq!(p.recency_target(), 0);
        p.access(5, R); // evicts the T1 LRU (3) into B1
        assert!(p.ghost_len() >= 1);
        p.access(3, R); // ghost hit in B1
        assert!(
            p.recency_target() > 0,
            "B1 ghost hit must raise the recency target"
        );
    }

    proptest! {
        /// Under any access pattern ARC never exceeds its capacity, never
        /// loses track of residency, and evicts at most one block per access.
        #[test]
        fn prop_arc_invariants(blocks in proptest::collection::vec(0u64..64, 1..400), cap in 1usize..16) {
            let mut p = ArcPolicy::new(cap);
            let mut resident = std::collections::HashSet::new();
            for &b in &blocks {
                let out = p.access(b, R);
                match out {
                    AccessOutcome::Hit => {
                        prop_assert!(resident.contains(&b));
                    }
                    AccessOutcome::Inserted => {
                        resident.insert(b);
                    }
                    AccessOutcome::InsertedWithEviction(e) => {
                        prop_assert!(resident.remove(&e.block), "evicted a non-resident block");
                        resident.insert(b);
                    }
                }
                prop_assert!(p.len() <= cap);
                prop_assert!(p.contains(b));
                prop_assert_eq!(p.len(), resident.len());
            }
        }
    }
}
