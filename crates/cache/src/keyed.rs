//! Key-ordered policies: LFUDA and GDSF.
//!
//! Both policies assign every resident block a priority key and evict the
//! block with the smallest key; both add the running *age factor* `L`
//! (initialised to 0 and bumped to the victim's key on every eviction) so
//! that long-resident but once-popular blocks eventually age out:
//!
//! * LFUDA: `K_i = C_i · F_i + L`
//! * GDSF:  `K_i = C_i · F_i / S_i + L`
//!
//! with `C_i` the retrieval cost (1 for every block in a RAID array — all
//! blocks cost the same to fetch), `F_i` the access count while resident and
//! `S_i` the size of the original client request the block arrived with.
//! The `S_i` term is what makes GDSF perform poorly in the paper's Table 2:
//! penalising blocks of large requests has no useful meaning at the block
//! level of a RAID controller.

use std::collections::{BTreeMap, BTreeSet};

use crate::policy::{AccessMeta, AccessOutcome, Evicted, ReplacementPolicy};

/// Key formula selector for the shared implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyFormula {
    Lfuda,
    Gdsf,
}

/// A totally ordered f64 wrapper so keys can live in a `BTreeSet`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    frequency: u64,
    /// Size (blocks) of the request that brought the block in.
    size: u64,
    key: f64,
    dirty: bool,
}

/// Shared implementation of the two key-ordered policies.
#[derive(Debug, Clone)]
struct KeyedPolicy {
    formula: KeyFormula,
    capacity: usize,
    /// Resident entries in block order — a BTree map so `clear` and
    /// `resident_blocks` walk blocks deterministically.
    entries: BTreeMap<u64, Entry>,
    /// (key, block) ordered ascending; the smallest key is the next victim.
    order: BTreeSet<(OrdF64, u64)>,
    /// Running age factor `L`.
    age: f64,
    /// Retrieval cost `C_i`; constant 1.0 for block storage.
    cost: f64,
}

impl KeyedPolicy {
    fn new(formula: KeyFormula, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        KeyedPolicy {
            formula,
            capacity,
            entries: BTreeMap::new(),
            order: BTreeSet::new(),
            age: 0.0,
            cost: 1.0,
        }
    }

    fn key_for(&self, frequency: u64, size: u64) -> f64 {
        let freq_term = self.cost * frequency as f64;
        match self.formula {
            KeyFormula::Lfuda => freq_term + self.age,
            KeyFormula::Gdsf => freq_term / size.max(1) as f64 + self.age,
        }
    }

    fn reindex(&mut self, block: u64, old_key: f64, new_key: f64) {
        self.order.remove(&(OrdF64(old_key), block));
        self.order.insert((OrdF64(new_key), block));
    }

    fn evict_smallest(&mut self) -> Option<Evicted> {
        let &(OrdF64(key), block) = self.order.iter().next()?;
        self.order.remove(&(OrdF64(key), block));
        let entry = self
            .entries
            .remove(&block)
            .expect("order and entries are in sync");
        // Dynamic aging: L becomes the evicted key.
        self.age = key;
        Some(Evicted {
            block,
            dirty: entry.dirty,
        })
    }

    fn access(&mut self, block: u64, meta: AccessMeta) -> AccessOutcome {
        if let Some(entry) = self.entries.get_mut(&block) {
            entry.frequency += 1;
            if meta.is_write {
                entry.dirty = true;
            }
            let old_key = entry.key;
            let (frequency, size) = (entry.frequency, entry.size);
            let new_key = self.key_for(frequency, size);
            let entry = self.entries.get_mut(&block).expect("just checked");
            entry.key = new_key;
            self.reindex(block, old_key, new_key);
            return AccessOutcome::Hit;
        }
        let evicted = if self.entries.len() >= self.capacity {
            self.evict_smallest()
        } else {
            None
        };
        let key = self.key_for(1, meta.request_blocks);
        self.entries.insert(
            block,
            Entry {
                frequency: 1,
                size: meta.request_blocks,
                key,
                dirty: meta.is_write,
            },
        );
        self.order.insert((OrdF64(key), block));
        match evicted {
            Some(e) => AccessOutcome::InsertedWithEviction(e),
            None => AccessOutcome::Inserted,
        }
    }

    fn remove(&mut self, block: u64) -> Option<Evicted> {
        let entry = self.entries.remove(&block)?;
        self.order.remove(&(OrdF64(entry.key), block));
        Some(Evicted {
            block,
            dirty: entry.dirty,
        })
    }

    fn clear(&mut self) -> Vec<Evicted> {
        let out: Vec<Evicted> = self
            .entries
            .iter()
            .map(|(&block, e)| Evicted {
                block,
                dirty: e.dirty,
            })
            .collect();
        self.entries.clear();
        self.order.clear();
        self.age = 0.0;
        out
    }

    fn resize(&mut self, capacity: usize) -> Vec<Evicted> {
        assert!(capacity > 0, "cache capacity must be positive");
        self.capacity = capacity;
        let mut out = Vec::new();
        while self.entries.len() > self.capacity {
            if let Some(e) = self.evict_smallest() {
                out.push(e);
            }
        }
        out
    }
}

macro_rules! keyed_policy_type {
    ($(#[$doc:meta])* $name:ident, $formula:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: KeyedPolicy,
        }

        impl $name {
            /// Creates the policy holding at most `capacity` blocks.
            ///
            /// # Panics
            ///
            /// Panics if `capacity` is zero.
            pub fn new(capacity: usize) -> Self {
                $name {
                    inner: KeyedPolicy::new($formula, capacity),
                }
            }

            /// Current value of the dynamic-aging factor `L`.
            pub fn age_factor(&self) -> f64 {
                self.inner.age
            }
        }

        impl ReplacementPolicy for $name {
            fn capacity(&self) -> usize {
                self.inner.capacity
            }

            fn len(&self) -> usize {
                self.inner.entries.len()
            }

            fn contains(&self, block: u64) -> bool {
                self.inner.entries.contains_key(&block)
            }

            fn access(&mut self, block: u64, meta: AccessMeta) -> AccessOutcome {
                self.inner.access(block, meta)
            }

            fn mark_clean(&mut self, block: u64) {
                if let Some(e) = self.inner.entries.get_mut(&block) {
                    e.dirty = false;
                }
            }

            fn is_dirty(&self, block: u64) -> bool {
                self.inner.entries.get(&block).map(|e| e.dirty).unwrap_or(false)
            }

            fn remove(&mut self, block: u64) -> Option<Evicted> {
                self.inner.remove(block)
            }

            fn clear(&mut self) -> Vec<Evicted> {
                self.inner.clear()
            }

            fn resize(&mut self, capacity: usize) -> Vec<Evicted> {
                self.inner.resize(capacity)
            }

            fn resident_blocks(&self) -> Vec<u64> {
                self.inner.entries.keys().copied().collect()
            }
        }
    };
}

keyed_policy_type!(
    /// Least Frequently Used with Dynamic Aging: evicts the block with the
    /// smallest `C_i·F_i + L`.
    LfudaPolicy,
    KeyFormula::Lfuda
);

keyed_policy_type!(
    /// Greedy-Dual-Size with Frequency: evicts the block with the smallest
    /// `C_i·F_i / S_i + L`, where `S_i` is the size of the request the block
    /// arrived with.
    GdsfPolicy,
    KeyFormula::Gdsf
);

#[cfg(test)]
mod tests {
    use super::*;

    const R: AccessMeta = AccessMeta::read(1);
    const W: AccessMeta = AccessMeta::write(1);

    #[test]
    fn lfuda_keeps_frequent_blocks() {
        let mut p = LfudaPolicy::new(3);
        p.access(1, R);
        p.access(1, R);
        p.access(1, R);
        p.access(2, R);
        p.access(3, R);
        // Block 2 and 3 have frequency 1; inserting 4 evicts one of them, not 1.
        let e = p.access(4, R).evicted().unwrap();
        assert_ne!(e.block, 1);
        assert!(p.contains(1));
    }

    #[test]
    fn lfuda_dynamic_aging_lets_new_blocks_displace_stale_popular_ones() {
        let mut p = LfudaPolicy::new(2);
        // Block 1 becomes very popular, then goes cold.
        for _ in 0..50 {
            p.access(1, R);
        }
        p.access(2, R);
        assert!(p.age_factor() == 0.0);
        // A stream of new blocks keeps evicting; each eviction raises L, so
        // eventually a newcomer's key (1 + L) exceeds block 1's stale key (50).
        let mut evicted_one = false;
        for b in 3..200 {
            if let Some(e) = p.access(b, R).evicted() {
                if e.block == 1 {
                    evicted_one = true;
                    break;
                }
            }
        }
        assert!(
            evicted_one,
            "dynamic aging must eventually evict the stale popular block"
        );
        assert!(p.age_factor() > 0.0);
    }

    #[test]
    fn gdsf_penalises_blocks_of_large_requests() {
        let mut p = GdsfPolicy::new(2);
        p.access(1, AccessMeta::read(64)); // key = 1/64
        p.access(2, AccessMeta::read(1)); // key = 1
        let e = p.access(3, AccessMeta::read(1)).evicted().unwrap();
        assert_eq!(e.block, 1, "the large-request block has the smallest key");
    }

    #[test]
    fn gdsf_and_lfuda_differ_only_by_size_term() {
        // With all request sizes equal to 1 the two policies make identical
        // decisions on the same access stream.
        let mut lfuda = LfudaPolicy::new(3);
        let mut gdsf = GdsfPolicy::new(3);
        let stream = [1u64, 2, 3, 1, 4, 2, 5, 1, 6, 7, 2, 8];
        for &b in &stream {
            let a = lfuda.access(b, R);
            let c = gdsf.access(b, R);
            assert_eq!(a.is_hit(), c.is_hit());
        }
        let mut l: Vec<u64> = lfuda.resident_blocks();
        let mut g: Vec<u64> = gdsf.resident_blocks();
        l.sort_unstable();
        g.sort_unstable();
        assert_eq!(l, g);
    }

    #[test]
    fn dirty_tracking_round_trip() {
        let mut p = LfudaPolicy::new(2);
        p.access(1, W);
        assert!(p.is_dirty(1));
        p.mark_clean(1);
        assert!(!p.is_dirty(1));
        p.access(1, W);
        assert!(p.is_dirty(1));
        assert_eq!(
            p.remove(1),
            Some(Evicted {
                block: 1,
                dirty: true
            })
        );
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut p = GdsfPolicy::new(4);
        for b in 0..200u64 {
            p.access(b, AccessMeta::read(1 + b % 8));
            assert!(p.len() <= 4);
        }
    }

    #[test]
    fn clear_resets_age() {
        let mut p = LfudaPolicy::new(1);
        p.access(1, R);
        p.access(2, R); // eviction bumps L
        assert!(p.age_factor() > 0.0);
        let drained = p.clear();
        assert_eq!(drained.len(), 1);
        assert_eq!(p.age_factor(), 0.0);
        assert!(p.is_empty());
    }

    #[test]
    fn resize_evicts_lowest_keys_first() {
        let mut p = LfudaPolicy::new(4);
        p.access(1, R);
        p.access(1, R); // freq 2
        p.access(2, R);
        p.access(3, R);
        p.access(4, R);
        let evicted = p.resize(1);
        assert_eq!(evicted.len(), 3);
        assert!(p.contains(1), "the most frequent block survives the shrink");
    }
}
