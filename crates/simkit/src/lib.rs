//! # craid-simkit
//!
//! A small, deterministic discrete-event simulation kernel used by the CRAID
//! storage simulator (a reproduction of the FAST '14 paper *"CRAID: Online
//! RAID Upgrades Using Dynamic Hot Data Reorganization"*).
//!
//! The kernel provides three things:
//!
//! * [`SimTime`] / [`SimDuration`] — fixed-point simulated time (nanosecond
//!   resolution) with total ordering, so event ordering is reproducible across
//!   runs and platforms (no floating-point tie ambiguity).
//! * [`EventQueue`] — a monotonic future-event list with FIFO tie-breaking.
//! * [`SimRng`] and the [`dist`] module — seeded random-number plumbing and
//!   the small set of distributions the workload generators need (Zipf,
//!   exponential, Pareto-ish burst lengths).
//!
//! # Example
//!
//! ```
//! use craid_simkit::{EventQueue, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Arrive(u32), Done(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO, Ev::Arrive(1));
//! q.schedule(SimTime::from_millis(2.0), Ev::Done(1));
//! q.schedule(SimTime::from_millis(1.0), Ev::Arrive(2));
//!
//! let (t, e) = q.pop().unwrap();
//! assert_eq!(t, SimTime::ZERO);
//! assert_eq!(e, Ev::Arrive(1));
//! assert_eq!(q.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod queue;
pub mod rng;
pub mod time;

pub use engine::{EventLoop, Handler, StopReason};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
