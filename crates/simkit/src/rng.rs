//! Deterministic random-number plumbing.
//!
//! Every stochastic component of the simulator (workload generators, dataset
//! placement, think-time jitter) draws from a [`SimRng`] derived from a single
//! experiment seed. Two strategies compared within one experiment therefore
//! replay byte-identical workloads, which is how the paper's comparative
//! methodology works.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random-number generator with named sub-streams.
///
/// Sub-streams let independent components (e.g. the arrival-time jitter and
/// the block-popularity sampler) draw from statistically independent
/// sequences while still being fully determined by the experiment seed, so
/// adding a new consumer does not perturb the draws seen by existing ones.
///
/// # Example
///
/// ```
/// use craid_simkit::SimRng;
/// use rand::Rng;
///
/// let mut a = SimRng::from_seed(42).substream("arrivals");
/// let mut b = SimRng::from_seed(42).substream("arrivals");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit experiment seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for the named component.
    ///
    /// The derivation is a stable FNV-1a hash of the label mixed into the
    /// parent seed, so the mapping from `(seed, label)` to stream is fixed
    /// across runs and platforms.
    pub fn substream(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let derived = self.seed ^ h.rotate_left(17);
        SimRng::from_seed(derived)
    }

    /// Draws a sample from an exponential distribution with the given mean.
    ///
    /// Used for open-loop arrival processes in synthetic workloads.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        // Inverse-CDF sampling; clamp away from 0 to avoid ln(0).
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen_bool(p)
    }

    /// Uniformly samples an integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty range");
        self.inner.gen_range(0..n)
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_substreams_differ() {
        let root = SimRng::from_seed(7);
        let mut a = root.substream("arrivals");
        let mut b = root.substream("popularity");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "substreams should be effectively independent");
    }

    #[test]
    fn substream_is_stable() {
        let x = SimRng::from_seed(123).substream("zipf").next_u64();
        let y = SimRng::from_seed(123).substream("zipf").next_u64();
        assert_eq!(x, y);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::from_seed(99);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 5.0).abs() < 0.2,
            "empirical mean {mean} too far from 5.0"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn index_bounds() {
        let mut rng = SimRng::from_seed(5);
        for _ in 0..1000 {
            assert!(rng.index(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_zero_panics() {
        SimRng::from_seed(0).index(0);
    }
}
