//! Distributions used by the synthetic workload generators.
//!
//! The CRAID paper motivates its design with two empirical properties of
//! long-term I/O workloads (its §2): access frequencies are highly skewed
//! (a Zipf-like popularity curve) and working sets drift slowly from day to
//! day. The [`Zipf`] sampler reproduces the first property; the second is
//! modelled in `craid-trace` on top of it.

use rand::Rng;

use crate::rng::SimRng;

/// A Zipf(θ) sampler over ranks `0..n`.
///
/// Rank `r` is drawn with probability proportional to `1 / (r + 1)^theta`.
/// Sampling uses a precomputed cumulative table and binary search, so each
/// draw is `O(log n)` and the sampler is deterministic given the RNG stream.
///
/// # Example
///
/// ```
/// use craid_simkit::{SimRng, dist::Zipf};
///
/// let zipf = Zipf::new(1_000, 0.99);
/// let mut rng = SimRng::from_seed(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    theta: f64,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with skew parameter `theta`.
    ///
    /// `theta == 0` degenerates to a uniform distribution; the paper's
    /// workloads correspond to `theta` roughly in `[0.7, 1.2]`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point leaving the last entry slightly below 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf, theta }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The skew parameter this sampler was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn pmf(&self, r: usize) -> f64 {
        assert!(r < self.cdf.len(), "rank out of range");
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// The fraction of probability mass carried by the `k` most popular ranks.
    ///
    /// Used to calibrate generators against the paper's "accesses to top 20 %
    /// data" column in Table 1.
    pub fn head_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[(k - 1).min(self.cdf.len() - 1)]
        }
    }
}

/// A bounded Pareto-like sampler for request run lengths (number of
/// consecutive blocks touched by one logical request).
///
/// Most requests are small, a few are long sequential runs; this mirrors the
/// multi-block I/Os the paper's redirector has to split.
#[derive(Debug, Clone)]
pub struct RunLength {
    max: usize,
    alpha: f64,
}

impl RunLength {
    /// Creates a sampler producing lengths in `[1, max]` with tail index `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0` or `alpha` is not finite and positive.
    pub fn new(max: usize, alpha: f64) -> Self {
        assert!(max > 0, "maximum run length must be positive");
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        RunLength { max, alpha }
    }

    /// Largest length this sampler can produce.
    pub fn max(&self) -> usize {
        self.max
    }

    /// Draws a run length in `[1, max]`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        if self.max == 1 {
            return 1;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        // Inverse-CDF of a truncated Pareto on [1, max].
        let hi = (self.max as f64).powf(-self.alpha);
        let x = (1.0 - u * (1.0 - hi)).powf(-1.0 / self.alpha);
        (x.floor() as usize).clamp(1, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_ranks_in_range() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = SimRng::from_seed(3);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let zipf = Zipf::new(1_000, 1.0);
        let mut rng = SimRng::from_seed(11);
        let mut counts = vec![0usize; 1_000];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let head: usize = counts[..200].iter().sum();
        let total: usize = counts.iter().sum();
        let share = head as f64 / total as f64;
        assert!(
            share > 0.6,
            "top 20% of ranks should dominate, got share {share}"
        );
        assert!(counts[0] > counts[500], "rank 0 must beat the median rank");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((zipf.pmf(r) - 0.1).abs() < 1e-12);
        }
        assert_eq!(zipf.head_mass(10), 1.0);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let zipf = Zipf::new(500, 0.8);
        let sum: f64 = (0..500).map(|r| zipf.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_head_mass_monotone() {
        let zipf = Zipf::new(100, 1.1);
        let mut prev = 0.0;
        for k in 0..=100 {
            let m = zipf.head_mass(k);
            assert!(m >= prev);
            prev = m;
        }
        assert_eq!(zipf.head_mass(0), 0.0);
        assert!((zipf.head_mass(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_length_bounds() {
        let rl = RunLength::new(64, 1.2);
        let mut rng = SimRng::from_seed(17);
        for _ in 0..10_000 {
            let l = rl.sample(&mut rng);
            assert!((1..=64).contains(&l));
        }
    }

    #[test]
    fn run_length_mostly_short() {
        let rl = RunLength::new(128, 1.5);
        let mut rng = SimRng::from_seed(23);
        let short = (0..10_000).filter(|_| rl.sample(&mut rng) <= 8).count();
        assert!(short > 7_000, "short runs should dominate, got {short}");
    }

    #[test]
    fn run_length_of_one() {
        let rl = RunLength::new(1, 2.0);
        let mut rng = SimRng::from_seed(1);
        assert_eq!(rl.sample(&mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_empty_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
