//! A minimal event-loop driver.
//!
//! The storage simulator in `craid` owns most of its own control flow (it
//! knows about disks, partitions and requests), but the outer loop — pop the
//! next event, advance the clock, hand it to a handler, stop when a budget is
//! exhausted — is generic and lives here so it can be unit-tested in
//! isolation and reused by auxiliary tools.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Why an [`EventLoop`] run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The future-event list became empty.
    Drained,
    /// The configured time horizon was reached.
    HorizonReached,
    /// The configured event budget was exhausted.
    EventBudgetExhausted,
    /// The handler requested an early stop.
    HandlerStopped,
}

/// Outcome returned by a [`Handler`] for each delivered event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Flow {
    /// Keep running.
    #[default]
    Continue,
    /// Stop the loop after this event.
    Stop,
}

/// A consumer of simulation events.
///
/// Implementations receive mutable access to the event queue so they can
/// schedule follow-up events (e.g. a disk scheduling its own completion).
pub trait Handler<E> {
    /// Handles one event delivered at `now`.
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>) -> Flow;
}

impl<E, F> Handler<E> for F
where
    F: FnMut(SimTime, E, &mut EventQueue<E>) -> Flow,
{
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>) -> Flow {
        self(now, event, queue)
    }
}

/// Drives a [`Handler`] over an [`EventQueue`] until a stop condition fires.
///
/// # Example
///
/// ```
/// use craid_simkit::{EventLoop, EventQueue, SimTime, StopReason};
/// use craid_simkit::engine::Flow;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(SimTime::ZERO, 0u32);
///
/// let mut fired = Vec::new();
/// let reason = EventLoop::new().run(&mut queue, |now, ev: u32, q: &mut EventQueue<u32>| {
///     fired.push(ev);
///     if ev < 4 {
///         q.schedule(now + craid_simkit::SimDuration::from_millis(1.0), ev + 1);
///     }
///     Flow::Continue
/// });
/// assert_eq!(reason, StopReason::Drained);
/// assert_eq!(fired, vec![0, 1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventLoop {
    horizon: Option<SimTime>,
    event_budget: Option<u64>,
    events_processed: u64,
    now: SimTime,
}

impl EventLoop {
    /// Creates a loop with no horizon and no event budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stops once the clock passes `horizon` (events scheduled later are left
    /// in the queue untouched).
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Stops after delivering `budget` events.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = Some(budget);
        self
    }

    /// Number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Current simulated time (the timestamp of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Runs the loop to completion and reports why it stopped.
    pub fn run<E, H: Handler<E>>(
        &mut self,
        queue: &mut EventQueue<E>,
        mut handler: H,
    ) -> StopReason {
        loop {
            if let Some(budget) = self.event_budget {
                if self.events_processed >= budget {
                    return StopReason::EventBudgetExhausted;
                }
            }
            let Some(next_time) = queue.peek_time() else {
                return StopReason::Drained;
            };
            if let Some(horizon) = self.horizon {
                if next_time > horizon {
                    return StopReason::HorizonReached;
                }
            }
            let (time, event) = queue.pop().expect("peek said non-empty");
            self.now = time;
            self.events_processed += 1;
            if handler.handle(time, event, queue) == Flow::Stop {
                return StopReason::HandlerStopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn drains_empty_queue_immediately() {
        let mut queue: EventQueue<()> = EventQueue::new();
        let reason =
            EventLoop::new().run(&mut queue, |_, _, _: &mut EventQueue<()>| Flow::Continue);
        assert_eq!(reason, StopReason::Drained);
    }

    #[test]
    fn horizon_stops_before_late_events() {
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::from_millis(1.0), 1u32);
        queue.schedule(SimTime::from_millis(10.0), 2u32);
        let mut seen = Vec::new();
        let mut engine = EventLoop::new().with_horizon(SimTime::from_millis(5.0));
        let reason = engine.run(&mut queue, |_, ev, _: &mut EventQueue<u32>| {
            seen.push(ev);
            Flow::Continue
        });
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(seen, vec![1]);
        assert_eq!(queue.len(), 1, "the late event remains queued");
    }

    #[test]
    fn event_budget_limits_work() {
        let mut queue = EventQueue::new();
        for i in 0..10u32 {
            queue.schedule(SimTime::from_millis(i as f64), i);
        }
        let mut engine = EventLoop::new().with_event_budget(3);
        let mut count = 0;
        let reason = engine.run(&mut queue, |_, _, _: &mut EventQueue<u32>| {
            count += 1;
            Flow::Continue
        });
        assert_eq!(reason, StopReason::EventBudgetExhausted);
        assert_eq!(count, 3);
        assert_eq!(engine.events_processed(), 3);
    }

    #[test]
    fn handler_can_stop_early() {
        let mut queue = EventQueue::new();
        for i in 0..10u32 {
            queue.schedule(SimTime::from_millis(i as f64), i);
        }
        let reason = EventLoop::new().run(&mut queue, |_, ev, _: &mut EventQueue<u32>| {
            if ev == 4 {
                Flow::Stop
            } else {
                Flow::Continue
            }
        });
        assert_eq!(reason, StopReason::HandlerStopped);
        assert_eq!(queue.len(), 5);
    }

    #[test]
    fn handler_scheduled_events_are_delivered() {
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::ZERO, 0u32);
        let mut chain = Vec::new();
        let mut engine = EventLoop::new();
        engine.run(&mut queue, |now, ev, q: &mut EventQueue<u32>| {
            chain.push((now, ev));
            if ev < 3 {
                q.schedule(now + SimDuration::from_millis(2.0), ev + 1);
            }
            Flow::Continue
        });
        assert_eq!(chain.len(), 4);
        assert_eq!(chain.last().unwrap().0, SimTime::from_millis(6.0));
        assert_eq!(engine.now(), SimTime::from_millis(6.0));
    }
}
