//! The future-event list.
//!
//! A thin wrapper around a binary heap keyed by `(time, sequence)` so that
//! events scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO tie-breaking). Deterministic ordering is a requirement for
//! the comparative experiments in the paper: every allocation strategy must
//! observe exactly the same arrival sequence.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A deterministic future-event list.
///
/// # Example
///
/// ```
/// use craid_simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(5.0), "b");
/// q.schedule(SimTime::from_millis(1.0), "a");
/// q.schedule(SimTime::from_millis(5.0), "c");
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Highest timestamp ever popped; used to detect scheduling into the past.
    watermark: SimTime,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Events scheduled for the same instant fire in insertion order.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `time` is earlier than the timestamp of the
    /// most recently popped event — scheduling into the past is always a bug
    /// in the caller's model.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.watermark,
            "event scheduled at {time} which is before the current simulation time {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest pending event together with its
    /// scheduled time, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.watermark = entry.time;
        Some((entry.time, entry.event))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The timestamp of the last popped event (the current simulation clock
    /// from the queue's point of view).
    pub fn current_time(&self) -> SimTime {
        self.watermark
    }

    /// Removes every pending event, leaving the watermark untouched.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3.0), 3u32);
        q.schedule(SimTime::from_millis(1.0), 1u32);
        q.schedule(SimTime::from_millis(2.0), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1.0);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn watermark_tracks_popped_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(4.0), ());
        assert_eq!(q.current_time(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.current_time(), SimTime::from_millis(4.0));
    }

    #[test]
    fn clear_removes_pending_events() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    proptest! {
        /// Popping the queue always yields a non-decreasing sequence of times,
        /// regardless of the insertion order.
        #[test]
        fn prop_pop_order_is_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Every scheduled event is eventually delivered exactly once.
        #[test]
        fn prop_no_events_lost(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
