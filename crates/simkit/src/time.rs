//! Simulated time.
//!
//! Time is represented as an integer number of nanoseconds since the start of
//! the simulation. Using fixed-point time (instead of `f64` seconds) keeps
//! event ordering total and reproducible, which matters because the CRAID
//! experiments compare strategies on identical replayed workloads.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Number of nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant in simulated time, measured in nanoseconds from simulation start.
///
/// `SimTime` is totally ordered and cheap to copy. Arithmetic with
/// [`SimDuration`] is saturating on underflow (a request can never complete
/// before the simulation started) and panics on overflow in debug builds.
///
/// # Example
///
/// ```
/// use craid_simkit::{SimTime, SimDuration};
/// let t = SimTime::from_millis(1.5) + SimDuration::from_micros(250.0);
/// assert_eq!(t.as_millis(), 1.75);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
///
/// # Example
///
/// ```
/// use craid_simkit::SimDuration;
/// let service = SimDuration::from_millis(4.2) + SimDuration::from_millis(0.8);
/// assert_eq!(service.as_millis(), 5.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative or not finite.
    pub fn from_micros(micros: f64) -> Self {
        SimTime(float_to_nanos(micros, NANOS_PER_MICRO))
    }

    /// Creates a time from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis(millis: f64) -> Self {
        SimTime(float_to_nanos(millis, NANOS_PER_MILLI))
    }

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        SimTime(float_to_nanos(secs, NANOS_PER_SEC))
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// This instant expressed in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// This instant expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The whole second this instant falls into (useful for per-second
    /// aggregation such as the paper's sequentiality and load-balance CDFs).
    pub const fn second_bucket(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// Duration elapsed since `earlier`, or [`SimDuration::ZERO`] if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative or not finite.
    pub fn from_micros(micros: f64) -> Self {
        SimDuration(float_to_nanos(micros, NANOS_PER_MICRO))
    }

    /// Creates a duration from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis(millis: f64) -> Self {
        SimDuration(float_to_nanos(millis, NANOS_PER_MILLI))
    }

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        SimDuration(float_to_nanos(secs, NANOS_PER_SEC))
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / NANOS_PER_MICRO as f64
    }

    /// Duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

fn float_to_nanos(value: f64, scale: u64) -> u64 {
    assert!(
        value.is_finite() && value >= 0.0,
        "time values must be finite and non-negative, got {value}"
    );
    let nanos = value * scale as f64;
    assert!(
        nanos <= u64::MAX as f64,
        "time value {value} overflows the simulated clock"
    );
    nanos.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_millis(12.5);
        assert_eq!(t.as_nanos(), 12_500_000);
        assert_eq!(t.as_millis(), 12.5);
        assert_eq!(t.as_micros(), 12_500.0);
        assert_eq!(t.as_secs(), 0.0125);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(3.0);
        let b = SimDuration::from_millis(1.5);
        assert_eq!((a + b).as_millis(), 4.5);
        assert_eq!((a - b).as_millis(), 1.5);
        assert_eq!((b - a), SimDuration::ZERO, "subtraction saturates");
        assert_eq!((a * 4).as_millis(), 12.0);
        assert_eq!((a / 2).as_millis(), 1.5);
    }

    #[test]
    fn time_ordering_is_total() {
        let mut times = vec![
            SimTime::from_millis(2.0),
            SimTime::ZERO,
            SimTime::from_micros(1.0),
            SimTime::from_secs(1.0),
        ];
        times.sort();
        assert_eq!(
            times,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(1.0),
                SimTime::from_millis(2.0),
                SimTime::from_secs(1.0),
            ]
        );
    }

    #[test]
    fn second_bucket_floors() {
        assert_eq!(SimTime::from_secs(0.999).second_bucket(), 0);
        assert_eq!(SimTime::from_secs(1.0).second_bucket(), 1);
        assert_eq!(SimTime::from_secs(61.2).second_bucket(), 61);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_millis(1.0);
        let late = SimTime::from_millis(5.0);
        assert_eq!(late.saturating_since(early).as_millis(), 4.0);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_millis(-1.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_millis(i as f64)).sum();
        assert_eq!(total.as_millis(), 10.0);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimTime::from_millis(1.25).to_string(), "1.250ms");
        assert_eq!(SimDuration::from_micros(500.0).to_string(), "0.500ms");
    }
}
