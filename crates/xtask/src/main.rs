//! Workspace automation for the CRAID simulator.
//!
//! The only subcommand today is `lint`, the workspace determinism lint:
//!
//! ```text
//! cargo xtask lint
//! ```
//!
//! The simulator's reproducibility contract is that identical inputs produce
//! identical outputs, bit for bit. Three classes of std APIs silently break
//! that contract, so the lint greps non-test source for them:
//!
//! * `std-hash` — `HashMap`/`HashSet` (iteration order varies per process
//!   unless the hasher is seeded deterministically),
//! * `wall-clock` — `std::time::*` / `SystemTime` / `Instant::now` (simulated
//!   time must come from the event loop, never the host clock),
//! * `ambient-randomness` — `thread_rng`, `from_entropy`, `RandomState`,
//!   `getrandom`, `/dev/urandom` (all randomness must flow through the
//!   seeded `rand` shim).
//!
//! A fourth rule, `wildcard-match`, guards the analyzer's exhaustiveness
//! rather than determinism: a `_ =>` arm in a `match` that also names
//! `ScheduledEvent::` variants or diagnostic-code `codes::` constants
//! would let a newly added event variant or code silently bypass the
//! rule that match implements, so such matches must stay exhaustive.
//!
//! A fifth rule, `float-eq`, flags `==`/`!=` comparisons against a float
//! literal in non-test source: floating-point equality is never a sound
//! determinism pin (one rounding change flips it silently), so exact
//! comparisons must go through `f64::to_bits`. The scan is lexical — it
//! recognises literal operands (`x == 0.0`, `1.5 != y`), not inferred
//! float types, which covers the pins the rule exists to stop.
//!
//! Pre-existing uses are grandfathered in `crates/xtask/lint.allow`, one
//! `<path> <rule>` pair per line. The lint fails on any *new* violation and
//! on any *stale* allowlist entry, so the allowlist can only shrink.
//!
//! `#[cfg(test)]` modules are exempt (tests may use wall-clock timeouts and
//! unordered sets freely), as are the root `tests/` directory, generated
//! `target/` trees, and this crate itself (its source spells out the very
//! patterns it greps for).

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A determinism rule: a short stable name plus the substrings that flag it.
struct LintRule {
    name: &'static str,
    patterns: &'static [&'static str],
}

const RULES: &[LintRule] = &[
    LintRule {
        name: "std-hash",
        patterns: &["HashMap", "HashSet"],
    },
    LintRule {
        name: "wall-clock",
        patterns: &["std::time::", "SystemTime", "Instant::now"],
    },
    LintRule {
        name: "ambient-randomness",
        patterns: &[
            "thread_rng",
            "from_entropy",
            "RandomState",
            "getrandom",
            "/dev/urandom",
        ],
    },
];

/// One flagged `(file, rule)` pair, with a sample line for the report.
struct Violation {
    path: String,
    rule: &'static str,
    line: usize,
    excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule,
            self.excerpt.trim()
        )
    }
}

mod mutate;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("mutate") => mutate::run(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown subcommand '{other}'");
            eprintln!("usage: cargo xtask <lint|mutate>");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <lint|mutate>");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let allow_path = root.join("crates/xtask/lint.allow");
    let allowlist = match load_allowlist(&allow_path) {
        Ok(list) => list,
        Err(err) => {
            eprintln!("xtask lint: cannot read {}: {err}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };

    let mut files = Vec::new();
    for dir in ["crates", "examples"] {
        collect_rust_files(&root.join(dir), &root, &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    for rel in &files {
        let source = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("xtask lint: cannot read {rel}: {err}");
                return ExitCode::FAILURE;
            }
        };
        scan_file(rel, &source, &mut violations);
        let lines = effective_lines(&source);
        scan_wildcard_arms(rel, &lines, &mut violations);
        scan_float_eq(rel, &lines, &mut violations);
    }

    let mut fresh: Vec<&Violation> = Vec::new();
    let mut used = vec![false; allowlist.len()];
    for v in &violations {
        match allowlist
            .iter()
            .position(|entry| entry.path == v.path && entry.rule == v.rule)
        {
            Some(i) => used[i] = true,
            None => fresh.push(v),
        }
    }
    let stale: Vec<&AllowEntry> = allowlist
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e)
        .collect();

    if !fresh.is_empty() {
        eprintln!("xtask lint: new determinism violations:");
        for v in &fresh {
            eprintln!("  {v}");
        }
        eprintln!(
            "\nSimulated code must use BTreeMap/BTreeSet, SimTime, and the seeded \
             rand shim; matches over ScheduledEvent variants or diagnostic codes \
             must stay exhaustive; exact float pins must compare via to_bits. If a \
             use is genuinely deterministic (order never observed, shim-internal, \
             a zero-guard rather than a pin), add '<path> <rule>' to \
             crates/xtask/lint.allow with a justifying comment."
        );
    }
    if !stale.is_empty() {
        eprintln!("xtask lint: stale allowlist entries (no matching violation; remove them):");
        for e in &stale {
            eprintln!("  {} {}", e.path, e.rule);
        }
    }

    if fresh.is_empty() && stale.is_empty() {
        println!(
            "xtask lint: {} files scanned, {} grandfathered use(s), no new violations",
            files.len(),
            violations.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Repo root, two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Recursively collect `.rs` files under `dir` as root-relative slash paths,
/// skipping `target/` trees and this crate's own source.
fn collect_rust_files(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" {
                continue;
            }
            if path == root.join("crates/xtask") {
                continue;
            }
            collect_rust_files(&path, root, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("collected file lives under the workspace root")
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
}

/// Scan one file, recording at most one violation per `(file, rule)` pair.
fn scan_file(rel: &str, source: &str, out: &mut Vec<Violation>) {
    let lines = effective_lines(source);
    for rule in RULES {
        let hit = lines.iter().find_map(|(lineno, text)| {
            rule.patterns
                .iter()
                .any(|p| text.contains(p))
                .then_some((*lineno, text.clone()))
        });
        if let Some((line, excerpt)) = hit {
            out.push(Violation {
                path: rel.to_string(),
                rule: rule.name,
                line,
                excerpt,
            });
        }
    }
}

/// Flags `_ =>` arms inside `match` blocks that also name `ScheduledEvent::`
/// variants or diagnostic-code `codes::` constants in their arm patterns.
/// Such matches implement analyzer rules; a wildcard arm would swallow any
/// newly added variant instead of forcing the rule to take a position.
/// Records at most one violation per file.
fn scan_wildcard_arms(rel: &str, lines: &[(usize, String)], out: &mut Vec<Violation>) {
    /// One open `match` block: the brace depth outside it, whether any arm
    /// pattern names a guarded enum, and the first wildcard arm seen.
    struct MatchCtx {
        outer_depth: usize,
        sensitive: bool,
        wildcard: Option<(usize, String)>,
    }

    let mut depth = 0usize;
    let mut stack: Vec<MatchCtx> = Vec::new();
    let mut hit: Option<(usize, String)> = None;
    for (lineno, text) in lines {
        let trimmed = text.trim();
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();

        if let Some(ctx) = stack.last_mut() {
            // An arm line: everything before `=>` is (the tail of) its
            // pattern — under rustfmt a multi-line pattern keeps its last
            // alternative on the `=>` line, so this sees every arm. Text
            // *after* `=>` is arm body and deliberately ignored (naming a
            // code while constructing a diagnostic is not matching on one).
            if let Some(pos) = text.find("=>") {
                let pattern = &text[..pos];
                if pattern.contains("ScheduledEvent::") || pattern.contains("codes::") {
                    ctx.sensitive = true;
                }
                let pattern = pattern.trim();
                if pattern == "_" || pattern.starts_with("_ if ") {
                    ctx.wildcard.get_or_insert((*lineno, text.clone()));
                }
            }
        }
        if (trimmed.starts_with("match ") || trimmed.contains(" match ")) && opens > closes {
            stack.push(MatchCtx {
                outer_depth: depth,
                sensitive: false,
                wildcard: None,
            });
        }
        depth = (depth + opens).saturating_sub(closes);
        while let Some(ctx) = stack.last() {
            if depth > ctx.outer_depth {
                break;
            }
            let ctx = stack.pop().expect("peeked entry");
            if ctx.sensitive {
                if let Some((line, excerpt)) = ctx.wildcard {
                    hit.get_or_insert((line, excerpt));
                }
            }
        }
    }
    if let Some((line, excerpt)) = hit {
        out.push(Violation {
            path: rel.to_string(),
            rule: "wildcard-match",
            line,
            excerpt,
        });
    }
}

/// Flags `==`/`!=` comparisons whose immediate operand is a float literal.
/// Exact-equality pins on floats silently flip under any rounding change;
/// determinism pins must compare `f64::to_bits` instead. Lexical by design:
/// it sees literal operands, not inferred types. Records at most one
/// violation per file.
fn scan_float_eq(rel: &str, lines: &[(usize, String)], out: &mut Vec<Violation>) {
    for (lineno, text) in lines {
        if line_has_float_eq(text) {
            out.push(Violation {
                path: rel.to_string(),
                rule: "float-eq",
                line: *lineno,
                excerpt: text.clone(),
            });
            return;
        }
    }
}

/// True when `text` contains an `==` or `!=` whose left or right operand
/// token is a float literal. String literals are skipped; `==` preceded by
/// another operator char (`<=`, `>=`, `+=`, ...) is not a comparison.
fn line_has_float_eq(text: &str) -> bool {
    let bytes = text.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i + 1 < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => {
                i += 2;
                continue;
            }
            b'"' => in_str = !in_str,
            b'=' | b'!' if !in_str && bytes[i + 1] == b'=' => {
                let is_comparison = bytes[i] == b'!'
                    || i == 0
                    || !matches!(
                        bytes[i - 1],
                        b'<' | b'>'
                            | b'!'
                            | b'='
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                    );
                if is_comparison
                    && (is_float_literal(operand_before(text, i))
                        || is_float_literal(operand_after(text, i + 2)))
                {
                    return true;
                }
                i += 2;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// The operand token ending just before byte `idx`: trailing spaces skipped,
/// then the longest run of identifier/number chars (`[A-Za-z0-9_.]`).
fn operand_before(text: &str, idx: usize) -> &str {
    let bytes = text.as_bytes();
    let mut end = idx;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0
        && (bytes[start - 1].is_ascii_alphanumeric() || matches!(bytes[start - 1], b'_' | b'.'))
    {
        start -= 1;
    }
    &text[start..end]
}

/// The operand token starting at or after byte `idx`: leading spaces and an
/// optional unary minus skipped, then the longest identifier/number run.
fn operand_after(text: &str, idx: usize) -> &str {
    let bytes = text.as_bytes();
    let mut start = idx;
    while start < bytes.len() && bytes[start] == b' ' {
        start += 1;
    }
    if start < bytes.len() && bytes[start] == b'-' {
        start += 1;
    }
    let mut end = start;
    while end < bytes.len()
        && (bytes[end].is_ascii_alphanumeric() || matches!(bytes[end], b'_' | b'.'))
    {
        end += 1;
    }
    &text[start..end]
}

/// True for tokens that lex as float literals: they start with a digit (so
/// `a.0` tuple access never qualifies) and carry a `.`, a decimal exponent,
/// or an `f32`/`f64` suffix. Hex/octal/binary literals are exempt.
fn is_float_literal(token: &str) -> bool {
    let token = token.trim_start_matches('-');
    let mut chars = token.chars();
    if !chars.next().is_some_and(|c| c.is_ascii_digit()) {
        return false;
    }
    if token.starts_with("0x") || token.starts_with("0b") || token.starts_with("0o") {
        return false;
    }
    let digits = token.trim_end_matches("f64").trim_end_matches("f32");
    digits.contains('.')
        || digits.bytes().zip(digits.bytes().skip(1)).any(|(a, b)| {
            matches!(a, b'e' | b'E') && (b.is_ascii_digit() || b == b'-' || b == b'+')
        })
        || digits.len() < token.len()
}

/// The lines of `source` that the lint actually inspects: comments stripped,
/// `#[cfg(test)]` items (modules or functions) skipped by brace matching.
fn effective_lines(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut skip_depth: Option<usize> = None; // brace depth at which the skip ends
    let mut pending_cfg_test = false;
    let mut depth: usize = 0;

    for (idx, raw) in source.lines().enumerate() {
        let code = strip_line_comment(raw);
        let trimmed = code.trim();
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();

        if skip_depth.is_none() && (pending_cfg_test || trimmed.contains("#[cfg(test)]")) {
            if trimmed.contains("#[cfg(test)]") || !trimmed.starts_with("#[") {
                // Either the gating attribute itself or the item it gates;
                // intervening attributes (`#[allow(...)]`) keep the skip
                // pending without consuming it.
                if opens > closes {
                    skip_depth = Some(depth);
                    pending_cfg_test = false;
                } else {
                    // Item not opened yet (bare attribute line or a
                    // brace-less item like `mod tests;`).
                    pending_cfg_test = trimmed.ends_with(']') || trimmed.is_empty();
                }
            }
            depth = (depth + opens).saturating_sub(closes);
            continue;
        }

        let in_skip = skip_depth.is_some();
        depth = (depth + opens).saturating_sub(closes);
        if let Some(end) = skip_depth {
            if depth <= end {
                skip_depth = None;
            }
            continue;
        }
        if !in_skip && !trimmed.is_empty() {
            out.push((idx + 1, code.to_string()));
        }
    }
    out
}

/// Truncate a line at `//`, ignoring occurrences inside string literals.
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped byte
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// One grandfathered `(path, rule)` pair from `lint.allow`.
struct AllowEntry {
    path: String,
    rule: String,
}

/// Parse `lint.allow`: `<path> <rule>` per line, `#` comments, blanks ignored.
fn load_allowlist(path: &Path) -> Result<Vec<AllowEntry>, std::io::Error> {
    let text = std::fs::read_to_string(path)?;
    let mut entries = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(p), Some(r), None) => entries.push(AllowEntry {
                path: p.to_string(),
                rule: r.to_string(),
            }),
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed allowlist line: '{raw}'"),
                ));
            }
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wildcard_hits(source: &str) -> Vec<usize> {
        let mut out = Vec::new();
        scan_wildcard_arms("test.rs", &effective_lines(source), &mut out);
        out.iter()
            .filter(|v| v.rule == "wildcard-match")
            .map(|v| v.line)
            .collect()
    }

    #[test]
    fn wildcard_arm_on_scheduled_event_is_flagged() {
        let source = "fn f(e: &ScheduledEvent) -> u32 {\n\
                      \x20   match e {\n\
                      \x20       ScheduledEvent::Expand { .. } => 1,\n\
                      \x20       _ => 0,\n\
                      \x20   }\n\
                      }\n";
        assert_eq!(wildcard_hits(source), vec![4]);
    }

    #[test]
    fn wildcard_arm_on_diagnostic_codes_is_flagged() {
        let source = "fn f(code: &str) -> bool {\n\
                      \x20   match code {\n\
                      \x20       codes::EXPAND_BREAKS_PARITY => true,\n\
                      \x20       _ if code.is_empty() => false,\n\
                      \x20   }\n\
                      }\n";
        assert_eq!(wildcard_hits(source), vec![4]);
    }

    #[test]
    fn unrelated_wildcards_and_exhaustive_matches_pass() {
        // A wildcard over a non-guarded enum is fine; so is an exhaustive
        // ScheduledEvent match; so is a code named only in an arm *body*.
        let source = "fn f(e: &ScheduledEvent, n: u32) -> u32 {\n\
                      \x20   match n {\n\
                      \x20       0 => 1,\n\
                      \x20       _ => 0,\n\
                      \x20   };\n\
                      \x20   match e {\n\
                      \x20       ScheduledEvent::Expand { .. } => 1,\n\
                      \x20       ScheduledEvent::DiskFailure { .. } => 2,\n\
                      \x20   };\n\
                      \x20   match n {\n\
                      \x20       1 => codes::EXPAND_BREAKS_PARITY.len() as u32,\n\
                      \x20       _ => 0,\n\
                      \x20   }\n\
                      }\n";
        assert_eq!(wildcard_hits(source), Vec::<usize>::new());
    }

    fn float_eq_hits(source: &str) -> Vec<usize> {
        let mut out = Vec::new();
        scan_float_eq("test.rs", &effective_lines(source), &mut out);
        out.iter()
            .filter(|v| v.rule == "float-eq")
            .map(|v| v.line)
            .collect()
    }

    #[test]
    fn float_literal_comparisons_are_flagged() {
        assert_eq!(
            float_eq_hits("fn f(x: f64) -> bool {\n    x == 0.0\n}\n"),
            vec![2]
        );
        assert_eq!(
            float_eq_hits("fn f(y: f64) -> bool {\n    1.5 != y\n}\n"),
            vec![2]
        );
        assert_eq!(
            float_eq_hits("fn f(x: f64) -> bool {\n    x == -2.25\n}\n"),
            vec![2]
        );
        assert_eq!(
            float_eq_hits("fn f(x: f64) -> bool {\n    x == 1e9\n}\n"),
            vec![2]
        );
        assert_eq!(
            float_eq_hits("fn f(x: f32) -> bool {\n    x != 1f32\n}\n"),
            vec![2]
        );
        // One violation per file: only the first line is reported.
        assert_eq!(
            float_eq_hits("fn f(x: f64) -> bool {\n    x == 0.0 || x == 1.0\n}\nfn g(x: f64) -> bool {\n    x == 2.0\n}\n"),
            vec![2]
        );
    }

    #[test]
    fn non_float_comparisons_pass() {
        // Integers, tuple-field access, to_bits pins, compound assignment,
        // floats inside strings: none of these are float-equality pins.
        let source = "fn f(n: u64, a: (f64,), b: (f64,), x: f64, mut acc: f64) -> bool {\n\
                      \x20   let hex = n == 0x10;\n\
                      \x20   let tup = a.0.to_bits() == b.0.to_bits();\n\
                      \x20   acc += 1.0;\n\
                      \x20   let s = \"x == 0.0\";\n\
                      \x20   n == 0 && hex && tup && !s.is_empty() && n <= 1\n\
                      }\n";
        assert_eq!(float_eq_hits(source), Vec::<usize>::new());
    }

    #[test]
    fn cfg_test_float_comparisons_are_exempt() {
        let source = "#[cfg(test)]\n\
                      mod tests {\n\
                      \x20   fn f(x: f64) -> bool {\n\
                      \x20       x == 0.5\n\
                      \x20   }\n\
                      }\n";
        assert_eq!(float_eq_hits(source), Vec::<usize>::new());
    }

    #[test]
    fn cfg_test_matches_are_exempt() {
        let source = "#[cfg(test)]\n\
                      mod tests {\n\
                      \x20   fn f(e: &ScheduledEvent) -> u32 {\n\
                      \x20       match e {\n\
                      \x20           ScheduledEvent::Expand { .. } => 1,\n\
                      \x20           _ => 0,\n\
                      \x20       }\n\
                      \x20   }\n\
                      }\n";
        assert_eq!(wildcard_hits(source), Vec::<usize>::new());
    }
}
