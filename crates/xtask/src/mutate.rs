//! `cargo xtask mutate` — source-level mutation testing over the workspace.
//!
//! The engine enumerates small, deterministic source mutations (operator
//! swaps, condition negation, boundary-constant perturbation, early returns,
//! match-arm deletion — each family with a stable `M###` id), applies them
//! one at a time in a scratch checkout under `target/mutate/scratch`, and
//! judges each mutant against the repo's own suites in escalating tiers:
//!
//! 1. `unit` — `cargo test --release -p craid-core --lib`
//! 2. `integration` — every `[[test]]` target of `craid-repro`, in
//!    manifest order, fail-fast
//! 3. `explore` — for engine-adjacent files, the `--explore` small-scope
//!    model checker over the drill scenarios plus the shipped
//!    stale-generation reproducer; a counterexample's oracle code (`E4xx`)
//!    is the killer
//!
//! A mutant that fails to build is *unviable* (it proves nothing about the
//! suites); one that exceeds the per-step timeout is *timeout-killed* (a
//! runaway loop is a detected defect). Everything else either dies to a
//! named killer or *survives*. Survivors fail the run unless justified in
//! `crates/xtask/mutants.allow`, which follows the `lint.allow` contract:
//! every entry carries a justification and stale entries fail the run, so
//! the list can only shrink. The kill matrix is written to `MUTATION.json`
//! (deterministic: no timestamps, sorted keys) and printed as a table.
//!
//! Builds reuse one incremental release target dir (`target/mutate/build`),
//! so after the first warm-up build each mutant costs roughly one
//! incremental rebuild plus the (release-profile) test time of whichever
//! tier kills it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use crate::{effective_lines, workspace_root};

/// The mutation operators, in id order. The id is stable across releases:
/// new operators append, existing ones never renumber (mutants.allow keys
/// and burn-down tests reference them).
pub(crate) const MUTATORS: &[(&str, &str)] = &[
    ("M101", "swap binary `+` -> `-`"),
    ("M102", "swap binary `-` -> `+`"),
    ("M103", "swap comparison `<` -> `<=`"),
    ("M104", "swap comparison `<=` -> `<`"),
    ("M105", "swap comparison `>` -> `>=`"),
    ("M106", "swap comparison `>=` -> `>`"),
    ("M107", "swap logical `&&` -> `||`"),
    ("M108", "swap logical `||` -> `&&`"),
    ("M201", "negate `if` condition"),
    (
        "M301",
        "off-by-one: bump integer literal beside a comparison",
    ),
    ("M401", "early `return true` from a `-> bool` fn"),
    ("M402", "early `return false` from a `-> bool` fn"),
    ("M403", "early `return None` from a `-> Option<..>` fn"),
    ("M404", "early `return 0` from a numeric fn"),
    ("M501", "delete a single-line match arm"),
];

/// Files whose mutants graduate to the `explore` tier: the background
/// engine and everything the model checker's decision points thread
/// through. Entries ending in `/` match by prefix.
const EXPLORE_ADJACENT: &[&str] = &[
    "crates/core/src/background.rs",
    "crates/core/src/restripe.rs",
    "crates/core/src/qos.rs",
    "crates/core/src/sim.rs",
    "crates/core/src/choice.rs",
    "crates/core/src/array/",
];

/// Statically-clean scenarios the explore tier judges against (the four
/// drills plus the shipped stale-generation reproducer, which only the
/// E404 oracle can distinguish from a healthy engine).
const EXPLORE_SCENARIOS: &[&str] = &[
    "examples/scenarios/failure_drill.toml",
    "examples/scenarios/online_upgrade_drill.toml",
    "examples/scenarios/qos_drill.toml",
    "examples/scenarios/upgrade_drill.toml",
    "examples/scenarios/invalid/stale_generation_collision.toml",
];

/// One concrete mutation site: a single-line rewrite (or deletion) of a
/// workspace file.
#[derive(Debug, Clone)]
pub(crate) struct Mutant {
    /// Mutation-operator id (`M###`).
    pub(crate) mutator: &'static str,
    /// Workspace-relative path with `/` separators.
    pub(crate) file: String,
    /// 1-based line number in the unmutated file.
    pub(crate) line: usize,
    /// 1-based byte column of the mutation site within the line.
    pub(crate) col: usize,
    /// Human description of the rewrite.
    pub(crate) description: String,
    /// Full replacement for the raw line; `None` deletes the line.
    pub(crate) mutated_line: Option<String>,
}

impl Mutant {
    /// The stable identity used in `MUTATION.json` and `mutants.allow`.
    pub(crate) fn key(&self) -> String {
        format!("{}:{}:{} {}", self.file, self.line, self.col, self.mutator)
    }
}

/// How a judged mutant fared.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    /// Failed to compile: proves nothing about the suites.
    Unviable,
    /// A suite or oracle caught it. `killer` names the specific test,
    /// suite, or oracle code.
    Killed { tier: &'static str, killer: String },
    /// Exceeded the per-step timeout: a runaway loop, counted as killed.
    TimedOut { tier: &'static str },
    /// Built and passed every judged tier.
    Survived,
}

struct Config {
    paths: Vec<String>,
    mutators: Option<BTreeSet<String>>,
    grep: Option<String>,
    sample: Option<usize>,
    seed: u64,
    list_only: bool,
    out: PathBuf,
    timeout: Duration,
    /// 1 = unit, 2 = integration, 3 = explore; run-steps below this tier
    /// are skipped (builds still run, for viability).
    start_tier: u8,
}

pub(crate) fn run(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let config = match parse_args(args, &root) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("xtask mutate: {msg}");
            eprintln!(
                "usage: cargo xtask mutate [paths...] [--mutators M101,M201] [--grep SUBSTR] \
                 [--sample N] [--seed S] [--tier unit|integration|explore] [--timeout SECS] \
                 [--out PATH] [--list]"
            );
            return ExitCode::FAILURE;
        }
    };
    match mutate(&root, &config) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("xtask mutate: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args(args: &[String], root: &Path) -> Result<Config, String> {
    let mut config = Config {
        paths: Vec::new(),
        mutators: None,
        grep: None,
        sample: None,
        seed: 1,
        list_only: false,
        out: root.join("MUTATION.json"),
        timeout: Duration::from_secs(300),
        start_tier: 1,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--mutators" => {
                let list = value("--mutators")?;
                let set: BTreeSet<String> = list.split(',').map(str::to_string).collect();
                for id in &set {
                    if !MUTATORS.iter().any(|(known, _)| known == id) {
                        return Err(format!("unknown mutator '{id}'"));
                    }
                }
                config.mutators = Some(set);
            }
            "--grep" => config.grep = Some(value("--grep")?),
            "--sample" => {
                config.sample = Some(
                    value("--sample")?
                        .parse()
                        .map_err(|e| format!("bad --sample: {e}"))?,
                );
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--timeout" => {
                let secs: u64 = value("--timeout")?
                    .parse()
                    .map_err(|e| format!("bad --timeout: {e}"))?;
                config.timeout = Duration::from_secs(secs);
            }
            "--out" => config.out = root.join(value("--out")?),
            "--tier" => {
                config.start_tier = match value("--tier")?.as_str() {
                    "unit" => 1,
                    "integration" => 2,
                    "explore" => 3,
                    other => return Err(format!("unknown tier '{other}'")),
                };
            }
            "--list" => config.list_only = true,
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            path => config.paths.push(path.to_string()),
        }
    }
    if config.paths.is_empty() {
        config.paths.push("crates/core/src".to_string());
    }
    Ok(config)
}

fn mutate(root: &Path, config: &Config) -> Result<ExitCode, String> {
    let files = resolve_scope(root, &config.paths)?;
    if files.is_empty() {
        return Err("scope matches no source files".to_string());
    }

    // Enumerate deterministically: files sorted, sites in (line, col,
    // mutator) order within each file.
    let mut sources = BTreeMap::new();
    let mut mutants = Vec::new();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        let mut found = enumerate_file(rel, &source);
        found.retain(|m| {
            config
                .mutators
                .as_ref()
                .is_none_or(|set| set.contains(m.mutator))
        });
        if let Some(grep) = &config.grep {
            found.retain(|m| {
                source
                    .lines()
                    .nth(m.line - 1)
                    .is_some_and(|l| l.contains(grep.as_str()))
            });
        }
        mutants.extend(found);
        sources.insert(rel.clone(), source);
    }
    let enumerated = mutants.len();

    // Allow-file: parse up front so malformed entries and entries pointing
    // at sites that no longer exist fail before any build runs.
    let allow_path = root.join("crates/xtask/mutants.allow");
    let allow = load_mutants_allow(&allow_path)?;
    let enumerated_keys: BTreeSet<String> = mutants.iter().map(Mutant::key).collect();
    let mut stale: Vec<&MutantAllowEntry> = allow
        .iter()
        .filter(|e| files.contains(&e.file) && !enumerated_keys.contains(&e.key))
        .collect();
    if !stale.is_empty() {
        for e in &stale {
            eprintln!(
                "xtask mutate: stale mutants.allow entry (no such site): {}",
                e.key
            );
        }
        return Ok(ExitCode::FAILURE);
    }

    if config.list_only {
        println!("{enumerated} mutant(s) over {} file(s):", files.len());
        for m in &mutants {
            println!("  {:<55} {}", m.key(), m.description);
        }
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(n) = config.sample {
        mutants = sample_mutants(mutants, n, config.seed);
        println!(
            "sampled {} of {enumerated} mutant(s) (seed {})",
            mutants.len(),
            config.seed
        );
    }

    // Scratch checkout + warm-up: the baseline must be green before any
    // mutant is blamed for breaking it.
    let scratch = root.join("target/mutate/scratch");
    let build_dir = root.join("target/mutate/build");
    prepare_scratch(root, &scratch)?;
    let suites = integration_suites(root)?;
    let runner = Runner {
        scratch,
        build_dir,
        suites,
        timeout: config.timeout,
        start_tier: config.start_tier,
    };
    let needs_explore = mutants.iter().any(|m| explore_adjacent(&m.file));
    runner.baseline(needs_explore)?;

    // Judge each mutant, reverting the touched file afterwards.
    let total = mutants.len();
    let mut results: Vec<(Mutant, Outcome, Duration)> = Vec::with_capacity(total);
    for (i, mutant) in mutants.into_iter().enumerate() {
        let source = &sources[&mutant.file];
        let mutated = apply_to_source(source, &mutant);
        let started = Instant::now();
        let scratch_file = runner.scratch.join(&mutant.file);
        std::fs::write(&scratch_file, mutated)
            .map_err(|e| format!("cannot write mutant to {}: {e}", scratch_file.display()))?;
        let outcome = runner.judge(&mutant);
        std::fs::write(&scratch_file, source)
            .map_err(|e| format!("cannot revert {}: {e}", scratch_file.display()))?;
        scrub_counterexamples(&runner.scratch);
        let elapsed = started.elapsed();
        let outcome = outcome?;
        println!(
            "[{}/{}] {:<52} {:<44} {} ({:.1}s)",
            i + 1,
            total,
            mutant.key(),
            mutant.description,
            describe_outcome(&outcome),
            elapsed.as_secs_f64()
        );
        let _ = std::io::stdout().flush();
        results.push((mutant, outcome, elapsed));
    }

    // Second staleness pass: an allow entry whose mutant actually ran and
    // died is stale — the justification outlived the survivor.
    for e in &allow {
        if results
            .iter()
            .any(|(m, o, _)| m.key() == e.key && *o != Outcome::Survived)
        {
            stale.push(e);
        }
    }
    report(root, config, &files, enumerated, &results, &allow, &stale)
}

/// Expand the positional scope arguments (files or directories, workspace
/// relative) into a sorted set of mutable source files. Integration-test
/// trees, benches and the xtask itself are never in scope.
fn resolve_scope(root: &Path, paths: &[String]) -> Result<BTreeSet<String>, String> {
    let mut files = BTreeSet::new();
    for arg in paths {
        let rel = arg.trim_end_matches('/').replace('\\', "/");
        let abs = root.join(&rel);
        if abs.is_file() {
            files.insert(rel);
        } else if abs.is_dir() {
            let mut found = Vec::new();
            crate::collect_rust_files(&abs, root, &mut found);
            files.extend(found);
        } else {
            return Err(format!("scope path '{arg}' does not exist"));
        }
    }
    files.retain(|rel| {
        !rel.starts_with("tests/")
            && !rel.contains("/tests/")
            && !rel.contains("/benches/")
            && !rel.starts_with("crates/xtask/")
    });
    Ok(files)
}

fn explore_adjacent(file: &str) -> bool {
    EXPLORE_ADJACENT.iter().any(|p| {
        if p.ends_with('/') {
            file.starts_with(p)
        } else {
            file == *p
        }
    })
}

// ---------------------------------------------------------------------------
// Enumeration
// ---------------------------------------------------------------------------

/// All mutants of one file, in (line, col, mutator) order. Only lines the
/// determinism lint would inspect are eligible: comments are stripped and
/// `#[cfg(test)]` items skipped, so test-only code is never mutated.
pub(crate) fn enumerate_file(rel: &str, source: &str) -> Vec<Mutant> {
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    for (lineno, stripped) in effective_lines(source) {
        let raw = raw_lines[lineno - 1];
        mutants_for_line(rel, lineno, raw, stripped.as_str(), &mut out);
    }
    out.sort_by(|a, b| (a.line, a.col, a.mutator).cmp(&(b.line, b.col, b.mutator)));
    out
}

fn mutants_for_line(rel: &str, lineno: usize, raw: &str, stripped: &str, out: &mut Vec<Mutant>) {
    // `stripped` is a byte prefix of `raw` (the comment tail removed), so
    // site columns are valid in both and a rewritten line keeps its
    // trailing comment by re-appending `raw`'s tail.
    let tail = &raw[stripped.len()..];
    let mut push =
        |mutator: &'static str, col: usize, description: String, mutated: Option<String>| {
            out.push(Mutant {
                mutator,
                file: rel.to_string(),
                line: lineno,
                col,
                description,
                mutated_line: mutated.map(|s| format!("{s}{tail}")),
            });
        };

    scan_operator_swaps(stripped, &mut push);
    scan_condition_negation(stripped, &mut push);
    scan_boundary_literals(stripped, &mut push);
    scan_early_returns(stripped, &mut push);
    scan_arm_deletion(stripped, raw, rel, lineno, out);
}

/// Binary-operator swaps. Rustfmt spaces every binary operator, so a site
/// is an operator token with a space on both sides — which also excludes
/// `->`, `=>`, generics (`Vec<u64>`), shifts (`<<`), unary minus (`-1`)
/// and compound assignment (`+=`) without any parsing.
fn scan_operator_swaps(
    s: &str,
    push: &mut impl FnMut(&'static str, usize, String, Option<String>),
) {
    const SWAPS: &[(&str, &str, &str)] = &[
        ("M101", "+", "-"),
        ("M102", "-", "+"),
        ("M103", "<", "<="),
        ("M104", "<=", "<"),
        ("M105", ">", ">="),
        ("M106", ">=", ">"),
        ("M107", "&&", "||"),
        ("M108", "||", "&&"),
    ];
    let bytes = s.as_bytes();
    for i in code_positions(s) {
        for (id, from, to) in SWAPS {
            let end = i + from.len();
            if i == 0
                || end >= bytes.len()
                || bytes[i - 1] != b' '
                || bytes[end] != b' '
                || !s[i..].starts_with(from)
            {
                continue;
            }
            // ` < ` must not be the head of ` <= `; the longer token wins.
            if from.len() == 1 && matches!(bytes[i + 1], b'=') {
                continue;
            }
            push(
                id,
                i + 1,
                format!("`{from}` -> `{to}`"),
                Some(format!("{}{to}{}", &s[..i], &s[end..])),
            );
        }
    }
}

/// `if cond {` -> `if !(cond) {`. Skips `if let` (not an expression
/// condition) and multi-line conditions (no `{` on the line).
fn scan_condition_negation(
    s: &str,
    push: &mut impl FnMut(&'static str, usize, String, Option<String>),
) {
    let trimmed = s.trim_start();
    let kw = if trimmed.starts_with("if ") {
        Some(s.len() - trimmed.len())
    } else if trimmed.starts_with("} else if ") {
        Some(s.len() - trimmed.len() + 7)
    } else {
        None
    };
    let Some(kw) = kw else { return };
    let cond_start = kw + 3;
    let Some(brace) = s[cond_start..].find('{').map(|p| cond_start + p) else {
        return;
    };
    let cond = s[cond_start..brace].trim();
    if cond.is_empty()
        || cond.starts_with("let ")
        || cond.contains(" let ")
        || cond.matches('(').count() != cond.matches(')').count()
    {
        return;
    }
    push(
        "M201",
        cond_start + 1,
        format!("negate `{cond}`"),
        Some(format!("{}!({cond}) {}", &s[..cond_start], &s[brace..])),
    );
}

/// Integer literals adjacent to a comparison operator get bumped by one:
/// `x < 10` -> `x < 11`, `0 == n` -> `1 == n`. The perturbation targets
/// boundary conditions, where off-by-one defects live.
fn scan_boundary_literals(
    s: &str,
    push: &mut impl FnMut(&'static str, usize, String, Option<String>),
) {
    const CMP: &[&str] = &["<=", ">=", "==", "!=", "<", ">"];
    let bytes = s.as_bytes();
    let mut seen = BTreeSet::new();
    for i in code_positions(s) {
        let Some(op) = CMP.iter().find(|op| {
            let end = i + op.len();
            i > 0
                && end < bytes.len()
                && bytes[i - 1] == b' '
                && bytes[end] == b' '
                && s[i..].starts_with(**op)
        }) else {
            continue;
        };
        for (start, lit) in [
            integer_literal_ending_at(s, i.saturating_sub(1)),
            integer_literal_starting_at(s, i + op.len() + 1),
        ]
        .into_iter()
        .flatten()
        {
            if !seen.insert(start) {
                continue;
            }
            let digits: String = lit.chars().filter(char::is_ascii_digit).collect();
            let suffix = &lit[lit
                .rfind(|c: char| c.is_ascii_digit() || c == '_')
                .map_or(0, |p| p + 1)..];
            let Ok(value) = digits.parse::<u128>() else {
                continue;
            };
            let Some(bumped) = value.checked_add(1) else {
                continue;
            };
            push(
                "M301",
                start + 1,
                format!("boundary `{lit}` -> `{bumped}{suffix}`"),
                Some(format!(
                    "{}{bumped}{suffix}{}",
                    &s[..start],
                    &s[start + lit.len()..]
                )),
            );
        }
    }
}

/// The integer literal (digits, `_` separators, optional type suffix)
/// whose last byte sits at `end`, if any.
fn integer_literal_ending_at(s: &str, end: usize) -> Option<(usize, &str)> {
    let bytes = s.as_bytes();
    let mut last = end;
    while last > 0 && bytes[last] == b' ' {
        last -= 1;
    }
    let mut start = last;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    validate_integer_literal(s, start, last + 1)
}

/// The integer literal starting at or after `from` (spaces skipped).
fn integer_literal_starting_at(s: &str, from: usize) -> Option<(usize, &str)> {
    let bytes = s.as_bytes();
    let mut start = from;
    while start < bytes.len() && bytes[start] == b' ' {
        start += 1;
    }
    let mut end = start;
    while end < bytes.len()
        && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_' || bytes[end] == b'.')
    {
        end += 1;
    }
    validate_integer_literal(s, start, end)
}

fn validate_integer_literal(s: &str, start: usize, end: usize) -> Option<(usize, &str)> {
    let lit = &s[start..end];
    let first = lit.chars().next()?;
    if !first.is_ascii_digit()
        || lit.contains('.')
        || lit.starts_with("0x")
        || lit.starts_with("0b")
        || lit.starts_with("0o")
        || lit.contains('e')
        || lit.contains('E')
        || lit.ends_with("f32")
        || lit.ends_with("f64")
    {
        return None;
    }
    Some((start, lit))
}

/// Early returns from functions whose single-line-visible return type is
/// `bool`, `Option<..>` or a bare numeric. The line must *end* with the
/// return type and opening brace (`-> bool {`), which excludes closure
/// parameters like `f: impl Fn(&T) -> bool) {`.
fn scan_early_returns(s: &str, push: &mut impl FnMut(&'static str, usize, String, Option<String>)) {
    let t = s.trim_end();
    let brace_col = t.len(); // 1-based column of the trailing `{`
    let mut early = |id: &'static str, stmt: &str, ty: &str| {
        push(
            id,
            brace_col,
            format!("early `{stmt}` from `-> {ty}`"),
            Some(format!("{t} {stmt}")),
        );
    };
    if t.ends_with("-> bool {") {
        early("M401", "return true;", "bool");
        early("M402", "return false;", "bool");
    } else if t.ends_with("> {") && t.contains("-> Option<") {
        early("M403", "return None;", "Option<..>");
    } else {
        const NUMERIC: &[(&str, &str)] = &[
            ("usize", "return 0;"),
            ("u128", "return 0;"),
            ("u64", "return 0;"),
            ("u32", "return 0;"),
            ("u8", "return 0;"),
            ("i64", "return 0;"),
            ("f64", "return 0.0;"),
        ];
        for (ty, stmt) in NUMERIC {
            if t.ends_with(&format!("-> {ty} {{")) {
                early("M404", stmt, ty);
                break;
            }
        }
    }
}

/// Deletion of a complete single-line match arm (`pat => expr,`). Wildcard
/// arms are skipped — deleting `_ =>` trades one mutant for a guaranteed
/// non-exhaustiveness build failure in most matches.
fn scan_arm_deletion(s: &str, _raw: &str, rel: &str, lineno: usize, out: &mut Vec<Mutant>) {
    let trimmed = s.trim_start();
    if trimmed.starts_with('_') || !s.trim_end().ends_with(',') {
        return;
    }
    let Some(arrow) = code_positions(s).find(|&i| s[i..].starts_with(" => ")) else {
        return;
    };
    if s.matches('{').count() != s.matches('}').count()
        || s.matches('(').count() != s.matches(')').count()
    {
        return;
    }
    out.push(Mutant {
        mutator: "M501",
        file: rel.to_string(),
        line: lineno,
        col: arrow + 2,
        description: format!("delete arm `{}`", trimmed.trim_end()),
        mutated_line: None,
    });
}

/// Byte positions of `s` outside string literals, for site scanners.
fn code_positions(s: &str) -> impl Iterator<Item = usize> + '_ {
    let bytes = s.as_bytes();
    let mut in_str = false;
    let mut skip_next = false;
    (0..bytes.len()).filter(move |&i| {
        if skip_next {
            skip_next = false;
            return false;
        }
        match bytes[i] {
            b'\\' if in_str => {
                skip_next = true;
                false
            }
            b'"' => {
                in_str = !in_str;
                false
            }
            _ => !in_str,
        }
    })
}

/// Apply `mutant` to `source`, returning the mutated file contents.
pub(crate) fn apply_to_source(source: &str, mutant: &Mutant) -> String {
    let mut out = String::with_capacity(source.len() + 32);
    for (idx, line) in source.lines().enumerate() {
        if idx + 1 == mutant.line {
            if let Some(new) = &mutant.mutated_line {
                out.push_str(new);
                out.push('\n');
            }
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Deterministic sampling: a seeded xorshift64* partial shuffle picks `n`
/// mutants, then the pick is re-sorted into enumeration order.
fn sample_mutants(mut mutants: Vec<Mutant>, n: usize, seed: u64) -> Vec<Mutant> {
    if n >= mutants.len() {
        return mutants;
    }
    let mut state = if seed == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        seed
    };
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let len = mutants.len();
    for i in 0..n {
        let j = i + (next() % (len - i) as u64) as usize;
        mutants.swap(i, j);
    }
    mutants.truncate(n);
    mutants.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.mutator).cmp(&(&b.file, b.line, b.col, b.mutator))
    });
    mutants
}

// ---------------------------------------------------------------------------
// Allow file
// ---------------------------------------------------------------------------

/// One justified survivor from `mutants.allow`.
struct MutantAllowEntry {
    /// `file:line:col M###`
    key: String,
    file: String,
    justification: String,
}

/// Parse `mutants.allow`: `<file>:<line>:<col> <M###>  # justification`
/// per line. The justification is mandatory — an unexplained survivor is
/// exactly what the kill matrix exists to surface.
fn load_mutants_allow(path: &Path) -> Result<Vec<MutantAllowEntry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let mut entries = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (code, comment) = line
            .split_once('#')
            .ok_or_else(|| format!("mutants.allow entry missing a justification: '{raw}'"))?;
        let justification = comment.trim();
        let mut parts = code.split_whitespace();
        let (Some(site), Some(mutator), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(format!("malformed mutants.allow line: '{raw}'"));
        };
        let mut site_parts = site.rsplitn(3, ':');
        let col = site_parts.next().and_then(|s| s.parse::<usize>().ok());
        let lineno = site_parts.next().and_then(|s| s.parse::<usize>().ok());
        let file = site_parts.next();
        let (Some(_), Some(_), Some(file)) = (col, lineno, file) else {
            return Err(format!("malformed mutants.allow site: '{site}'"));
        };
        if justification.is_empty() || !MUTATORS.iter().any(|(id, _)| *id == mutator) {
            return Err(format!("malformed mutants.allow line: '{raw}'"));
        }
        entries.push(MutantAllowEntry {
            key: format!("{site} {mutator}"),
            file: file.to_string(),
            justification: justification.to_string(),
        });
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

struct Runner {
    scratch: PathBuf,
    build_dir: PathBuf,
    suites: Vec<String>,
    timeout: Duration,
    start_tier: u8,
}

enum Step {
    Pass,
    Fail { detail: String },
    Timeout,
}

impl Runner {
    /// Run the unmutated tiers once: proves the baseline is green and
    /// warms the incremental build cache that makes per-mutant rebuilds
    /// cheap.
    fn baseline(&self, needs_explore: bool) -> Result<(), String> {
        println!("warming scratch build (first run compiles the workspace in release)...");
        let checks: &[(&str, Vec<String>)] = &[
            ("unit build", self.unit_args(true)),
            ("unit run", self.unit_args(false)),
            ("integration build", self.integration_build_args()),
        ];
        for (label, args) in checks {
            let started = Instant::now();
            match self.cargo(args)? {
                Step::Pass => println!(
                    "  baseline {label}: ok ({:.1}s)",
                    started.elapsed().as_secs_f64()
                ),
                Step::Fail { detail } => {
                    return Err(format!(
                        "baseline {label} failed ({detail}); refusing to judge mutants"
                    ))
                }
                Step::Timeout => return Err(format!("baseline {label} timed out")),
            }
        }
        for suite in &self.suites {
            let started = Instant::now();
            match self.cargo(&self.suite_args(suite))? {
                Step::Pass => println!(
                    "  baseline suite {suite}: ok ({:.1}s)",
                    started.elapsed().as_secs_f64()
                ),
                Step::Fail { detail } => {
                    return Err(format!("baseline suite {suite} failed ({detail})"))
                }
                Step::Timeout => return Err(format!("baseline suite {suite} timed out")),
            }
        }
        if needs_explore {
            match self.cargo(&self.explore_build_args())? {
                Step::Pass => {}
                Step::Fail { detail } => {
                    return Err(format!("baseline explore build failed ({detail})"))
                }
                Step::Timeout => return Err("baseline explore build timed out".to_string()),
            }
            for scenario in EXPLORE_SCENARIOS {
                let started = Instant::now();
                match self.cargo(&self.explore_args(scenario))? {
                    Step::Pass => println!(
                        "  baseline explore {scenario}: clean ({:.1}s)",
                        started.elapsed().as_secs_f64()
                    ),
                    Step::Fail { detail } => {
                        return Err(format!("baseline explore on {scenario} found {detail}"))
                    }
                    Step::Timeout => {
                        return Err(format!("baseline explore on {scenario} timed out"))
                    }
                }
            }
        }
        Ok(())
    }

    /// The tiered verdict for one applied mutant.
    fn judge(&self, mutant: &Mutant) -> Result<Outcome, String> {
        // Tier 1: the mutated crate must build (else the mutant is
        // unviable), then the unit suite gets first crack at it.
        match self.cargo(&self.unit_args(true))? {
            Step::Pass => {}
            Step::Fail { .. } => return Ok(Outcome::Unviable),
            Step::Timeout => return Ok(Outcome::TimedOut { tier: "unit" }),
        }
        if self.start_tier <= 1 {
            match self.cargo(&self.unit_args(false))? {
                Step::Pass => {}
                Step::Fail { detail } => {
                    return Ok(Outcome::Killed {
                        tier: "unit",
                        killer: detail,
                    })
                }
                Step::Timeout => return Ok(Outcome::TimedOut { tier: "unit" }),
            }
        }
        if self.start_tier <= 2 {
            match self.cargo(&self.integration_build_args())? {
                Step::Pass => {}
                Step::Fail { .. } => return Ok(Outcome::Unviable),
                Step::Timeout => {
                    return Ok(Outcome::TimedOut {
                        tier: "integration",
                    })
                }
            }
            for suite in &self.suites {
                match self.cargo(&self.suite_args(suite))? {
                    Step::Pass => {}
                    Step::Fail { detail } => {
                        return Ok(Outcome::Killed {
                            tier: "integration",
                            killer: format!("{suite}: {detail}"),
                        })
                    }
                    Step::Timeout => {
                        return Ok(Outcome::TimedOut {
                            tier: "integration",
                        })
                    }
                }
            }
        }
        if explore_adjacent(&mutant.file) {
            match self.cargo(&self.explore_build_args())? {
                Step::Pass => {}
                Step::Fail { .. } => return Ok(Outcome::Unviable),
                Step::Timeout => return Ok(Outcome::TimedOut { tier: "explore" }),
            }
            for scenario in EXPLORE_SCENARIOS {
                match self.cargo(&self.explore_args(scenario))? {
                    Step::Pass => {}
                    Step::Fail { detail } => {
                        return Ok(Outcome::Killed {
                            tier: "explore",
                            killer: detail,
                        })
                    }
                    Step::Timeout => return Ok(Outcome::TimedOut { tier: "explore" }),
                }
            }
        }
        Ok(Outcome::Survived)
    }

    fn unit_args(&self, build_only: bool) -> Vec<String> {
        let mut args = vec!["test", "-q", "--release", "-p", "craid-core", "--lib"]
            .into_iter()
            .map(str::to_string)
            .collect::<Vec<_>>();
        if build_only {
            args.push("--no-run".to_string());
        }
        args
    }

    fn integration_build_args(&self) -> Vec<String> {
        [
            "test",
            "-q",
            "--release",
            "-p",
            "craid-repro",
            "--tests",
            "--no-run",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    fn suite_args(&self, suite: &str) -> Vec<String> {
        [
            "test",
            "-q",
            "--release",
            "-p",
            "craid-repro",
            "--test",
            suite,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    fn explore_build_args(&self) -> Vec<String> {
        [
            "build",
            "-q",
            "--release",
            "-p",
            "craid-repro",
            "--example",
            "scenario_file",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    fn explore_args(&self, scenario: &str) -> Vec<String> {
        [
            "run",
            "-q",
            "--release",
            "-p",
            "craid-repro",
            "--example",
            "scenario_file",
            "--",
            scenario,
            "--explore",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    /// Run one cargo step in the scratch checkout with the shared
    /// incremental build dir, bounded by the configured timeout.
    fn cargo(&self, args: &[String]) -> Result<Step, String> {
        let logs = self.build_dir.join("logs");
        std::fs::create_dir_all(&logs)
            .map_err(|e| format!("cannot create {}: {e}", logs.display()))?;
        let stdout_path = logs.join("step-stdout.log");
        let stderr_path = logs.join("step-stderr.log");
        let stdout = std::fs::File::create(&stdout_path).map_err(|e| e.to_string())?;
        let stderr = std::fs::File::create(&stderr_path).map_err(|e| e.to_string())?;
        let mut child = std::process::Command::new("cargo")
            .args(args)
            .current_dir(&self.scratch)
            .env("CARGO_TARGET_DIR", &self.build_dir)
            .env("CARGO_PROFILE_RELEASE_INCREMENTAL", "true")
            .stdin(std::process::Stdio::null())
            .stdout(stdout)
            .stderr(stderr)
            .spawn()
            .map_err(|e| format!("cannot spawn cargo: {e}"))?;
        let started = Instant::now();
        let status = loop {
            if let Some(status) = child.try_wait().map_err(|e| e.to_string())? {
                break status;
            }
            if started.elapsed() > self.timeout {
                let _ = child.kill();
                let _ = child.wait();
                return Ok(Step::Timeout);
            }
            std::thread::sleep(Duration::from_millis(100));
        };
        if status.success() {
            return Ok(Step::Pass);
        }
        let stdout_text = std::fs::read_to_string(&stdout_path).unwrap_or_default();
        let stderr_text = std::fs::read_to_string(&stderr_path).unwrap_or_default();
        Ok(Step::Fail {
            detail: failure_detail(&stdout_text, &stderr_text),
        })
    }
}

/// Name the most specific killer visible in a failing step's output: the
/// first failed test, an explore counterexample's oracle codes, or the
/// first compiler error line.
fn failure_detail(stdout: &str, stderr: &str) -> String {
    for line in stdout.lines() {
        if let Some(rest) = line.strip_prefix("counterexample (") {
            if let Some(codes) = rest.split(')').next() {
                return codes.to_string();
            }
        }
    }
    let mut in_failures = false;
    for line in stdout.lines() {
        if line.trim() == "failures:" {
            in_failures = true;
            continue;
        }
        if in_failures {
            // Libtest prints the `failures:` header twice: first over the
            // captured-stdout blocks, then over the bare-name list. Only a
            // whitespace-free line is a test name; panic text never is.
            let name = line.trim();
            if !name.is_empty() && !name.starts_with("----") && !name.contains(' ') {
                return name.to_string();
            }
        }
    }
    for line in stderr.lines() {
        if line.starts_with("error") {
            return line.chars().take(100).collect();
        }
    }
    "nonzero exit".to_string()
}

/// Remove reproducer files the explore tier writes next to a scenario, so
/// later mutants' scenario-directory globs never see them.
fn scrub_counterexamples(scratch: &Path) {
    for dir in ["examples/scenarios", "examples/scenarios/invalid"] {
        let Ok(entries) = std::fs::read_dir(scratch.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            if entry
                .file_name()
                .to_string_lossy()
                .ends_with(".counterexample.toml")
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

/// (Re)build the scratch checkout: a fresh copy of the working tree minus
/// `.git` and `target`, so every run judges exactly the sources on disk.
fn prepare_scratch(root: &Path, scratch: &Path) -> Result<(), String> {
    if scratch.exists() {
        std::fs::remove_dir_all(scratch)
            .map_err(|e| format!("cannot clear {}: {e}", scratch.display()))?;
    }
    copy_tree(root, scratch).map_err(|e| format!("cannot populate scratch checkout: {e}"))
}

fn copy_tree(src: &Path, dst: &Path) -> Result<(), std::io::Error> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let name = entry.file_name();
        let name_str = name.to_string_lossy();
        if name_str == ".git" || name_str == "target" {
            continue;
        }
        let from = entry.path();
        let to = dst.join(&name);
        if from.is_dir() {
            copy_tree(&from, &to)?;
        } else {
            std::fs::copy(&from, &to)?;
        }
    }
    Ok(())
}

/// The `[[test]]` targets of the harness crate, in manifest order, read
/// from the manifest itself so the judge never drifts from the suite list.
fn integration_suites(root: &Path) -> Result<Vec<String>, String> {
    let manifest_path = root.join("crates/harness/Cargo.toml");
    let manifest = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let mut suites = Vec::new();
    let mut in_test = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_test = line == "[[test]]";
            continue;
        }
        if in_test {
            if let Some(rest) = line.strip_prefix("name = \"") {
                if let Some(name) = rest.strip_suffix('"') {
                    suites.push(name.to_string());
                }
            }
        }
    }
    if suites.is_empty() {
        return Err("no [[test]] targets found in crates/harness/Cargo.toml".to_string());
    }
    Ok(suites)
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

fn describe_outcome(outcome: &Outcome) -> String {
    match outcome {
        Outcome::Unviable => "unviable".to_string(),
        Outcome::Killed { tier, killer } => format!("killed ({tier}: {killer})"),
        Outcome::TimedOut { tier } => format!("timeout ({tier})"),
        Outcome::Survived => "SURVIVED".to_string(),
    }
}

#[allow(clippy::too_many_arguments)]
fn report(
    root: &Path,
    config: &Config,
    files: &BTreeSet<String>,
    enumerated: usize,
    results: &[(Mutant, Outcome, Duration)],
    allow: &[MutantAllowEntry],
    stale: &[&MutantAllowEntry],
) -> Result<ExitCode, String> {
    let allowed_key = |m: &Mutant| allow.iter().find(|e| e.key == m.key());
    let mut killed = 0usize;
    let mut timeout = 0usize;
    let mut unviable = 0usize;
    let mut survivors: Vec<&Mutant> = Vec::new();
    let mut killers: BTreeMap<String, usize> = BTreeMap::new();
    for (m, outcome, _) in results {
        match outcome {
            Outcome::Unviable => unviable += 1,
            Outcome::Killed { tier, killer } => {
                killed += 1;
                let bucket = match *tier {
                    "integration" => {
                        format!("integration:{}", killer.split(':').next().unwrap_or("?"))
                    }
                    "explore" => {
                        format!("explore:{}", killer.split(',').next().unwrap_or("?").trim())
                    }
                    t => t.to_string(),
                };
                *killers.entry(bucket).or_default() += 1;
            }
            Outcome::TimedOut { tier } => {
                timeout += 1;
                *killers.entry(format!("timeout:{tier}")).or_default() += 1;
            }
            Outcome::Survived => survivors.push(m),
        }
    }
    let viable = results.len() - unviable;
    let dead = killed + timeout;
    let ratio_permille = (dead * 1000).checked_div(viable).unwrap_or(0);

    // Human summary.
    println!();
    println!("mutation kill matrix ({} file(s) in scope):", files.len());
    for (bucket, count) in &killers {
        println!("  {bucket:<40} {count:>4} kill(s)");
    }
    println!(
        "  {total} mutant(s): {dead} killed ({killed} by suite, {timeout} by timeout), \
         {survived} survived, {unviable} unviable — kill ratio {whole}.{frac}% of {viable} viable",
        total = results.len(),
        survived = survivors.len(),
        whole = ratio_permille / 10,
        frac = ratio_permille % 10,
    );
    let mut unallowed = 0usize;
    if !survivors.is_empty() {
        println!();
        println!("survivors:");
        for m in &survivors {
            let justified = allowed_key(m);
            println!(
                "  {} {} [{}]",
                m.key(),
                m.description,
                justified.map_or("UNJUSTIFIED", |e| e.justification.as_str())
            );
            if justified.is_none() {
                unallowed += 1;
            }
            let source = std::fs::read_to_string(root.join(&m.file)).unwrap_or_default();
            for (idx, line) in source.lines().enumerate() {
                if idx + 2 >= m.line && idx < m.line + 2 {
                    let marker = if idx + 1 == m.line { '>' } else { ' ' };
                    println!("    {marker} {:>4} | {line}", idx + 1);
                }
            }
        }
        if unallowed > 0 {
            println!(
                "\n{unallowed} survivor(s) lack a mutants.allow justification: kill each with a \
                 test or add '<file>:<line>:<col> <M###>  # why it is equivalent' to \
                 crates/xtask/mutants.allow"
            );
        }
    }
    if !stale.is_empty() {
        println!();
        for e in stale {
            println!(
                "stale mutants.allow entry (mutant no longer survives): {}",
                e.key
            );
        }
    }

    write_json(
        config,
        files,
        enumerated,
        results,
        allow,
        &killers,
        ratio_permille,
    )?;
    println!("\nkill matrix written to {}", config.out.display());

    if unallowed > 0 || !stale.is_empty() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn write_json(
    config: &Config,
    files: &BTreeSet<String>,
    enumerated: usize,
    results: &[(Mutant, Outcome, Duration)],
    allow: &[MutantAllowEntry],
    killers: &BTreeMap<String, usize>,
    ratio_permille: usize,
) -> Result<(), String> {
    let mut unviable = 0usize;
    let mut killed = 0usize;
    let mut timeout = 0usize;
    let mut survived = 0usize;
    for (_, outcome, _) in results {
        match outcome {
            Outcome::Unviable => unviable += 1,
            Outcome::Killed { .. } => killed += 1,
            Outcome::TimedOut { .. } => timeout += 1,
            Outcome::Survived => survived += 1,
        }
    }
    let mut json = String::from("{\n  \"scope\": [");
    for (i, f) in files.iter().enumerate() {
        let _ = write!(
            json,
            "{}\"{}\"",
            if i > 0 { ", " } else { "" },
            json_escape(f)
        );
    }
    let _ = write!(
        json,
        "],\n  \"sample\": {},\n",
        match config.sample {
            Some(n) => format!(
                "{{\"requested\": {n}, \"seed\": {}, \"enumerated\": {enumerated}}}",
                config.seed
            ),
            None => "null".to_string(),
        }
    );
    let _ = writeln!(
        json,
        "  \"summary\": {{\"total\": {}, \"viable\": {}, \"killed\": {}, \"timeout_killed\": {}, \
         \"survived\": {}, \"unviable\": {}, \"kill_ratio_permille\": {}}},",
        results.len(),
        results.len() - unviable,
        killed,
        timeout,
        survived,
        unviable,
        ratio_permille
    );
    json.push_str("  \"killers\": {");
    for (i, (bucket, count)) in killers.iter().enumerate() {
        let _ = write!(
            json,
            "{}\"{}\": {count}",
            if i > 0 { ", " } else { "" },
            json_escape(bucket)
        );
    }
    json.push_str("},\n  \"mutants\": [\n");
    for (i, (m, outcome, _)) in results.iter().enumerate() {
        let (status, tier, killer) = match outcome {
            Outcome::Unviable => ("unviable", "", String::new()),
            Outcome::Killed { tier, killer } => ("killed", *tier, killer.clone()),
            Outcome::TimedOut { tier } => ("timeout", *tier, String::new()),
            Outcome::Survived => ("survived", "", String::new()),
        };
        let justified = allow.iter().find(|e| e.key == m.key());
        let _ = writeln!(
            json,
            "    {{\"id\": \"{}\", \"mutator\": \"{}\", \"description\": \"{}\", \
             \"outcome\": \"{status}\", \"tier\": \"{tier}\", \"killed_by\": \"{}\", \
             \"allowed\": {}}}{}",
            json_escape(&m.key()),
            m.mutator,
            json_escape(&m.description),
            json_escape(&killer),
            justified.is_some(),
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&config.out, json)
        .map_err(|e| format!("cannot write {}: {e}", config.out.display()))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(mutants: &[Mutant]) -> Vec<String> {
        mutants.iter().map(Mutant::key).collect()
    }

    #[test]
    fn operator_swaps_hit_spaced_binary_operators_only() {
        let src = "fn f(a: u64, b: u64) -> u64 {\n    if a < b && a + 1 > 2 {\n        return a - b;\n    }\n    a\n}\n";
        let mutants = enumerate_file("x.rs", src);
        let keys = ids(&mutants);
        assert!(keys.contains(&"x.rs:2:10 M103".to_string()), "{keys:?}"); // a < b
        assert!(keys.contains(&"x.rs:2:14 M107".to_string()), "{keys:?}"); // &&
        assert!(keys.contains(&"x.rs:2:19 M101".to_string()), "{keys:?}"); // a + 1
        assert!(keys.contains(&"x.rs:3:18 M102".to_string()), "{keys:?}"); // a - b
                                                                           // `-> u64 {` on line 1 must not be read as a minus swap...
        assert!(!keys
            .iter()
            .any(|k| k.starts_with("x.rs:1:") && k.ends_with("M102")));
        // ...but it is an early-return site.
        assert!(keys
            .iter()
            .any(|k| k.starts_with("x.rs:1:") && k.ends_with("M404")));
    }

    #[test]
    fn generics_shifts_and_compound_assignment_are_not_sites() {
        let src = "fn f(v: &mut Vec<u64>, x: u64) {\n    let y = x << 2;\n    let z = -1i64;\n    v[0] += y + (z as u64);\n}\n";
        let mutants = enumerate_file("x.rs", src);
        for m in &mutants {
            assert_eq!(
                (m.mutator, m.line),
                ("M101", 4),
                "unexpected site {} {}",
                m.key(),
                m.description
            );
        }
        assert_eq!(mutants.len(), 1);
    }

    #[test]
    fn string_literals_are_opaque_to_site_scanners() {
        let src =
            "fn f(a: u64, b: u64) -> bool {\n    println!(\"a < b && a - b\");\n    a == b\n}\n";
        let mutants = enumerate_file("x.rs", src);
        assert!(mutants.iter().all(|m| m.line != 2), "{:?}", ids(&mutants));
    }

    #[test]
    fn condition_negation_wraps_the_condition_and_skips_if_let() {
        let src = "fn f(a: u64) {\n    if a > 1 && a < 9 {\n        g();\n    }\n    if let Some(x) = h(a) {\n        g(x);\n    }\n}\n";
        let mutants = enumerate_file("x.rs", src);
        let neg: Vec<&Mutant> = mutants.iter().filter(|m| m.mutator == "M201").collect();
        assert_eq!(neg.len(), 1);
        assert_eq!(neg[0].line, 2);
        assert_eq!(
            neg[0].mutated_line.as_deref(),
            Some("    if !(a > 1 && a < 9) {")
        );
    }

    #[test]
    fn boundary_literals_bump_on_either_side_of_a_comparison() {
        let src = "fn f(n: usize) -> bool {\n    n < 10 || 0 == n\n}\n";
        let mutants = enumerate_file("x.rs", src);
        let bumps: Vec<&Mutant> = mutants.iter().filter(|m| m.mutator == "M301").collect();
        assert_eq!(bumps.len(), 2, "{:?}", ids(&mutants));
        assert_eq!(
            bumps[0].mutated_line.as_deref(),
            Some("    n < 11 || 0 == n")
        );
        assert_eq!(
            bumps[1].mutated_line.as_deref(),
            Some("    n < 10 || 1 == n")
        );
    }

    #[test]
    fn early_returns_require_the_line_to_end_in_the_return_type() {
        let src = "fn pick(xs: &[u64]) -> Option<u64> {\n    xs.first().copied()\n}\nfn all(xs: &[u64], f: impl Fn(u64) -> bool) {\n    let _ = xs.iter().all(|&x| f(x));\n}\n";
        let mutants = enumerate_file("x.rs", src);
        let early: Vec<&Mutant> = mutants
            .iter()
            .filter(|m| m.mutator.starts_with("M40"))
            .collect();
        assert_eq!(early.len(), 1, "{:?}", ids(&mutants));
        assert_eq!(early[0].mutator, "M403");
        assert_eq!(
            early[0].mutated_line.as_deref(),
            Some("fn pick(xs: &[u64]) -> Option<u64> { return None;")
        );
    }

    #[test]
    fn arm_deletion_takes_single_line_non_wildcard_arms() {
        let src = "fn f(x: u64) -> u64 {\n    match x {\n        0 => 1,\n        n if n > 5 => {\n            n\n        }\n        _ => 0,\n    }\n}\n";
        let mutants = enumerate_file("x.rs", src);
        let arms: Vec<&Mutant> = mutants.iter().filter(|m| m.mutator == "M501").collect();
        assert_eq!(arms.len(), 1, "{:?}", ids(&mutants));
        assert_eq!(arms[0].line, 3);
        assert!(arms[0].mutated_line.is_none());
    }

    #[test]
    fn cfg_test_items_are_never_mutated() {
        let src = "fn f(a: u64) -> bool {\n    a < 3\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        assert!(super::f(1) && 1 < 2);\n    }\n}\n";
        let mutants = enumerate_file("x.rs", src);
        assert!(!mutants.is_empty());
        assert!(mutants.iter().all(|m| m.line <= 3), "{:?}", ids(&mutants));
    }

    #[test]
    fn apply_and_delete_rewrite_exactly_one_line() {
        let src = "a\nb\nc\n";
        let swap = Mutant {
            mutator: "M101",
            file: "x.rs".into(),
            line: 2,
            col: 1,
            description: String::new(),
            mutated_line: Some("B".into()),
        };
        assert_eq!(apply_to_source(src, &swap), "a\nB\nc\n");
        let del = Mutant {
            mutated_line: None,
            ..swap
        };
        assert_eq!(apply_to_source(src, &del), "a\nc\n");
    }

    #[test]
    fn enumeration_is_deterministic_and_sorted() {
        let src = "fn f(a: u64, b: u64) -> u64 {\n    if a < b {\n        a + 1\n    } else {\n        b - 1\n    }\n}\n";
        let a = enumerate_file("x.rs", src);
        let b = enumerate_file("x.rs", src);
        assert_eq!(ids(&a), ids(&b));
        let mut sorted = ids(&a);
        sorted.sort();
        let mut actual = ids(&a);
        actual.sort();
        assert_eq!(actual, sorted);
    }

    #[test]
    fn sampling_is_seed_deterministic_and_order_preserving() {
        let src = "fn f(a: u64, b: u64) -> u64 {\n    if a < b {\n        a + 1\n    } else {\n        b - 1\n    }\n}\n";
        let mutants = enumerate_file("x.rs", src);
        assert!(mutants.len() > 3);
        let s1 = sample_mutants(mutants.clone(), 3, 7);
        let s2 = sample_mutants(mutants.clone(), 3, 7);
        let s3 = sample_mutants(mutants.clone(), 3, 8);
        assert_eq!(ids(&s1), ids(&s2));
        assert_ne!(ids(&s1), ids(&s3));
        // Picks stay in enumeration order.
        let all = ids(&mutants);
        let picked: Vec<usize> = ids(&s1)
            .iter()
            .map(|k| all.iter().position(|x| x == k).unwrap())
            .collect();
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mutants_allow_requires_a_justification() {
        let dir = std::env::temp_dir().join("xtask-mutants-allow-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mutants.allow");
        std::fs::write(
            &path,
            "# comment\ncrates/core/src/qos.rs:10:4 M301  # equivalent: saturating\n",
        )
        .unwrap();
        let entries = load_mutants_allow(&path).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key, "crates/core/src/qos.rs:10:4 M301");
        assert_eq!(entries[0].file, "crates/core/src/qos.rs");

        std::fs::write(&path, "crates/core/src/qos.rs:10:4 M301\n").unwrap();
        assert!(load_mutants_allow(&path).is_err());
        std::fs::write(&path, "crates/core/src/qos.rs:10:4 M999  # nope\n").unwrap();
        assert!(load_mutants_allow(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explore_adjacency_matches_engine_files_and_array_dir() {
        assert!(explore_adjacent("crates/core/src/background.rs"));
        assert!(explore_adjacent("crates/core/src/array/craid_array.rs"));
        assert!(!explore_adjacent("crates/core/src/report.rs"));
        assert!(!explore_adjacent("crates/cache/src/lru.rs"));
    }

    #[test]
    fn failure_detail_prefers_oracle_codes_then_test_names() {
        let explore = "counterexample (E404): path [2, 0, 1]\n";
        assert_eq!(failure_detail(explore, ""), "E404");
        let test = "\nfailures:\n    background::tests::pace_floor\n\ntest result: FAILED.\n";
        assert_eq!(failure_detail(test, ""), "background::tests::pace_floor");
        // Panic text in the captured-stdout block must not shadow the name.
        let with_stdout = "\nfailures:\n\n---- background::tests::pace_floor stdout ----\n\
             thread 'background::tests::pace_floor' panicked at src/background.rs:1:1:\n\
             assertion failed\n\nfailures:\n    background::tests::pace_floor\n";
        assert_eq!(
            failure_detail(with_stdout, ""),
            "background::tests::pace_floor"
        );
        assert_eq!(
            failure_detail("", "error[E0308]: mismatched types\n"),
            "error[E0308]: mismatched types"
        );
    }
}
