//! Pluggable observation of a running simulation.
//!
//! The replay engine in [`crate::sim`] drives a trace and an event schedule
//! against an array; everything that *watches* the replay — the metrics
//! trackers that build the [`SimulationReport`], progress printers, future
//! streaming sinks — is an [`Observer`]. Observers receive a hook per client
//! request and per applied [`ScheduledEvent`], plus start/finish hooks, so
//! new consumers can be added without touching the engine's run loop.
//!
//! The paper's measurement pipeline itself is implemented as an observer:
//! [`MetricsCollector`] owns the response-time summaries, quantile sketches,
//! load-balance / sequentiality / concurrency trackers, and assembles the
//! final [`SimulationReport`].

use craid_diskmodel::IoKind;
use craid_metrics::{
    concurrency::ConcurrencySummary, ConcurrencyTracker, LoadBalanceTracker, Quantiles,
    SequentialityTracker, ShardEvent, ShardRouter, StreamingSummary,
};
use craid_trace::{Trace, TraceRecord};

use crate::devices::DeviceIoEvent;

use crate::array::{ExpansionReport, RequestReport};
use crate::config::ArrayConfig;
use crate::report::{CraidStats, LoadBalanceSummary, ResponseSummary, SimulationReport};
use crate::scenario::ScheduledEvent;

/// Everything the engine observed while serving one client request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The slowest of the request's mapped sub-range responses, in
    /// milliseconds — the per-request response time the paper reports.
    pub worst_ms: f64,
    /// Per-mapped-sub-range completion reports (device events, cache hits,
    /// admissions, evictions).
    pub reports: Vec<RequestReport>,
}

impl RequestOutcome {
    /// Blocks of this request served from an existing cache-partition copy.
    pub fn cache_hit_blocks(&self) -> u64 {
        self.reports.iter().map(|r| r.cache_hit_blocks).sum()
    }
}

/// Hooks into the replay engine. All methods have empty defaults; implement
/// only what you need.
pub trait Observer {
    /// Called once before the first request, with the resolved
    /// configuration and the trace about to be replayed.
    fn on_start(&mut self, _config: &ArrayConfig, _trace: &Trace) {}

    /// Called after each client request completes.
    fn on_request(&mut self, _record: &TraceRecord, _outcome: &RequestOutcome) {}

    /// Called after each scheduled event is applied. `expansion` carries the
    /// upgrade report when the event was an [`ScheduledEvent::Expand`].
    fn on_event(&mut self, _event: &ScheduledEvent, _expansion: Option<&ExpansionReport>) {}

    /// Called when the QoS controller makes a *notable* throttle change —
    /// a multiplicative backoff, or the throttle reaching its maintenance
    /// floor or regaining the ceiling. `scale` is the new maintenance
    /// throttle in `[floor, 1.0]`. Never called on a run without a `[qos]`
    /// spec.
    fn on_throttle(&mut self, _now: craid_simkit::SimTime, _scale: f64) {}

    /// Called when a deferred expansion — one that was queued behind an
    /// in-flight archive restripe — activates: its layout commits and its
    /// own paced migration starts. `at` is the activation instant (the
    /// pump that drained the blocking restripe, or — under the
    /// wait-for-repair policy — the one that completed the rebuild).
    fn on_deferred_activation(&mut self, _at: craid_simkit::SimTime, _added_disks: usize) {}

    /// Called for each request-lifecycle trace span the replay loop emits
    /// during a *traced* run (a tracer installed via
    /// [`craid_obs::with_tracer`] — see `Scenario::run_traced`). Never
    /// called on an untraced run, so implementations cannot perturb the
    /// tracing-off path.
    fn on_span(&mut self, _event: &craid_obs::TraceEvent) {}

    /// Called once with the finished report.
    fn on_finish(&mut self, _report: &SimulationReport) {}
}

/// An observer that ignores everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Fans hooks out to several owned observers, in order.
#[derive(Default)]
pub struct MultiObserver {
    observers: Vec<Box<dyn Observer>>,
}

impl MultiObserver {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        MultiObserver::default()
    }

    /// Adds an observer to the fan-out.
    pub fn push(&mut self, observer: Box<dyn Observer>) {
        self.observers.push(observer);
    }

    /// Number of attached observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// True if no observers are attached.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl Observer for MultiObserver {
    fn on_start(&mut self, config: &ArrayConfig, trace: &Trace) {
        for o in &mut self.observers {
            o.on_start(config, trace);
        }
    }

    fn on_request(&mut self, record: &TraceRecord, outcome: &RequestOutcome) {
        for o in &mut self.observers {
            o.on_request(record, outcome);
        }
    }

    fn on_event(&mut self, event: &ScheduledEvent, expansion: Option<&ExpansionReport>) {
        for o in &mut self.observers {
            o.on_event(event, expansion);
        }
    }

    fn on_throttle(&mut self, now: craid_simkit::SimTime, scale: f64) {
        for o in &mut self.observers {
            o.on_throttle(now, scale);
        }
    }

    fn on_deferred_activation(&mut self, at: craid_simkit::SimTime, added_disks: usize) {
        for o in &mut self.observers {
            o.on_deferred_activation(at, added_disks);
        }
    }

    fn on_span(&mut self, event: &craid_obs::TraceEvent) {
        for o in &mut self.observers {
            o.on_span(event);
        }
    }

    fn on_finish(&mut self, report: &SimulationReport) {
        for o in &mut self.observers {
            o.on_finish(report);
        }
    }
}

/// Prints one progress line to stderr every `every` requests, plus a line
/// per applied event. The built-in observer behind
/// [`crate::scenario::ObserverSpec::Progress`].
#[derive(Debug, Clone)]
pub struct ProgressObserver {
    every: u64,
    seen: u64,
    label: String,
}

impl ProgressObserver {
    /// Reports every `every` requests (0 is treated as "only events").
    pub fn new(label: impl Into<String>, every: u64) -> Self {
        ProgressObserver {
            every,
            seen: 0,
            label: label.into(),
        }
    }
}

impl Observer for ProgressObserver {
    fn on_request(&mut self, record: &TraceRecord, _outcome: &RequestOutcome) {
        self.seen += 1;
        if self.every > 0 && self.seen.is_multiple_of(self.every) {
            eprintln!(
                "[{}] {} requests replayed (t = {:.1}s)",
                self.label,
                self.seen,
                record.time.as_secs()
            );
        }
    }

    fn on_event(&mut self, event: &ScheduledEvent, expansion: Option<&ExpansionReport>) {
        match expansion {
            Some(report) => eprintln!(
                "[{}] t = {:.1}s: {} (migrated {} blocks, wrote back {})",
                self.label,
                event.at().as_secs(),
                event.describe(),
                report.migrated_blocks,
                report.writeback_blocks
            ),
            None => eprintln!(
                "[{}] t = {:.1}s: {}",
                self.label,
                event.at().as_secs(),
                event.describe()
            ),
        }
    }

    fn on_throttle(&mut self, now: craid_simkit::SimTime, scale: f64) {
        eprintln!(
            "[{}] t = {:.1}s: maintenance throttled to {:.0}% of configured rate",
            self.label,
            now.as_secs(),
            scale * 100.0
        );
    }

    fn on_deferred_activation(&mut self, at: craid_simkit::SimTime, added_disks: usize) {
        eprintln!(
            "[{}] t = {:.1}s: deferred expansion activated (+{} disks)",
            self.label,
            at.as_secs(),
            added_disks
        );
    }
}

/// The paper's measurement pipeline as an observer: response-time summaries
/// and quantiles per I/O kind, per-second load balance, sequentiality, and
/// device concurrency. [`MetricsCollector::finish`] assembles the
/// [`SimulationReport`].
pub struct MetricsCollector {
    read_summary: StreamingSummary,
    write_summary: StreamingSummary,
    read_quantiles: Quantiles,
    write_quantiles: Quantiles,
    device_metrics: DeviceMetrics,
    requests: u64,
    /// Once closed (the last trace record was served), trailing events no
    /// longer contribute device traffic to the measurement window.
    closed: bool,
}

/// Where device-level events (the per-second load / sequentiality /
/// concurrency pipeline) are processed: inline on the replay thread, or
/// routed to per-parity-group shard workers whose observations merge back
/// bit-for-bit.
enum DeviceMetrics {
    Inline {
        load: LoadBalanceTracker,
        seq: SequentialityTracker,
        conc: ConcurrencyTracker,
    },
    Sharded(ShardRouter),
}

impl DeviceMetrics {
    fn record(&mut self, ev: &DeviceIoEvent) {
        match self {
            DeviceMetrics::Inline { load, seq, conc } => {
                load.record(ev.submitted, ev.device, ev.bytes());
                seq.record(ev.submitted, ev.device, ev.start_block, ev.blocks);
                conc.record(ev.submitted, ev.device, ev.queue_depth);
            }
            DeviceMetrics::Sharded(router) => router.record(ShardEvent {
                at: ev.submitted,
                device: ev.device,
                start_block: ev.start_block,
                blocks: ev.blocks,
                queue_depth: ev.queue_depth,
                bytes: ev.bytes(),
            }),
        }
    }

    /// Folds the backend into the sequential trackers' outputs:
    /// `(sequential_fraction, seq samples, overall cv, cv samples, ioq,
    /// cdev)`.
    fn finish(
        self,
    ) -> (
        f64,
        Quantiles,
        f64,
        Quantiles,
        ConcurrencySummary,
        ConcurrencySummary,
    ) {
        match self {
            DeviceMetrics::Inline { load, seq, conc } => {
                let fraction = seq.overall_sequential_fraction();
                let seq_samples = seq.finish();
                let overall_cv = load.overall_cv();
                let cv_samples = load.finish();
                let (ioq, cdev) = conc.finish();
                (fraction, seq_samples, overall_cv, cv_samples, ioq, cdev)
            }
            DeviceMetrics::Sharded(router) => {
                let mut merged = router.finish();
                let fraction = merged.overall_sequential_fraction();
                let overall_cv = merged.overall_cv();
                let ioq = ConcurrencySummary::from_quantiles(&mut merged.queue_depths);
                let cdev = ConcurrencySummary::from_quantiles(&mut merged.concurrent_devices);
                (
                    fraction,
                    merged.seq_samples,
                    overall_cv,
                    merged.cv_samples,
                    ioq,
                    cdev,
                )
            }
        }
    }
}

impl MetricsCollector {
    /// Creates a collector for an array that will grow to `device_slots`
    /// devices over the run (initial devices plus every scheduled addition).
    pub fn new(device_slots: usize) -> Self {
        Self::with_backend(DeviceMetrics::Inline {
            load: LoadBalanceTracker::new(device_slots),
            seq: SequentialityTracker::new(),
            conc: ConcurrencyTracker::new(),
        })
    }

    /// Creates a collector whose device-event pipeline is sharded across
    /// `threads` worker threads, one shard per `parity_group`-sized device
    /// group. Reports are bit-identical to the inline collector's.
    pub fn new_sharded(device_slots: usize, parity_group: usize, threads: usize) -> Self {
        Self::with_backend(DeviceMetrics::Sharded(ShardRouter::new(
            device_slots,
            parity_group,
            threads,
        )))
    }

    fn with_backend(device_metrics: DeviceMetrics) -> Self {
        MetricsCollector {
            read_summary: StreamingSummary::new(),
            write_summary: StreamingSummary::new(),
            read_quantiles: Quantiles::new(),
            write_quantiles: Quantiles::new(),
            device_metrics,
            requests: 0,
            closed: false,
        }
    }

    /// Ends the measurement window: events applied after the last request
    /// still execute but no longer count into the trackers (matching the
    /// paper's methodology, which measures while the workload runs).
    pub fn close(&mut self) {
        self.closed = true;
    }

    fn record_device_events(&mut self, reports: &[RequestReport]) {
        for report in reports {
            for ev in &report.events {
                self.device_metrics.record(ev);
            }
        }
    }

    /// Consumes the trackers and builds the report. `craid` carries the
    /// array's cache-partition statistics (None for baselines).
    pub fn finish(
        mut self,
        strategy: &str,
        workload: &str,
        craid: Option<CraidStats>,
        device_bytes: Vec<u64>,
    ) -> SimulationReport {
        let (sequential_fraction, mut seq_samples, overall_cv, mut cv_samples, ioq, cdev) =
            self.device_metrics.finish();

        SimulationReport {
            strategy: strategy.to_string(),
            workload: workload.to_string(),
            // The driver fills these in from the array's fault and
            // migration counters after the trackers are consumed.
            fault: crate::report::FaultStats::default(),
            migration: crate::report::MigrationStats::default(),
            qos: crate::report::QosStats::default(),
            background_drain_secs: 0.0,
            requests: self.requests,
            read: summarize_response(&self.read_summary, &mut self.read_quantiles),
            write: summarize_response(&self.write_summary, &mut self.write_quantiles),
            sequentiality_cdf: seq_samples.cdf_points(20),
            sequential_fraction,
            load_balance: LoadBalanceSummary {
                cv_cdf: cv_samples.cdf_points(20),
                mean_cv: cv_samples.mean().unwrap_or(0.0),
                p95_cv: cv_samples.quantile(0.95).unwrap_or(0.0),
                overall_cv,
            },
            ioq,
            cdev,
            craid,
            device_bytes,
            obs: None,
        }
    }
}

impl Observer for MetricsCollector {
    fn on_request(&mut self, record: &TraceRecord, outcome: &RequestOutcome) {
        self.requests += 1;
        self.record_device_events(&outcome.reports);
        match record.kind {
            IoKind::Read => {
                self.read_summary.record(outcome.worst_ms);
                self.read_quantiles.record(outcome.worst_ms);
            }
            IoKind::Write => {
                self.write_summary.record(outcome.worst_ms);
                self.write_quantiles.record(outcome.worst_ms);
            }
        }
    }

    fn on_event(&mut self, _event: &ScheduledEvent, expansion: Option<&ExpansionReport>) {
        if self.closed {
            return;
        }
        if let Some(report) = expansion {
            for ev in &report.events {
                self.device_metrics.record(ev);
            }
        }
    }
}

fn summarize_response(summary: &StreamingSummary, quantiles: &mut Quantiles) -> ResponseSummary {
    ResponseSummary {
        count: summary.count(),
        mean_ms: summary.mean(),
        ci95_ms: summary.ci95_half_width(),
        p50_ms: quantiles.quantile(0.5).unwrap_or(0.0),
        p95_ms: quantiles.quantile(0.95).unwrap_or(0.0),
        p99_ms: quantiles.quantile(0.99).unwrap_or(0.0),
        max_ms: quantiles.max().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craid_simkit::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct Counting {
        requests: u64,
        events: u64,
        throttles: u64,
        activations: u64,
        spans: u64,
        finished: bool,
    }

    struct Shared(Rc<RefCell<Counting>>);

    impl Observer for Shared {
        fn on_request(&mut self, _r: &TraceRecord, _o: &RequestOutcome) {
            self.0.borrow_mut().requests += 1;
        }
        fn on_event(&mut self, _e: &ScheduledEvent, _x: Option<&ExpansionReport>) {
            self.0.borrow_mut().events += 1;
        }
        fn on_throttle(&mut self, _now: craid_simkit::SimTime, _scale: f64) {
            self.0.borrow_mut().throttles += 1;
        }
        fn on_deferred_activation(&mut self, _at: craid_simkit::SimTime, _added: usize) {
            self.0.borrow_mut().activations += 1;
        }
        fn on_span(&mut self, _event: &craid_obs::TraceEvent) {
            self.0.borrow_mut().spans += 1;
        }
        fn on_finish(&mut self, _r: &SimulationReport) {
            self.0.borrow_mut().finished = true;
        }
    }

    #[test]
    fn multi_observer_fans_out() {
        let a = Rc::new(RefCell::new(Counting::default()));
        let b = Rc::new(RefCell::new(Counting::default()));
        let mut multi = MultiObserver::new();
        multi.push(Box::new(Shared(a.clone())));
        multi.push(Box::new(Shared(b.clone())));
        assert_eq!(multi.len(), 2);

        let record = TraceRecord::new(SimTime::ZERO, IoKind::Read, 0, 8);
        let outcome = RequestOutcome {
            worst_ms: 1.0,
            reports: Vec::new(),
        };
        multi.on_request(&record, &outcome);
        let event = ScheduledEvent::expand(SimTime::ZERO, 2);
        multi.on_event(&event, None);
        multi.on_throttle(SimTime::from_secs(1.0), 0.5);
        multi.on_deferred_activation(SimTime::from_secs(2.0), 4);
        multi.on_span(&craid_obs::TraceEvent::instant(
            craid_obs::SpanCategory::Request,
            "read",
            SimTime::ZERO,
        ));
        multi.on_finish(&SimulationReport::default());

        for c in [a, b] {
            let c = c.borrow();
            assert_eq!((c.requests, c.events), (1, 1));
            assert_eq!((c.throttles, c.activations), (1, 1));
            assert_eq!(c.spans, 1);
            assert!(c.finished);
        }
    }

    #[test]
    fn metrics_collector_counts_requests_and_closes() {
        let mut m = MetricsCollector::new(4);
        let record = TraceRecord::new(SimTime::ZERO, IoKind::Write, 0, 8);
        let outcome = RequestOutcome {
            worst_ms: 2.5,
            reports: Vec::new(),
        };
        m.on_request(&record, &outcome);
        m.close();
        let report = m.finish("RAID-5", "wdev", None, vec![0; 4]);
        assert_eq!(report.requests, 1);
        assert_eq!(report.write.count, 1);
        assert_eq!(report.write.mean_ms, 2.5);
        assert_eq!(report.read.count, 0);
        assert_eq!(report.strategy, "RAID-5");
    }
}
