//! Scheduler decision-point hooks for the small-scope model checker.
//!
//! The replay loop and the background engine are deterministic, but several
//! of their tie-breaks are *policies*, not laws: equal-timestamp events
//! apply in declaration order, the fair-share leftover refill starts at the
//! queue head, a poll issues its whole allocation in one batch, the QoS
//! controller evaluates ahead of the pump, and an eligible deferred
//! expansion activates on the very pump that unblocks it. A real system
//! racing these decisions could take any of the alternatives, so the
//! invariants the simulator leans on must hold across *all* of them.
//!
//! This module is the seam that makes those alternatives explorable. Each
//! decision site calls `choose` with a [`DecisionPoint`] and an arity;
//! with no chooser installed (the production path, [`NoopChooser`]
//! semantics) the call returns `0` and every site is written so that branch
//! `0` reproduces the pinned byte-identical behaviour. The model checker
//! ([`crate::analyze::explore`]) installs a recording chooser via
//! [`with_chooser`] and drives the run down every reachable branch,
//! while the sites additionally publish [`Observation`]s — poll budgets,
//! throttle retargets, migration-map consumptions — that the
//! [`InvariantOracle`](crate::analyze::oracle::InvariantOracle) library
//! checks after each run.
//!
//! The hooks are thread-local: a chooser installed by the model checker on
//! its own thread never leaks into parallel [`Campaign`](crate::Campaign)
//! workers, and the default path costs one thread-local flag test per site.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::background::TaskKind;

/// A nondeterministic decision site the model checker can steer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecisionPoint {
    /// Which of the remaining equal-timestamp events applies next.
    EventOrder,
    /// Which hungry task the work-conserving leftover refill starts at.
    FairShareLeftover,
    /// Whether a poll places the batch boundary early (issues only half of
    /// the task's allocation, deferring the rest to the next poll).
    BatchBoundary,
    /// Whether the background pump runs ahead of the QoS control decision.
    ThrottlePumpOrder,
    /// Whether an eligible deferred activation holds for one more pump.
    ActivationTiming,
}

impl DecisionPoint {
    /// Short stable label used when rendering counterexample paths.
    pub fn label(self) -> &'static str {
        match self {
            DecisionPoint::EventOrder => "event-order",
            DecisionPoint::FairShareLeftover => "leftover-start",
            DecisionPoint::BatchBoundary => "batch-boundary",
            DecisionPoint::ThrottlePumpOrder => "pump-vs-throttle",
            DecisionPoint::ActivationTiming => "activation-hold",
        }
    }
}

impl fmt::Display for DecisionPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One per-task lane of a [`Observation::Poll`]: what the task's pace
/// demanded and what the fair-share split granted it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollLane {
    /// The task's kind (the fair shares are keyed by it).
    pub kind: TaskKind,
    /// Blocks the task's pace demanded this poll.
    pub want: u64,
    /// Blocks the split granted it.
    pub granted: u64,
}

/// A checkable fact a decision site publishes while a chooser is installed.
///
/// Observations are the evidence stream the
/// [`InvariantOracle`](crate::analyze::oracle::InvariantOracle) library
/// judges; on the production path (no chooser) none are built.
#[derive(Debug, Clone, PartialEq)]
pub enum Observation {
    /// One engine poll's budget arithmetic: the throttle-scaled cap, the
    /// combined demand, and every live task's want/granted pair.
    Poll {
        /// The poll's combined issue budget.
        cap: u64,
        /// Total blocks demanded across live tasks.
        total_due: u64,
        /// Per-task demand and grant.
        lanes: Vec<PollLane>,
    },
    /// A throttle retarget as the engine accepted it.
    Throttle {
        /// The clamped scale now in effect.
        scale: f64,
        /// The attached floor.
        floor: f64,
    },
    /// A move set was enqueued on the background engine (the "enqueued"
    /// side of the block-conservation ledger).
    MoveSetEnqueued {
        /// The task class the work was enqueued under.
        kind: TaskKind,
        /// Blocks of work enqueued.
        blocks: u64,
    },
    /// A migration task consumed a pending-map entry.
    MigrationApply {
        /// The archive block that was consumed.
        block: u64,
        /// The generation the map entry belonged to.
        entry_generation: u64,
        /// The generation of the task that consumed it.
        task_generation: u64,
    },
    /// A block was found both pending migration and resident in the cache
    /// partition at a pump boundary.
    Colocated {
        /// The offending archive block.
        block: u64,
    },
    /// The end-of-trace drain gave up after exceeding its pump bound.
    DrainAborted {
        /// Pumps executed before bailing.
        pumps: u64,
    },
}

/// Maximum end-of-trace drain pumps the model checker tolerates before the
/// drain is declared non-terminating (the production path has no bound —
/// its pacing arithmetic guarantees termination).
pub const DRAIN_PUMP_BOUND: u64 = 20_000;

/// A policy for resolving decision points: given a site and its arity,
/// pick a branch in `0..arity`. Branch `0` is always the production
/// behaviour.
///
/// ```
/// use craid::choice::{Chooser, DecisionPoint, NoopChooser};
///
/// let mut noop = NoopChooser;
/// assert_eq!(noop.choose(DecisionPoint::EventOrder, 3), 0);
/// ```
pub trait Chooser {
    /// Picks a branch in `0..arity` for this decision site.
    fn choose(&mut self, point: DecisionPoint, arity: usize) -> usize;

    /// Receives a published [`Observation`]. Default: ignored.
    fn observe(&mut self, observation: Observation) {
        let _ = observation;
    }

    /// Notes that a site pruned `skipped` equivalent alternatives
    /// (sleep-set reduction). Default: ignored.
    fn prune(&mut self, point: DecisionPoint, skipped: usize) {
        let _ = (point, skipped);
    }
}

/// The production policy: always branch `0`. Installing it is equivalent to
/// installing nothing — every site reproduces the pinned behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopChooser;

impl Chooser for NoopChooser {
    fn choose(&mut self, _point: DecisionPoint, _arity: usize) -> usize {
        0
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Box<dyn Chooser>>> = const { RefCell::new(None) };
    static INSTALLED: Cell<bool> = const { Cell::new(false) };
}

/// True while a chooser is installed on this thread. Sites use it to skip
/// building observations on the production path.
pub(crate) fn active() -> bool {
    INSTALLED.get()
}

/// Resolves a decision site: branch `0` with no chooser installed or a
/// degenerate arity, the installed chooser's pick (clamped into range)
/// otherwise.
pub(crate) fn choose(point: DecisionPoint, arity: usize) -> usize {
    if arity <= 1 || !INSTALLED.get() {
        return 0;
    }
    ACTIVE.with(|slot| match slot.borrow_mut().as_mut() {
        Some(chooser) => chooser.choose(point, arity).min(arity - 1),
        None => 0,
    })
}

/// Publishes an observation to the installed chooser, building it lazily so
/// the production path pays nothing beyond the flag test.
pub(crate) fn observe(build: impl FnOnce() -> Observation) {
    if !INSTALLED.get() {
        return;
    }
    ACTIVE.with(|slot| {
        if let Some(chooser) = slot.borrow_mut().as_mut() {
            chooser.observe(build());
        }
    });
}

/// Notes a sleep-set style reduction at a site (alternatives provably
/// equivalent to branch `0` were not offered).
pub(crate) fn prune(point: DecisionPoint, skipped: usize) {
    if skipped == 0 || !INSTALLED.get() {
        return;
    }
    ACTIVE.with(|slot| {
        if let Some(chooser) = slot.borrow_mut().as_mut() {
            chooser.prune(point, skipped);
        }
    });
}

/// Clears the installed chooser even if the guarded closure panics (the
/// model checker treats a panicking branch as a reportable violation, so
/// the thread outlives it).
struct InstallGuard;

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ACTIVE.with(|slot| *slot.borrow_mut() = None);
        INSTALLED.set(false);
    }
}

/// Runs `body` with `chooser` installed as this thread's decision policy,
/// then uninstalls it. The chooser is shared — keep a clone of the `Rc` to
/// inspect what it recorded afterwards.
///
/// # Panics
///
/// Panics if a chooser is already installed on this thread (nested
/// explorations are not supported).
pub fn with_chooser<C: Chooser + 'static, R>(
    chooser: Rc<RefCell<C>>,
    body: impl FnOnce() -> R,
) -> R {
    assert!(
        !INSTALLED.get(),
        "a decision chooser is already installed on this thread"
    );
    struct Shared<C>(Rc<RefCell<C>>);
    impl<C: Chooser> Chooser for Shared<C> {
        fn choose(&mut self, point: DecisionPoint, arity: usize) -> usize {
            self.0.borrow_mut().choose(point, arity)
        }
        fn observe(&mut self, observation: Observation) {
            self.0.borrow_mut().observe(observation);
        }
        fn prune(&mut self, point: DecisionPoint, skipped: usize) {
            self.0.borrow_mut().prune(point, skipped);
        }
    }
    ACTIVE.with(|slot| *slot.borrow_mut() = Some(Box::new(Shared(chooser))));
    INSTALLED.set(true);
    let _guard = InstallGuard;
    body()
}

/// Test-only fault hooks: switches that resurrect fixed bugs so the model
/// checker's detection power can be pinned by regression tests. Compiled
/// out of release and non-test builds entirely.
#[cfg(test)]
pub(crate) mod faults {
    use std::cell::Cell;

    thread_local! {
        static STALE_GENERATION_GUARD_DISABLED: Cell<bool> = const { Cell::new(false) };
    }

    /// True while the stale-generation guard of
    /// `CraidArray::apply_migration_batch` is disabled on this thread.
    pub(crate) fn stale_generation_guard_disabled() -> bool {
        STALE_GENERATION_GUARD_DISABLED.with(Cell::get)
    }

    /// Runs `body` with PR 4's stale-generation block-collision bug
    /// re-opened: a migration task may consume pending-map entries of any
    /// generation, not just its own.
    pub(crate) fn with_stale_generation_guard_disabled<R>(body: impl FnOnce() -> R) -> R {
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                STALE_GENERATION_GUARD_DISABLED.with(|f| f.set(false));
            }
        }
        STALE_GENERATION_GUARD_DISABLED.with(|f| f.set(true));
        let _reset = Reset;
        body()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        calls: Vec<(DecisionPoint, usize)>,
        observations: Vec<Observation>,
        pruned: usize,
    }

    impl Chooser for Recorder {
        fn choose(&mut self, point: DecisionPoint, arity: usize) -> usize {
            self.calls.push((point, arity));
            arity - 1
        }
        fn observe(&mut self, observation: Observation) {
            self.observations.push(observation);
        }
        fn prune(&mut self, _point: DecisionPoint, skipped: usize) {
            self.pruned += skipped;
        }
    }

    #[test]
    fn bare_thread_resolves_to_branch_zero() {
        assert!(!active());
        assert_eq!(choose(DecisionPoint::EventOrder, 5), 0);
        // Observations are not built without a chooser.
        observe(|| unreachable!("no chooser installed"));
        prune(DecisionPoint::EventOrder, 3);
    }

    #[test]
    fn installed_chooser_steers_and_records() {
        let recorder = Rc::new(RefCell::new(Recorder::default()));
        with_chooser(recorder.clone(), || {
            assert!(active());
            assert_eq!(choose(DecisionPoint::BatchBoundary, 2), 1);
            // Degenerate arity never reaches the chooser.
            assert_eq!(choose(DecisionPoint::BatchBoundary, 1), 0);
            observe(|| Observation::Colocated { block: 7 });
            prune(DecisionPoint::EventOrder, 5);
        });
        assert!(!active());
        let recorder = recorder.borrow();
        assert_eq!(recorder.calls, vec![(DecisionPoint::BatchBoundary, 2)]);
        assert_eq!(
            recorder.observations,
            vec![Observation::Colocated { block: 7 }]
        );
        assert_eq!(recorder.pruned, 5);
        // Uninstalled again: back to branch zero.
        assert_eq!(choose(DecisionPoint::BatchBoundary, 2), 0);
    }

    #[test]
    fn out_of_range_picks_are_clamped() {
        struct Wild;
        impl Chooser for Wild {
            fn choose(&mut self, _point: DecisionPoint, _arity: usize) -> usize {
                usize::MAX
            }
        }
        let wild = Rc::new(RefCell::new(Wild));
        with_chooser(wild, || {
            assert_eq!(choose(DecisionPoint::EventOrder, 3), 2);
        });
    }

    #[test]
    fn guard_uninstalls_on_panic() {
        let recorder = Rc::new(RefCell::new(Recorder::default()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_chooser(recorder, || panic!("branch blew up"));
        }));
        assert!(result.is_err());
        assert!(!active(), "a panicking branch must not leak the chooser");
    }
}
