//! Symbolic interpretation of a [`ScheduledEvent`] timeline.
//!
//! The schedule is replayed abstractly — no devices, no I/O, no clock —
//! over per-disk state machines and the expansion/activation rules the
//! engine enforces at run time. Time-unknown outcomes (how far a paced
//! rebuild or restripe has progressed) are treated **optimistically**:
//! a finding is an error only when it is provable for every possible
//! pacing, and a warning when some pacing makes the schedule misbehave.
//! That asymmetry is what lets every shipped drill analyse clean while
//! impossible schedules are still rejected with stable codes.
//!
//! Symbolic per-disk states:
//!
//! * `Healthy` — definitely present and clean;
//! * `Failed` — a `disk-failure` applied and no repair has;
//! * `Rebuilding` — a repair applied; completion time is unknown, so
//!   later checks assume the rebuild may already have finished.
//!
//! Expansion generations are tracked as *committed* disks (definitely
//! installed) plus *pending* disks from deferred expansions (queued
//! behind an in-flight archive restripe; installed at an unknown later
//! time). A deferred expansion is *provably* deferred when it shares
//! its timestamp with the restripe that blocks it — nothing drains in
//! zero simulated time — which is the anchor for the provably-stuck
//! `wait-for-repair` finding ([`codes::UNREACHABLE_ACTIVATION`]).

use craid_simkit::SimTime;
use craid_trace::SyntheticWorkload;

use crate::analyze::{codes, Diagnostic};
use crate::config::{ActivationPolicy, ArrayConfig};
use crate::scenario::ScheduledEvent;

/// Symbolic state of one mechanical disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SymDisk {
    Healthy,
    Failed,
    Rebuilding,
}

/// One expansion the symbolic replay decided is deferred.
#[derive(Debug, Clone, Copy)]
struct DeferredExpansion {
    index: usize,
    at: SimTime,
    /// True when the blocking restripe provably cannot have drained
    /// (it started at this very timestamp).
    provable: bool,
}

/// Relative slack applied to the estimated replay horizon before
/// flagging an event as beyond it: arrival times are stochastic, so the
/// statically-computed duration is an expectation, not a bound.
const HORIZON_SLACK: f64 = 0.10;

/// Abstractly replays `events` against `config`'s rules and returns
/// every finding. `base_duration_secs` is the statically-scaled replay
/// duration of the scenario's workload, when known — it enables the
/// beyond-replay reach check ([`codes::EVENT_BEYOND_REPLAY`]).
pub fn check_schedule(
    config: &ArrayConfig,
    events: &[ScheduledEvent],
    base_duration_secs: Option<f64>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Mirror the engine: stable sort by time, equal times keep
    // declaration order. Original indices anchor diagnostic paths.
    let mut schedule: Vec<(usize, &ScheduledEvent)> = events.iter().enumerate().collect();
    schedule.sort_by_key(|(_, e)| e.at());

    // The replay horizon: the base workload's scaled duration, rewound
    // and extended by each trace-swapping phase (the composite trace
    // truncates at the swap and continues with the new segment).
    let horizon = base_duration_secs.map(|base| {
        let mut end = base;
        for (_, event) in &schedule {
            if let ScheduledEvent::WorkloadPhase {
                at,
                workload: Some(source),
                ..
            } = event
            {
                if source.requests > 0 {
                    end = at.as_secs()
                        + SyntheticWorkload::paper_scaled_to(source.id, source.requests)
                            .scaled_duration_secs();
                }
            }
        }
        end
    });

    let paced = !config.instant_migration();
    let aggregated = config.strategy.archive_is_aggregated();

    let mut disks: Vec<SymDisk> = vec![SymDisk::Healthy; config.disks];
    // Failure times of disks currently in `Failed`, for the activation
    // analysis at the end ([index], set on failure, cleared on repair).
    let mut failed_at: Vec<(usize, SimTime)> = Vec::new();
    // Disks added by deferred expansions: possibly installed, possibly
    // still queued. Index range [disks.len(), disks.len() + pending).
    let mut pending_disks: usize = 0;
    // Indices in the pending range that a (possibly-applied) failure
    // targeted; repairs of them are unprovable either way.
    let mut maybe_failed: Vec<usize> = Vec::new();
    // Start time of the most recent committed archive restripe.
    let mut restripe_since: Option<SimTime> = None;
    let mut deferred: Vec<DeferredExpansion> = Vec::new();

    for (position, &(index, event)) in schedule.iter().enumerate() {
        let at = event.at();
        let path = |field: &str| {
            if field.is_empty() {
                format!("events[{index}]")
            } else {
                format!("events[{index}].{field}")
            }
        };

        // Exact duplicates at the same timestamp. Failures/repairs are
        // judged by the state machine below; expansions legitimately
        // repeat (each adds another generation); switches and phases
        // are almost certainly author mistakes.
        if matches!(
            event,
            ScheduledEvent::PolicySwitch { .. } | ScheduledEvent::WorkloadPhase { .. }
        ) && schedule[..position]
            .iter()
            .any(|&(_, prior)| prior.at() == at && prior == event)
        {
            out.push(
                Diagnostic::warning(
                    codes::DUPLICATE_EVENT,
                    path(""),
                    format!(
                        "duplicate event at t = {}s: {}",
                        at.as_secs(),
                        event.describe()
                    ),
                )
                .with_help(
                    "a duplicated trace-swapping phase splices its records in twice, \
                     double-counting the workload",
                ),
            );
        }

        match event {
            ScheduledEvent::Expand { added_disks, .. } => {
                let added = *added_disks;
                if added == 0 {
                    out.push(
                        Diagnostic::error(
                            codes::EXPAND_ADDS_NOTHING,
                            path("added_disks"),
                            format!("expansion at t = {}s adds no disks", at.as_secs()),
                        )
                        .with_help("the engine rejects shrink/no-op expansions; remove the event"),
                    );
                    continue;
                }
                if let Some(&(disk, failed)) = failed_at.first() {
                    out.push(
                        Diagnostic::error(
                            codes::EXPAND_ON_FAILED_ARRAY,
                            path(""),
                            format!(
                                "expansion at t = {}s while disk {disk} is failed \
                                 (since t = {}s, never repaired before the expansion)",
                                at.as_secs(),
                                failed.as_secs()
                            ),
                        )
                        .with_help("schedule a disk-repair before the expansion"),
                    );
                    continue;
                }
                if aggregated {
                    if added < 2 {
                        out.push(
                            Diagnostic::error(
                                codes::EXPAND_SET_TOO_SMALL,
                                path("added_disks"),
                                format!(
                                    "aggregated expansion at t = {}s adds {added} disk(s); \
                                     every new RAID set needs at least 2",
                                    at.as_secs()
                                ),
                            )
                            .with_help("`+` archives grow by whole parity sets"),
                        );
                        continue;
                    }
                } else {
                    let projected = disks.len() + pending_disks + added;
                    if config.parity_group >= 2 && !projected.is_multiple_of(config.parity_group) {
                        out.push(
                            Diagnostic::error(
                                codes::EXPAND_BREAKS_PARITY,
                                path("added_disks"),
                                format!(
                                    "expansion at t = {}s grows the array to {projected} disks, \
                                     which the parity group {} does not divide",
                                    at.as_secs(),
                                    config.parity_group
                                ),
                            )
                            .with_help(
                                "ideally-restriped archives keep full-width parity groups; \
                                 add a multiple of the group width",
                            ),
                        );
                        continue;
                    }
                }
                // Deferral: a paced, non-aggregated expansion queues
                // behind an in-flight archive restripe. Provably still
                // in flight only at the restripe's own timestamp.
                if paced && !aggregated {
                    if let Some(since) = restripe_since {
                        deferred.push(DeferredExpansion {
                            index,
                            at,
                            provable: at == since,
                        });
                        pending_disks += added;
                        continue;
                    }
                    restripe_since = Some(at);
                }
                // Committed: the new disks join healthy.
                disks.extend(std::iter::repeat_n(SymDisk::Healthy, added));
            }
            ScheduledEvent::DiskFailure { disk, .. } => {
                let disk = *disk;
                if disk >= disks.len() + pending_disks {
                    out.push(
                        Diagnostic::error(
                            codes::NO_SUCH_DISK,
                            path("disk"),
                            format!(
                                "disk {disk} does not exist at t = {}s: the array has \
                                 {} mechanical disk(s) then (and {} more pending activation)",
                                at.as_secs(),
                                disks.len(),
                                pending_disks
                            ),
                        )
                        .with_help("disk indices are zero-based and count mechanical disks only"),
                    );
                    continue;
                }
                if disk >= disks.len() {
                    out.push(
                        Diagnostic::warning(
                            codes::DISK_MAY_NOT_EXIST_YET,
                            path("disk"),
                            format!(
                                "disk {disk} belongs to an expansion that may still be \
                                 deferred at t = {}s; the failure is rejected unless the \
                                 expansion activated first",
                                at.as_secs()
                            ),
                        )
                        .with_help("target a disk of the initial array, or move the event later"),
                    );
                    if !maybe_failed.contains(&disk) {
                        maybe_failed.push(disk);
                    }
                    continue;
                }
                if let Some(&(failed_disk, since)) = failed_at.first() {
                    out.push(
                        Diagnostic::error(
                            codes::DOUBLE_FAILURE,
                            path("disk"),
                            format!(
                                "disk {disk} fails at t = {}s while disk {failed_disk} is \
                                 already failed (since t = {}s); the single-fault model \
                                 supports one concurrent failure",
                                at.as_secs(),
                                since.as_secs()
                            ),
                        )
                        .with_help("repair the first disk before failing another"),
                    );
                    continue;
                }
                // A rebuilding disk may have finished by now; the
                // engine only refuses while the rebuild is in flight,
                // so optimistically complete outstanding rebuilds.
                for state in disks.iter_mut() {
                    if *state == SymDisk::Rebuilding {
                        *state = SymDisk::Healthy;
                    }
                }
                disks[disk] = SymDisk::Failed;
                failed_at.push((disk, at));
            }
            ScheduledEvent::DiskRepair { disk, .. } => {
                let disk = *disk;
                if disk >= disks.len() + pending_disks {
                    out.push(
                        Diagnostic::error(
                            codes::NO_SUCH_DISK,
                            path("disk"),
                            format!(
                                "disk {disk} does not exist at t = {}s: the array has \
                                 {} mechanical disk(s) then (and {} more pending activation)",
                                at.as_secs(),
                                disks.len(),
                                pending_disks
                            ),
                        )
                        .with_help("disk indices are zero-based and count mechanical disks only"),
                    );
                    continue;
                }
                if disk >= disks.len() {
                    // A pending-range disk: only repairable if its
                    // failure (itself only maybe-applied) went through.
                    if let Some(i) = maybe_failed.iter().position(|&d| d == disk) {
                        maybe_failed.swap_remove(i);
                    } else {
                        out.push(Diagnostic::error(
                            codes::REPAIR_WITHOUT_FAILURE,
                            path("disk"),
                            format!(
                                "disk {disk} is repaired at t = {}s but cannot be failed \
                                 then (it is pending activation and no failure targeted it)",
                                at.as_secs()
                            ),
                        ));
                    }
                    continue;
                }
                if disks[disk] != SymDisk::Failed {
                    // Healthy and rebuilding disks alike: even if an
                    // outstanding rebuild already completed, the disk
                    // is healthy — the repair is invalid either way.
                    out.push(
                        Diagnostic::error(
                            codes::REPAIR_WITHOUT_FAILURE,
                            path("disk"),
                            format!(
                                "disk {disk} is repaired at t = {}s but is not failed then",
                                at.as_secs()
                            ),
                        )
                        .with_help("repairs must follow a disk-failure of the same disk"),
                    );
                    continue;
                }
                disks[disk] = SymDisk::Rebuilding;
                failed_at.retain(|&(d, _)| d != disk);
            }
            ScheduledEvent::PolicySwitch { policy, .. } => {
                if let Some(&(other_index, _)) = schedule[..position].iter().find(|&&(_, prior)| {
                    matches!(prior, ScheduledEvent::PolicySwitch { policy: p, .. }
                             if prior.at() == at && p != policy)
                }) {
                    out.push(
                        Diagnostic::warning(
                            codes::CONFLICTING_POLICY_SWITCH,
                            path("policy"),
                            format!(
                                "conflicting policy switches at t = {}s (events[{other_index}] \
                                 switches to a different policy at the same instant); the \
                                 later declaration wins",
                                at.as_secs()
                            ),
                        )
                        .with_help("keep one switch per instant"),
                    );
                }
            }
            ScheduledEvent::WorkloadPhase { .. } => {}
        }
    }

    // Reach: events strictly beyond the (slack-padded) replay horizon
    // execute after the last request, outside the measurement window.
    // Trace-swapping phases extend the horizon instead, and are exempt.
    if let Some(end) = horizon {
        let padded = end * (1.0 + HORIZON_SLACK) + 1.0;
        for (index, event) in events.iter().enumerate() {
            let swaps_trace = matches!(
                event,
                ScheduledEvent::WorkloadPhase {
                    workload: Some(_),
                    ..
                }
            );
            if !swaps_trace && event.at().as_secs() > padded {
                out.push(
                    Diagnostic::warning(
                        codes::EVENT_BEYOND_REPLAY,
                        format!("events[{index}].at_secs"),
                        format!(
                            "event at t = {}s is beyond the replay's estimated end \
                             (~{end:.0}s): it executes after the last request, outside \
                             the measurement window",
                            event.at().as_secs()
                        ),
                    )
                    .with_help("move the event earlier or scale the workload up"),
                );
            }
        }
    }

    // Activation analysis: under wait-for-repair, a deferred expansion
    // only activates once the blocking restripe drains *and* the array
    // is healthy. A failure that is never repaired can therefore
    // strand the activation — provably, when failure, restripe start
    // and deferral all share one timestamp (the restripe cannot have
    // drained in zero time, so the activation comes due strictly after
    // the failure, against a permanently degraded array).
    if config.activation == ActivationPolicy::WaitForRepair && !deferred.is_empty() {
        let terminal_failure = failed_at.first().copied();
        for d in &deferred {
            match terminal_failure {
                Some((disk, failed)) if d.provable && failed == d.at => {
                    out.push(
                        Diagnostic::error(
                            codes::UNREACHABLE_ACTIVATION,
                            format!("events[{}]", d.index),
                            format!(
                                "deferred expansion at t = {}s can never activate: it is \
                                 queued behind a restripe still in flight when disk {disk} \
                                 fails at the same instant, the failure is never repaired, \
                                 and activation = \"wait-for-repair\" requires a healthy array",
                                d.at.as_secs()
                            ),
                        )
                        .with_help("schedule a disk-repair, or use activation = \"immediate\""),
                    );
                }
                Some((disk, failed)) if failed >= d.at => {
                    out.push(
                        Diagnostic::warning(
                            codes::ACTIVATION_MAY_STALL,
                            format!("events[{}]", d.index),
                            format!(
                                "deferred expansion at t = {}s may never activate: disk \
                                 {disk} fails at t = {}s without a later repair, and \
                                 activation = \"wait-for-repair\" holds the queue while \
                                 the array is degraded",
                                d.at.as_secs(),
                                failed.as_secs()
                            ),
                        )
                        .with_help("repair the disk, or use activation = \"immediate\""),
                    );
                }
                _ => {
                    if let Some(&disk) = maybe_failed.first() {
                        out.push(
                            Diagnostic::warning(
                                codes::ACTIVATION_MAY_STALL,
                                format!("events[{}]", d.index),
                                format!(
                                    "deferred expansion at t = {}s may never activate: a \
                                     failure targeting pending disk {disk} is never \
                                     repaired under activation = \"wait-for-repair\"",
                                    d.at.as_secs()
                                ),
                            )
                            .with_help("repair the disk, or use activation = \"immediate\""),
                        );
                    }
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyKind;

    fn craid(migration_rate: Option<f64>) -> ArrayConfig {
        let mut config = ArrayConfig::small_test(StrategyKind::Craid5, 10_000);
        config.migration_rate_blocks_per_sec = migration_rate;
        config
    }

    fn codes_of(config: &ArrayConfig, events: &[ScheduledEvent]) -> Vec<&'static str> {
        check_schedule(config, events, None)
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_failure_drill_has_no_findings() {
        let t = SimTime::from_secs;
        let events = vec![
            ScheduledEvent::disk_failure(t(25.0), 2),
            ScheduledEvent::disk_repair(t(50.0), 2),
            ScheduledEvent::expand(t(75.0), 4),
        ];
        assert!(codes_of(&craid(None), &events).is_empty());
    }

    #[test]
    fn repair_of_healthy_and_double_failure_are_errors() {
        let t = SimTime::from_secs;
        let events = vec![ScheduledEvent::disk_repair(t(10.0), 1)];
        assert_eq!(
            codes_of(&craid(None), &events),
            vec![codes::REPAIR_WITHOUT_FAILURE]
        );

        let events = vec![
            ScheduledEvent::disk_failure(t(10.0), 1),
            ScheduledEvent::disk_failure(t(20.0), 3),
        ];
        assert_eq!(codes_of(&craid(None), &events), vec![codes::DOUBLE_FAILURE]);

        // Repair of a *rebuilding* disk is provably invalid too: even
        // a completed rebuild leaves it healthy.
        let events = vec![
            ScheduledEvent::disk_failure(t(10.0), 1),
            ScheduledEvent::disk_repair(t(20.0), 1),
            ScheduledEvent::disk_repair(t(30.0), 1),
        ];
        assert_eq!(
            codes_of(&craid(None), &events),
            vec![codes::REPAIR_WITHOUT_FAILURE]
        );
    }

    #[test]
    fn failure_after_optimistic_rebuild_completion_is_clean() {
        let t = SimTime::from_secs;
        let events = vec![
            ScheduledEvent::disk_failure(t(10.0), 1),
            ScheduledEvent::disk_repair(t(20.0), 1),
            ScheduledEvent::disk_failure(t(500.0), 2),
            ScheduledEvent::disk_repair(t(510.0), 2),
        ];
        assert!(codes_of(&craid(None), &events).is_empty());
    }

    #[test]
    fn expansion_shape_errors() {
        let t = SimTime::from_secs;
        let events = vec![ScheduledEvent::expand(t(10.0), 0)];
        assert_eq!(
            codes_of(&craid(None), &events),
            vec![codes::EXPAND_ADDS_NOTHING]
        );

        // small_test: 8 disks, parity group 4 — adding 3 breaks it.
        let events = vec![ScheduledEvent::expand(t(10.0), 3)];
        assert_eq!(
            codes_of(&craid(None), &events),
            vec![codes::EXPAND_BREAKS_PARITY]
        );

        // Aggregated archives need sets of >= 2.
        let mut plus = ArrayConfig::small_test(StrategyKind::Craid5Plus, 10_000);
        plus.migration_rate_blocks_per_sec = None;
        let events = vec![ScheduledEvent::expand(t(10.0), 1)];
        assert_eq!(codes_of(&plus, &events), vec![codes::EXPAND_SET_TOO_SMALL]);

        let events = vec![
            ScheduledEvent::disk_failure(t(10.0), 1),
            ScheduledEvent::expand(t(20.0), 4),
        ];
        assert_eq!(
            codes_of(&craid(None), &events),
            vec![codes::EXPAND_ON_FAILED_ARRAY]
        );
    }

    #[test]
    fn disk_indices_track_expansion_generations() {
        let t = SimTime::from_secs;
        // Disk 9 exists only after the instant expansion at t=10.
        let events = vec![
            ScheduledEvent::disk_failure(t(5.0), 9),
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::disk_failure(t(20.0), 9),
            ScheduledEvent::disk_repair(t(30.0), 9),
        ];
        assert_eq!(codes_of(&craid(None), &events), vec![codes::NO_SUCH_DISK]);

        // With paced migration the second expansion defers, so its
        // disks are only *maybe* installed.
        let events = vec![
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::disk_failure(t(20.0), 14),
        ];
        assert_eq!(
            codes_of(&craid(Some(100.0)), &events),
            vec![codes::DISK_MAY_NOT_EXIST_YET]
        );
    }

    #[test]
    fn same_instant_expansions_defer_provably() {
        let t = SimTime::from_secs;
        let config = {
            let mut c = craid(Some(100.0));
            c.activation = ActivationPolicy::WaitForRepair;
            c
        };
        // expand A commits and starts the restripe; expand B (same
        // instant) provably defers; the failure at the same instant is
        // never repaired -> the activation provably never fires.
        let events = vec![
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::disk_failure(t(10.0), 0),
        ];
        assert_eq!(
            codes_of(&config, &events),
            vec![codes::UNREACHABLE_ACTIVATION]
        );

        // A later failure only *may* strand it (the restripe may have
        // drained and activated the queue first).
        let events = vec![
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::disk_failure(t(400.0), 0),
        ];
        assert_eq!(
            codes_of(&config, &events),
            vec![codes::ACTIVATION_MAY_STALL]
        );

        // With a repair, the activation eventually fires: clean.
        let events = vec![
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::disk_failure(t(400.0), 0),
            ScheduledEvent::disk_repair(t(420.0), 0),
        ];
        assert!(codes_of(&config, &events).is_empty());

        // Under the default immediate activation the queue drains
        // regardless of array health: clean.
        let events = vec![
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::disk_failure(t(10.0), 0),
        ];
        assert!(codes_of(&craid(Some(100.0)), &events).is_empty());
    }

    #[test]
    fn duplicate_and_conflicting_same_instant_events_warn() {
        use craid_cache::PolicyKind;
        let t = SimTime::from_secs;
        let events = vec![
            ScheduledEvent::policy_switch(t(10.0), PolicyKind::Arc),
            ScheduledEvent::policy_switch(t(10.0), PolicyKind::Lru),
        ];
        assert_eq!(
            codes_of(&craid(None), &events),
            vec![codes::CONFLICTING_POLICY_SWITCH]
        );

        let events = vec![
            ScheduledEvent::workload_phase(t(10.0), "x"),
            ScheduledEvent::workload_phase(t(10.0), "x"),
        ];
        assert_eq!(
            codes_of(&craid(None), &events),
            vec![codes::DUPLICATE_EVENT]
        );

        // Repeated *expansions* at one instant are legitimate growth.
        let mut plus = ArrayConfig::small_test(StrategyKind::Craid5Plus, 10_000);
        plus.migration_rate_blocks_per_sec = None;
        let events = vec![
            ScheduledEvent::expand(t(10.0), 4),
            ScheduledEvent::expand(t(10.0), 4),
        ];
        assert!(codes_of(&plus, &events).is_empty());
    }

    #[test]
    fn horizon_flags_unreachable_events() {
        let t = SimTime::from_secs;
        let events = vec![
            ScheduledEvent::expand(t(4.0), 4),
            ScheduledEvent::expand(t(5_000.0), 4),
        ];
        let findings = check_schedule(&craid(None), &events, Some(84.0));
        assert_eq!(
            findings.iter().map(|d| d.code).collect::<Vec<_>>(),
            vec![codes::EVENT_BEYOND_REPLAY]
        );
        assert_eq!(findings[0].path, "events[1].at_secs");
        // Without a horizon the check is skipped entirely.
        assert!(check_schedule(&craid(None), &events, None).is_empty());
    }
}
