//! A small-scope bounded model checker for the scheduler's decision space.
//!
//! The static passes of [`super`] judge a scenario *symbolically*; this
//! module judges it *dynamically*: it projects the scenario onto a small
//! scope (few requests, few events), installs a recording
//! [`Chooser`] and drives the **real**
//! `StorageArray`/`BackgroundEngine`/`MigrationMap` code down every
//! reachable combination of the engine's nondeterministic decision points
//! ([`DecisionPoint`]) — equal-timestamp event orders, fair-share leftover
//! splits, batch-boundary placement, throttle-vs-pump ordering, deferred
//! activation timing — up to a per-run decision budget. After each run the
//! recorded evidence is judged by the [`oracle`](super::oracle) library;
//! the first violating branch is shrunk (events dropped, workload halved)
//! to a minimal reproducer scenario and reported as `CRAID-E4xx`
//! diagnostics in an ordinary [`Analysis`].
//!
//! Exploration is depth-first with sleep-set style pruning: decision sites
//! prove alternatives equivalent to branch 0 where they can (equal-time
//! event groups with disjoint resource footprints are never permuted) and
//! report the skipped branches via [`Exploration::pruned`]. Branch 0 at
//! every site reproduces the pinned production schedule, so the first run
//! of every exploration is exactly the run a plain [`Scenario::run`] would
//! have produced.
//!
//! ```
//! use craid::{explore, ExploreScope, Scenario};
//!
//! let scenario = Scenario::builder().requests(300).small_test().build();
//! let scope = ExploreScope {
//!     max_runs: 32,
//!     ..ExploreScope::default()
//! };
//! let exploration = explore(&scenario, &scope);
//! assert!(exploration.counterexample.is_none(), "{}", exploration.analysis);
//! assert!(exploration.runs >= 1);
//! ```

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Mutex;

use crate::analyze::oracle::{check_all, ConservationLine, RunEvidence};
use crate::analyze::{codes, Analysis, Diagnostic};
use crate::background::TaskKind;
use crate::choice::{self, Chooser, DecisionPoint, Observation};
use crate::scenario::{Scenario, ScenarioOutcome, ScheduledEvent};

/// The exploration bounds: how far the scenario is scaled down and how
/// much of the decision tree is searched. [`ExploreScope::default`] is the
/// scope CI runs the shipped drills under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreScope {
    /// Workload requests the projection clamps the scenario to.
    pub max_requests: u64,
    /// Scheduled events the projection keeps (the first `n`).
    pub max_events: usize,
    /// Decision points that may branch per run; later sites take branch 0.
    pub max_branch_decisions: usize,
    /// Total runs before the search gives up (marks
    /// [`Exploration::truncated`]).
    pub max_runs: usize,
}

impl Default for ExploreScope {
    fn default() -> Self {
        ExploreScope {
            max_requests: 48,
            max_events: 4,
            max_branch_decisions: 12,
            max_runs: 128,
        }
    }
}

impl ExploreScope {
    /// The reduced preset for fast smoke checks (`--explore=quick`).
    pub fn quick() -> Self {
        ExploreScope {
            max_requests: 32,
            max_events: 3,
            max_branch_decisions: 8,
            max_runs: 64,
        }
    }

    /// The enlarged preset for overnight-style searches
    /// (`--explore=wide`).
    pub fn wide() -> Self {
        ExploreScope {
            max_requests: 64,
            max_events: 4,
            max_branch_decisions: 16,
            max_runs: 1_024,
        }
    }

    /// Parses a scope argument: a preset name (`quick`, `default`, `wide`)
    /// and/or comma-separated `key=value` overrides with keys `requests`,
    /// `events`, `decisions`, `runs` — e.g. `quick,runs=64` or
    /// `requests=16,decisions=6`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown key, preset or
    /// unparsable value.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut scope = ExploreScope::default();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match part.split_once('=') {
                None => {
                    scope = match part {
                        "quick" => ExploreScope::quick(),
                        "default" => ExploreScope::default(),
                        "wide" => ExploreScope::wide(),
                        other => return Err(format!("unknown explore preset '{other}'")),
                    }
                }
                Some((key, value)) => {
                    let n: u64 = value
                        .parse()
                        .map_err(|e| format!("bad value for '{key}': {e}"))?;
                    match key {
                        "requests" => scope.max_requests = n.max(1),
                        "events" => scope.max_events = n as usize,
                        "decisions" => scope.max_branch_decisions = n as usize,
                        "runs" => scope.max_runs = (n as usize).max(1),
                        other => return Err(format!("unknown explore scope key '{other}'")),
                    }
                }
            }
        }
        Ok(scope)
    }
}

/// One resolved decision on an explored path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// The decision site.
    pub point: DecisionPoint,
    /// The branch taken (`0` is always the production behaviour).
    pub chosen: usize,
    /// How many branches the site offered.
    pub arity: usize,
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}/{}", self.point, self.chosen, self.arity)
    }
}

/// A violating interleaving, minimized: the diagnostics the oracles
/// raised, the decision path that reaches them, and the shrunk reproducer
/// scenario.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violations, in oracle order (a panicking branch appends
    /// [`codes::EXPLORE_PANIC`]).
    pub diagnostics: Vec<Diagnostic>,
    /// The decision path of the violating run over the *reproducer*
    /// scenario (sites beyond the decision budget take branch 0).
    pub path: Vec<Choice>,
    /// The minimized scenario: load it with `scenario_file` (or
    /// [`Scenario::from_toml`]) and explore again to reproduce.
    pub scenario: Scenario,
}

impl Counterexample {
    /// The violated codes, in diagnostic order.
    pub fn codes(&self) -> Vec<&'static str> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// The decision path as a one-line arrow chain
    /// (`event-order:1/2 -> batch-boundary:1/2`), or `production
    /// schedule` when every decision took branch 0.
    pub fn path_string(&self) -> String {
        if self.path.iter().all(|c| c.chosen == 0) {
            return "production schedule (every decision at branch 0)".to_string();
        }
        self.path
            .iter()
            .map(Choice::to_string)
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Renders the reproducer scenario as a TOML document.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (never for scenarios built
    /// through the public API).
    pub fn reproducer_toml(&self) -> Result<String, serde::Error> {
        self.scenario.to_toml()
    }
}

/// The result of exploring one scenario.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Static findings plus any `CRAID-E4xx` violations, as one report.
    pub analysis: Analysis,
    /// Runs executed (including the shrinker's re-explorations).
    pub runs: usize,
    /// Runs that ended in a [`CraidError`](crate::CraidError) under a
    /// permuted schedule
    /// (counted, not treated as invariant violations).
    pub errored_runs: usize,
    /// Branches sleep-set pruning proved equivalent and skipped.
    pub pruned: u64,
    /// True when a budget (runs or per-run decisions) cut the search
    /// short of exhaustion.
    pub truncated: bool,
    /// The minimized violating interleaving, when one was found.
    pub counterexample: Option<Counterexample>,
}

impl Exploration {
    /// True when no violation was found (static warnings may remain).
    pub fn is_clean(&self) -> bool {
        self.counterexample.is_none() && !self.analysis.has_errors()
    }
}

/// Explores `scenario` at `scope`.
///
/// Static analysis runs first: a scenario the symbolic passes reject is
/// returned with those findings and zero runs (there is no meaningful
/// schedule to explore). Otherwise the scenario is projected onto the
/// scope (requests clamped, events truncated, observers dropped) and the
/// decision tree is searched depth-first; the first violating branch is
/// shrunk to a minimal reproducer.
pub fn explore(scenario: &Scenario, scope: &ExploreScope) -> Exploration {
    let analysis = scenario.analyze();
    if analysis.has_errors() {
        return Exploration {
            analysis,
            runs: 0,
            errored_runs: 0,
            pruned: 0,
            truncated: false,
            counterexample: None,
        };
    }

    let projected = small_scope_projection(scenario, scope);
    let mut search = Search::new(scope);
    let violation = with_silenced_panics(|| {
        let found = search.run(&projected);
        found.map(|(diagnostics, path)| {
            let (scenario, diagnostics, path) = search.shrink(projected.clone(), diagnostics, path);
            Counterexample {
                diagnostics,
                path,
                scenario,
            }
        })
    });

    let mut analysis = analysis;
    if let Some(counterexample) = &violation {
        analysis
            .diagnostics
            .extend(counterexample.diagnostics.iter().cloned());
    }
    Exploration {
        analysis,
        runs: search.runs,
        errored_runs: search.errored_runs,
        pruned: search.pruned,
        truncated: search.truncated,
        counterexample: violation,
    }
}

/// Projects a scenario onto the scope: requests clamped (base workload and
/// phase swaps), events truncated to the first `max_events`, observers
/// dropped (an exploration must not stream output or write files). If
/// truncation broke the schedule's internal consistency (say, a repair
/// whose failure was cut), the events are dropped entirely — a smaller
/// scope, never an invalid one.
fn small_scope_projection(scenario: &Scenario, scope: &ExploreScope) -> Scenario {
    let mut projected = scenario.clone();
    projected.observers.clear();
    projected.workload.requests = projected.workload.requests.clamp(1, scope.max_requests);
    projected.events.truncate(scope.max_events);
    for event in &mut projected.events {
        if let ScheduledEvent::WorkloadPhase {
            workload: Some(source),
            ..
        } = event
        {
            source.requests = source.requests.clamp(1, scope.max_requests);
        }
    }
    if projected.analyze().has_errors() {
        projected.events.clear();
    }
    projected
}

/// How one explored run ended.
enum RunEnd {
    Completed(Box<ScenarioOutcome>),
    Failed,
    Panicked(String),
}

/// The depth-first searcher: owns the cross-run counters and the
/// backtracking stack discipline.
struct Search {
    scope: ExploreScope,
    runs: usize,
    errored_runs: usize,
    pruned: u64,
    truncated: bool,
}

impl Search {
    fn new(scope: &ExploreScope) -> Self {
        Search {
            scope: *scope,
            runs: 0,
            errored_runs: 0,
            pruned: 0,
            truncated: false,
        }
    }

    /// Searches the decision tree of `scenario` depth-first. Returns the
    /// first violating run's diagnostics and decision path, or `None`
    /// when every explored branch was clean.
    fn run(&mut self, scenario: &Scenario) -> Option<(Vec<Diagnostic>, Vec<Choice>)> {
        let mut prefix: Vec<Choice> = Vec::new();
        loop {
            if self.runs >= self.scope.max_runs {
                self.truncated = true;
                return None;
            }
            self.runs += 1;
            let chooser = Rc::new(RefCell::new(DfsChooser::new(
                prefix,
                self.scope.max_branch_decisions,
            )));
            let end = run_once(scenario, Rc::clone(&chooser));
            let mut recorder = Rc::try_unwrap(chooser)
                .ok()
                .expect("the chooser is uninstalled after the run")
                .into_inner();
            self.pruned += recorder.pruned;
            self.truncated |= recorder.decisions_truncated;

            let diagnostics = match end {
                RunEnd::Completed(outcome) => {
                    finish_evidence(&mut recorder.evidence, &outcome);
                    check_all(&recorder.evidence)
                }
                RunEnd::Failed => {
                    // A permuted schedule the engine rejects outright is an
                    // ordering the production path can never take — count
                    // it, judge whatever evidence accrued, move on.
                    self.errored_runs += 1;
                    check_all(&recorder.evidence)
                }
                RunEnd::Panicked(message) => {
                    let mut diagnostics = check_all(&recorder.evidence);
                    diagnostics.push(
                        Diagnostic::error(
                            codes::EXPLORE_PANIC,
                            "explore",
                            format!("an explored branch panicked: {message}"),
                        )
                        .with_help(
                            "the engine must reject or survive every schedule the decision \
                             points admit; a panic is a soundness hole, not a user error",
                        ),
                    );
                    diagnostics
                }
            };
            if !diagnostics.is_empty() {
                return Some((diagnostics, recorder.path));
            }
            prefix = backtrack(recorder.path)?;
        }
    }

    /// True when re-exploring `scenario` still raises `code` (used by the
    /// shrinker to validate a candidate reduction).
    fn finds(
        &mut self,
        scenario: &Scenario,
        code: &'static str,
    ) -> Option<(Vec<Diagnostic>, Vec<Choice>)> {
        if scenario.analyze().has_errors() {
            return None;
        }
        // Each candidate gets a small run budget of its own: a reduction
        // that *stops* reproducing must not eat the whole remaining global
        // budget re-searching its (now clean) tree.
        let saved = self.scope.max_runs;
        self.scope.max_runs = self.runs + 16;
        let found = self
            .run(scenario)
            .filter(|(diagnostics, _)| diagnostics.iter().any(|d| d.code == code));
        self.scope.max_runs = saved;
        found
    }

    /// Minimizes a violating scenario: greedily drop events, then halve
    /// the workload, as long as re-exploration still finds the primary
    /// (first) violated code. Returns the smallest scenario found with its
    /// diagnostics and path.
    fn shrink(
        &mut self,
        scenario: Scenario,
        diagnostics: Vec<Diagnostic>,
        path: Vec<Choice>,
    ) -> (Scenario, Vec<Diagnostic>, Vec<Choice>) {
        let code = diagnostics[0].code;
        let mut best = (scenario, diagnostics, path);
        let mut attempts = 0usize;
        loop {
            let mut improved = false;
            for index in 0..best.0.events.len() {
                attempts += 1;
                if attempts > 64 {
                    return best;
                }
                let mut candidate = best.0.clone();
                candidate.events.remove(index);
                if let Some((diagnostics, path)) = self.finds(&candidate, code) {
                    best = (candidate, diagnostics, path);
                    improved = true;
                    break;
                }
            }
            if improved {
                continue;
            }
            let halved = (best.0.workload.requests / 2).max(1);
            if halved < best.0.workload.requests {
                attempts += 1;
                if attempts > 64 {
                    return best;
                }
                let mut candidate = best.0.clone();
                candidate.workload.requests = halved;
                if let Some((diagnostics, path)) = self.finds(&candidate, code) {
                    best = (candidate, diagnostics, path);
                    improved = true;
                }
            }
            if !improved {
                return best;
            }
        }
    }
}

/// Pops exhausted trailing decisions and advances the deepest unexhausted
/// one; `None` when the whole tree has been visited.
fn backtrack(mut path: Vec<Choice>) -> Option<Vec<Choice>> {
    loop {
        match path.last_mut() {
            None => return None,
            Some(last) if last.chosen + 1 < last.arity => {
                last.chosen += 1;
                return Some(path);
            }
            Some(_) => {
                path.pop();
            }
        }
    }
}

/// Executes one run of `scenario` under `chooser`, catching panics (a
/// panicking branch is a reportable finding, and the recorded evidence
/// survives in the shared chooser).
fn run_once(scenario: &Scenario, chooser: Rc<RefCell<DfsChooser>>) -> RunEnd {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        choice::with_chooser(chooser, || scenario.run())
    }));
    match outcome {
        Ok(Ok(outcome)) => RunEnd::Completed(Box::new(outcome)),
        Ok(Err(_)) => RunEnd::Failed,
        Err(payload) => RunEnd::Panicked(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Folds the completed run's report into the evidence: the conservation
/// ledger lines the per-poll observations cannot see (final migrated /
/// superseded / pending counts live in [`MigrationStats`]).
///
/// [`MigrationStats`]: crate::report::MigrationStats
fn finish_evidence(evidence: &mut RunEvidence, outcome: &ScenarioOutcome) {
    let stats = &outcome.report.migration;
    let enqueued = |kind: TaskKind| -> u64 {
        evidence
            .enqueued
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, blocks)| blocks)
            .sum()
    };
    let pc = enqueued(TaskKind::ExpansionMigration);
    if pc > 0 {
        evidence.conservation.push(ConservationLine {
            label: "pc-migration",
            enqueued: pc,
            migrated: stats.migrated_blocks,
            superseded: stats.superseded_blocks,
            pending: stats.pending_blocks,
        });
    }
    let archive = enqueued(TaskKind::ArchiveRestripe);
    if archive > 0 {
        evidence.conservation.push(ConservationLine {
            label: "archive-restripe",
            enqueued: archive,
            migrated: stats.archive_migrated_blocks,
            superseded: stats.archive_superseded_blocks,
            pending: stats.archive_pending_blocks,
        });
    }
}

/// The depth-first chooser: replays a fixed prefix of decisions, extends
/// the path with branch 0 beyond it, and records every observation as
/// oracle evidence.
struct DfsChooser {
    path: Vec<Choice>,
    replay: usize,
    depth: usize,
    max_decisions: usize,
    decisions_truncated: bool,
    evidence: RunEvidence,
    pruned: u64,
}

impl DfsChooser {
    fn new(prefix: Vec<Choice>, max_decisions: usize) -> Self {
        DfsChooser {
            replay: prefix.len(),
            path: prefix,
            depth: 0,
            max_decisions,
            decisions_truncated: false,
            evidence: RunEvidence::default(),
            pruned: 0,
        }
    }
}

impl Chooser for DfsChooser {
    fn choose(&mut self, point: DecisionPoint, arity: usize) -> usize {
        let index = self.depth;
        self.depth += 1;
        if index < self.replay {
            // Replay: the run is deterministic given its choices, so the
            // site and arity match the recording; clamp defensively.
            return self.path[index].chosen.min(arity.saturating_sub(1));
        }
        if self.path.len() >= self.max_decisions {
            // Beyond the per-run budget every site takes the production
            // branch (and is not recorded, so backtracking never visits
            // its alternatives).
            self.decisions_truncated = true;
            return 0;
        }
        self.path.push(Choice {
            point,
            chosen: 0,
            arity,
        });
        0
    }

    fn observe(&mut self, observation: Observation) {
        self.evidence.absorb(observation);
    }

    fn prune(&mut self, _point: DecisionPoint, skipped: usize) {
        self.pruned += skipped as u64;
    }
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

/// Silences the process panic hook while explorations are in flight
/// (panicking branches are expected findings, not stderr events), saving
/// and restoring whatever hook was installed. Refcounted: concurrent
/// explorations share one silent window.
fn with_silenced_panics<R>(body: impl FnOnce() -> R) -> R {
    static STATE: Mutex<(usize, Option<PanicHook>)> = Mutex::new((0, None));
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            let mut state = STATE.lock().expect("panic-hook state poisoned");
            state.0 -= 1;
            if state.0 == 0 {
                if let Some(hook) = state.1.take() {
                    std::panic::set_hook(hook);
                }
            }
        }
    }
    {
        let mut state = STATE.lock().expect("panic-hook state poisoned");
        if state.0 == 0 {
            state.1 = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|_| {}));
        }
        state.0 += 1;
    }
    let _guard = Guard;
    body()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_parses_presets_and_overrides() {
        assert_eq!(ExploreScope::parse("").unwrap(), ExploreScope::default());
        assert_eq!(ExploreScope::parse("quick").unwrap(), ExploreScope::quick());
        let custom = ExploreScope::parse("wide,runs=99,requests=16").unwrap();
        assert_eq!(custom.max_runs, 99);
        assert_eq!(custom.max_requests, 16);
        assert_eq!(
            custom.max_branch_decisions,
            ExploreScope::wide().max_branch_decisions
        );
        assert!(ExploreScope::parse("bogus").is_err());
        assert!(ExploreScope::parse("runs=abc").is_err());
    }

    #[test]
    fn backtrack_walks_the_tree_in_dfs_order() {
        let choice = |chosen, arity| Choice {
            point: DecisionPoint::EventOrder,
            chosen,
            arity,
        };
        // Path [0/2, 1/2]: the deepest decision is exhausted, the shallow
        // one advances and the tail is dropped.
        let next = backtrack(vec![choice(0, 2), choice(1, 2)]).unwrap();
        assert_eq!(next, vec![choice(1, 2)]);
        // Everything exhausted: the search is done.
        assert!(backtrack(vec![choice(1, 2)]).is_none());
        assert!(backtrack(Vec::new()).is_none());
    }

    #[test]
    fn static_errors_short_circuit_exploration() {
        let mut scenario = Scenario::builder().requests(100).small_test().build();
        scenario.workload.requests = 0;
        let exploration = explore(&scenario, &ExploreScope::default());
        assert_eq!(exploration.runs, 0);
        assert!(exploration.analysis.has_errors());
        assert!(exploration.counterexample.is_none());
    }

    /// The overlap that tripped the original stale-generation bug: two
    /// pipelined expansions on an aggregated archive, migration paced slow
    /// enough that the first generation's move sets are still queued when
    /// the second generation repopulates the map.
    fn stale_generation_scenario() -> Scenario {
        Scenario::builder()
            .name("stale generation collision")
            .strategy(crate::config::StrategyKind::Craid5Plus)
            .small_test()
            .workload(craid_trace::WorkloadId::Wdev)
            .requests(48)
            .seed(7)
            .pc_fraction(0.5)
            .migration_rate(8.0)
            .expand_at(craid_simkit::SimTime::from_secs(1.0), 4)
            .expand_at(craid_simkit::SimTime::from_secs(13.0), 4)
            .build()
    }

    /// Mutation check: PR 4's stale-generation guard, removed via the
    /// test-only fault hook, must be caught by the model checker — and the
    /// counterexample must shrink to a small-scope reproducer.
    #[test]
    fn explore_catches_the_resurrected_stale_generation_bug() {
        let scenario = stale_generation_scenario();
        // With the guard in place the same scenario explores clean — the
        // oracle fires on the mutation, not on the scenario.
        let clean = explore(&scenario, &ExploreScope::quick());
        assert!(
            clean.is_clean(),
            "guarded run was not clean: {:?}",
            clean.analysis
        );

        let exploration = crate::choice::faults::with_stale_generation_guard_disabled(|| {
            explore(&scenario, &ExploreScope::default())
        });
        assert!(!exploration.is_clean());
        let counterexample = exploration
            .counterexample
            .expect("the mutation must produce a counterexample");
        assert!(
            counterexample
                .codes()
                .contains(&codes::GENERATION_MONOTONIC),
            "expected {} in {:?}",
            codes::GENERATION_MONOTONIC,
            counterexample.codes()
        );
        assert!(
            counterexample.scenario.events.len() <= 4,
            "shrinker left {} events",
            counterexample.scenario.events.len()
        );
        eprintln!(
            "shrunken reproducer:\n{}",
            counterexample.reproducer_toml().expect("serializes")
        );
    }

    /// The shipped reproducer is the shrunken counterexample of the test
    /// above: statically clean (the bug is an interleaving, not a config
    /// error), caught dynamically the moment the guard is gone.
    #[test]
    fn shipped_stale_generation_reproducer_is_golden() {
        let text =
            include_str!("../../../../examples/scenarios/invalid/stale_generation_collision.toml");
        let scenario = Scenario::from_toml(text).expect("reproducer parses");
        assert!(
            !scenario.analyze().has_errors(),
            "reproducer must be statically clean"
        );
        let exploration = crate::choice::faults::with_stale_generation_guard_disabled(|| {
            explore(&scenario, &ExploreScope::default())
        });
        let counterexample = exploration
            .counterexample
            .expect("the reproducer must still reproduce");
        assert!(counterexample
            .codes()
            .contains(&codes::GENERATION_MONOTONIC));
    }

    #[test]
    fn projection_clamps_and_stays_valid() {
        let mut scenario = Scenario::builder().requests(5_000).small_test().build();
        scenario.events = vec![
            ScheduledEvent::DiskFailure {
                at: craid_simkit::SimTime::from_secs(1.0),
                disk: 0,
            },
            ScheduledEvent::DiskRepair {
                at: craid_simkit::SimTime::from_secs(2.0),
                disk: 0,
            },
        ];
        let scope = ExploreScope {
            max_events: 1, // cuts the repair's failure context
            ..ExploreScope::default()
        };
        let projected = small_scope_projection(&scenario, &scope);
        assert_eq!(projected.workload.requests, scope.max_requests);
        // Keeping only the failure is fine (a failure needs no repair) —
        // but if we invert the order, truncation would strand the repair
        // and the projection must fall back to an event-free scope.
        assert_eq!(projected.events.len(), 1);
        let mut inverted = scenario.clone();
        inverted.events.reverse();
        let projected = small_scope_projection(&inverted, &scope);
        assert!(projected.events.is_empty());
        assert!(!projected.analyze().has_errors());
    }
}
