//! First-class invariant oracles over a run's evidence.
//!
//! The correctness claims this reproduction leans on — no block lost or
//! double-mapped mid-reshape, fair-share budgets conserved, generations
//! never regressing, throttles clamped, drains terminating — used to live
//! as hand-rolled assertions scattered across individual property tests.
//! This module lifts each claim into an [`InvariantOracle`] that judges a
//! [`RunEvidence`], so the proptests in `tests/` and the small-scope model
//! checker ([`super::explore`]) share one implementation: an invariant
//! tightened here tightens every harness at once.
//!
//! Evidence is deliberately plain data. The model checker assembles it from
//! the [`Observation`] stream its chooser
//! records plus the run's final report; a property test builds exactly the
//! slices it can see and leaves the rest empty (an oracle never fires on
//! evidence it was not given).
//!
//! ```
//! use craid::analyze::oracle::{all_oracles, check_all, ConservationLine, RunEvidence};
//!
//! let mut evidence = RunEvidence::default();
//! evidence.conservation.push(ConservationLine {
//!     label: "pc-migration",
//!     enqueued: 10,
//!     migrated: 6,
//!     superseded: 3,
//!     pending: 1,
//! });
//! assert!(check_all(&evidence).is_empty());
//! assert_eq!(all_oracles().len(), 6);
//! ```

use crate::analyze::{codes, Diagnostic};
use crate::background::TaskKind;
use crate::choice::{Observation, PollLane, DRAIN_PUMP_BOUND};

/// One block-accounting ledger line: everything enqueued for a paced move
/// set must end migrated, superseded or still pending — never lost, never
/// counted twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConservationLine {
    /// Which move set the line accounts for (`"pc-migration"`,
    /// `"archive-restripe"`, ...).
    pub label: &'static str,
    /// Blocks enqueued in total.
    pub enqueued: u64,
    /// Blocks the background engine moved.
    pub migrated: u64,
    /// Blocks client traffic superseded.
    pub superseded: u64,
    /// Blocks still pending at the end of the run.
    pub pending: u64,
}

/// The evidence one run leaves behind, judged by the [`InvariantOracle`]
/// library. Every field defaults to "not observed"; oracles only fire on
/// evidence actually present.
#[derive(Debug, Clone, Default)]
pub struct RunEvidence {
    /// Per-poll budget arithmetic (`Observation::Poll`).
    pub polls: Vec<(u64, u64, Vec<PollLane>)>,
    /// Throttle retargets as `(scale, floor)` pairs.
    pub throttles: Vec<(f64, f64)>,
    /// Migration-map consumptions as
    /// `(block, entry_generation, task_generation)`.
    pub applies: Vec<(u64, u64, u64)>,
    /// Blocks seen both pending migration and cache-resident at a pump
    /// boundary.
    pub colocated: Vec<u64>,
    /// Move sets enqueued on the engine, as `(kind, blocks)` — the
    /// "enqueued" side callers fold into [`RunEvidence::conservation`].
    pub enqueued: Vec<(TaskKind, u64)>,
    /// Block-accounting ledger lines.
    pub conservation: Vec<ConservationLine>,
    /// Pumps the end-of-trace drain ran, and whether it was aborted at the
    /// model checker's bound.
    pub drain: Option<(u64, bool)>,
    /// Whether the array reported itself idle once the run finished.
    pub idle_at_end: Option<bool>,
}

impl RunEvidence {
    /// Folds one recorded [`Observation`] into the evidence.
    pub fn absorb(&mut self, observation: Observation) {
        match observation {
            Observation::Poll {
                cap,
                total_due,
                lanes,
            } => self.polls.push((cap, total_due, lanes)),
            Observation::Throttle { scale, floor } => self.throttles.push((scale, floor)),
            Observation::MoveSetEnqueued { kind, blocks } => self.enqueued.push((kind, blocks)),
            Observation::MigrationApply {
                block,
                entry_generation,
                task_generation,
            } => self
                .applies
                .push((block, entry_generation, task_generation)),
            Observation::Colocated { block } => self.colocated.push(block),
            Observation::DrainAborted { pumps } => self.drain = Some((pumps, true)),
        }
    }
}

/// One invariant over a run's [`RunEvidence`]: a stable name, the
/// `CRAID-E4xx` code its violations report under, and the check itself.
///
/// ```
/// use craid::analyze::oracle::{InvariantOracle, ThrottleClamped, RunEvidence};
///
/// let oracle = ThrottleClamped;
/// let mut evidence = RunEvidence::default();
/// evidence.throttles.push((0.05, 0.2)); // scale below the floor
/// let violation = oracle.check(&evidence).expect("the clamp was escaped");
/// assert_eq!(oracle.code(), craid::analyze::codes::THROTTLE_CLAMP);
/// assert!(violation.contains("escaped the clamp"));
/// ```
pub trait InvariantOracle {
    /// Stable human-readable name (`"exactly-one-location"`, ...).
    fn name(&self) -> &'static str;

    /// The `CRAID-E4xx` diagnostic code violations report under.
    fn code(&self) -> &'static str;

    /// Judges the evidence: `Some(message)` describes the first violation
    /// found, `None` means the invariant held.
    fn check(&self, evidence: &RunEvidence) -> Option<String>;
}

/// A block is never simultaneously pending migration and resident in the
/// rebuilt cache partition — exactly one location is authoritative.
pub struct ExactlyOneLocation;

impl InvariantOracle for ExactlyOneLocation {
    fn name(&self) -> &'static str {
        "exactly-one-location"
    }
    fn code(&self) -> &'static str {
        codes::EXACTLY_ONE_LOCATION
    }
    fn check(&self, evidence: &RunEvidence) -> Option<String> {
        evidence.colocated.first().map(|block| {
            format!(
                "block {block} was pending migration and cache-resident at once \
                 ({} offending block(s) in total)",
                evidence.colocated.len()
            )
        })
    }
}

/// Every enqueued block is accounted for: migrated, superseded or still
/// pending — the ledger balances exactly.
pub struct BlockConservation;

impl InvariantOracle for BlockConservation {
    fn name(&self) -> &'static str {
        "block-conservation"
    }
    fn code(&self) -> &'static str {
        codes::BLOCK_CONSERVATION
    }
    fn check(&self, evidence: &RunEvidence) -> Option<String> {
        evidence.conservation.iter().find_map(|line| {
            let settled = line.migrated + line.superseded + line.pending;
            (settled != line.enqueued).then(|| {
                format!(
                    "{}: migrated {} + superseded {} + pending {} = {} blocks, \
                     but {} were enqueued",
                    line.label,
                    line.migrated,
                    line.superseded,
                    line.pending,
                    settled,
                    line.enqueued
                )
            })
        })
    }
}

/// Each poll's fair-share split respects its budget: no lane exceeds its
/// demand, every hungry lane makes progress, the split stays
/// work-conserving, and the cap is only ever exceeded by the one-block
/// floor.
pub struct FairShareBudget;

impl InvariantOracle for FairShareBudget {
    fn name(&self) -> &'static str {
        "fair-share-budget"
    }
    fn code(&self) -> &'static str {
        codes::FAIR_SHARE_BUDGET
    }
    fn check(&self, evidence: &RunEvidence) -> Option<String> {
        evidence.polls.iter().find_map(|(cap, total_due, lanes)| {
            let granted: u64 = lanes.iter().map(|l| l.granted).sum();
            let hungry = lanes.iter().filter(|l| l.want > 0).count() as u64;
            if let Some(over) = lanes.iter().find(|l| l.granted > l.want) {
                return Some(format!(
                    "a {:?} lane was granted {} blocks against a demand of {}",
                    over.kind, over.granted, over.want
                ));
            }
            if let Some(starved) = lanes.iter().find(|l| l.want > 0 && l.granted == 0) {
                return Some(format!(
                    "a hungry {:?} lane (demand {}) was granted nothing this poll",
                    starved.kind, starved.want
                ));
            }
            // Work-conserving: the poll issues min(demand, cap) ...
            if granted < (*total_due).min(*cap) {
                return Some(format!(
                    "the poll granted {granted} blocks with demand {total_due} \
                     and cap {cap} — budget was left on the table"
                ));
            }
            // ... and only the one-block-per-hungry-task floor may push it
            // past the cap.
            if granted > (*cap).max(hungry) {
                return Some(format!(
                    "the poll granted {granted} blocks against a cap of {cap} \
                     ({hungry} hungry lane(s))"
                ));
            }
            None
        })
    }
}

/// A migration task only ever consumes map entries of its own generation —
/// an older task stealing a newer generation's entry would migrate the
/// block with a stale geometry.
pub struct GenerationMonotonic;

impl InvariantOracle for GenerationMonotonic {
    fn name(&self) -> &'static str {
        "generation-monotonic"
    }
    fn code(&self) -> &'static str {
        codes::GENERATION_MONOTONIC
    }
    fn check(&self, evidence: &RunEvidence) -> Option<String> {
        evidence
            .applies
            .iter()
            .find(|(_, entry, task)| entry != task)
            .map(|(block, entry, task)| {
                format!(
                    "migration task (generation {task}) consumed block {block}'s \
                     pending entry belonging to generation {entry}"
                )
            })
    }
}

/// The end-of-trace drain terminates: the pump count stays within
/// [`DRAIN_PUMP_BOUND`] and the array ends idle.
pub struct DrainTerminates;

impl InvariantOracle for DrainTerminates {
    fn name(&self) -> &'static str {
        "drain-terminates"
    }
    fn code(&self) -> &'static str {
        codes::DRAIN_TERMINATES
    }
    fn check(&self, evidence: &RunEvidence) -> Option<String> {
        if let Some((pumps, aborted)) = evidence.drain {
            if aborted || pumps > DRAIN_PUMP_BOUND {
                return Some(format!(
                    "the end-of-trace drain ran {pumps} pumps without settling \
                     (bound {DRAIN_PUMP_BOUND})"
                ));
            }
        }
        if evidence.idle_at_end == Some(false) {
            return Some("the array was not idle when the run ended".to_string());
        }
        None
    }
}

/// Every accepted throttle retarget lands inside `[floor, 1.0]`.
pub struct ThrottleClamped;

impl InvariantOracle for ThrottleClamped {
    fn name(&self) -> &'static str {
        "throttle-clamped"
    }
    fn code(&self) -> &'static str {
        codes::THROTTLE_CLAMP
    }
    fn check(&self, evidence: &RunEvidence) -> Option<String> {
        evidence
            .throttles
            .iter()
            .find(|(scale, floor)| !scale.is_finite() || *scale < *floor || *scale > 1.0)
            .map(|(scale, floor)| {
                format!("throttle scale {scale} escaped the clamp [{floor}, 1.0]")
            })
    }
}

/// The full oracle library, in code order.
pub fn all_oracles() -> Vec<Box<dyn InvariantOracle>> {
    vec![
        Box::new(ExactlyOneLocation),
        Box::new(BlockConservation),
        Box::new(FairShareBudget),
        Box::new(GenerationMonotonic),
        Box::new(DrainTerminates),
        Box::new(ThrottleClamped),
    ]
}

/// Judges `evidence` against the whole library, returning one diagnostic
/// per violated oracle (empty when every invariant held).
pub fn check_all(evidence: &RunEvidence) -> Vec<Diagnostic> {
    all_oracles()
        .iter()
        .filter_map(|oracle| {
            oracle.check(evidence).map(|message| {
                Diagnostic::error(
                    oracle.code(),
                    format!("invariant.{}", oracle.name()),
                    message,
                )
                .with_help(
                    "this is a scheduler-interleaving violation, not a config error; \
                     rerun under `scenario_file --explore` to reproduce and shrink it",
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::TaskKind;

    #[test]
    fn empty_evidence_is_clean() {
        assert!(check_all(&RunEvidence::default()).is_empty());
    }

    #[test]
    fn each_oracle_fires_on_its_own_evidence() {
        let mut e = RunEvidence::default();
        e.colocated.push(42);
        e.conservation.push(ConservationLine {
            label: "pc-migration",
            enqueued: 5,
            migrated: 3,
            superseded: 1,
            pending: 0,
        });
        e.polls.push((
            100,
            50,
            vec![PollLane {
                kind: TaskKind::Rebuild,
                want: 50,
                granted: 0,
            }],
        ));
        e.applies.push((9, 2, 1));
        e.drain = Some((DRAIN_PUMP_BOUND + 1, true));
        e.throttles.push((1.5, 0.2));

        let diagnostics = check_all(&e);
        let codes_found: Vec<&str> = diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(
            codes_found,
            vec![
                codes::EXACTLY_ONE_LOCATION,
                codes::BLOCK_CONSERVATION,
                codes::FAIR_SHARE_BUDGET,
                codes::GENERATION_MONOTONIC,
                codes::DRAIN_TERMINATES,
                codes::THROTTLE_CLAMP,
            ]
        );
        assert!(diagnostics.iter().all(|d| d.is_error()));
    }

    // Direct per-oracle coverage (E401–E406): every oracle is exercised in
    // both directions against hand-built evidence, independently of the
    // model checker that normally assembles it.

    #[test]
    fn exactly_one_location_fires_per_colocated_block() {
        assert!(ExactlyOneLocation.check(&RunEvidence::default()).is_none());
        let mut e = RunEvidence::default();
        e.colocated.push(7);
        e.colocated.push(9);
        let msg = ExactlyOneLocation.check(&e).expect("colocated block");
        assert!(msg.contains("block 7"), "first offender is named: {msg}");
        assert!(msg.contains("2 offending"), "total is reported: {msg}");
        assert_eq!(ExactlyOneLocation.code(), codes::EXACTLY_ONE_LOCATION);
    }

    #[test]
    fn block_conservation_judges_the_ledger_exactly() {
        let line = |migrated, superseded, pending| ConservationLine {
            label: "pc-migration",
            enqueued: 10,
            migrated,
            superseded,
            pending,
        };
        // Balanced: clean, whatever the split.
        for balanced in [line(10, 0, 0), line(0, 10, 0), line(0, 0, 10), line(4, 3, 3)] {
            let mut e = RunEvidence::default();
            e.conservation.push(balanced);
            assert!(BlockConservation.check(&e).is_none(), "{balanced:?}");
        }
        // A lost block and a double-counted block both fire.
        for broken in [line(9, 0, 0), line(10, 1, 0)] {
            let mut e = RunEvidence::default();
            e.conservation.push(broken);
            let msg = BlockConservation.check(&e).expect("imbalanced ledger");
            assert!(msg.contains("pc-migration"), "label is named: {msg}");
        }
        assert_eq!(BlockConservation.code(), codes::BLOCK_CONSERVATION);
    }

    #[test]
    fn fair_share_budget_rejects_each_violation_kind() {
        let poll = |cap, lanes: Vec<PollLane>| {
            let total: u64 = lanes.iter().map(|l| l.want).sum();
            let mut e = RunEvidence::default();
            e.polls.push((cap, total, lanes));
            e
        };
        let lane = |want, granted| PollLane {
            kind: TaskKind::Rebuild,
            want,
            granted,
        };
        // An exact work-conserving split is clean.
        assert!(FairShareBudget
            .check(&poll(8, vec![lane(5, 5), lane(3, 3)]))
            .is_none());
        // Over-grant: a lane got more than it asked for.
        let msg = FairShareBudget
            .check(&poll(8, vec![lane(2, 4)]))
            .expect("over-grant");
        assert!(msg.contains("granted 4"), "{msg}");
        // Starvation: a hungry lane got nothing while others progressed.
        let msg = FairShareBudget
            .check(&poll(8, vec![lane(4, 4), lane(4, 0)]))
            .expect("starved lane");
        assert!(msg.contains("granted nothing"), "{msg}");
        // Not work-conserving: budget left on the table.
        let msg = FairShareBudget
            .check(&poll(8, vec![lane(6, 3)]))
            .expect("left budget");
        assert!(msg.contains("left on the table"), "{msg}");
        // Cap escape beyond the one-block floor.
        let msg = FairShareBudget
            .check(&poll(2, vec![lane(9, 9)]))
            .expect("cap escape");
        assert!(msg.contains("against a cap"), "{msg}");
        assert_eq!(FairShareBudget.code(), codes::FAIR_SHARE_BUDGET);
    }

    #[test]
    fn generation_monotonic_requires_exact_generation_match() {
        let mut e = RunEvidence::default();
        e.applies.push((5, 3, 3));
        assert!(GenerationMonotonic.check(&e).is_none());
        // Both directions of mismatch fire: an old task consuming a newer
        // entry and a new task consuming an older one.
        for (entry, task) in [(2u64, 1u64), (1, 2)] {
            let mut e = RunEvidence::default();
            e.applies.push((5, entry, task));
            let msg = GenerationMonotonic.check(&e).expect("generation mismatch");
            assert!(msg.contains(&format!("generation {entry}")), "{msg}");
        }
        assert_eq!(GenerationMonotonic.code(), codes::GENERATION_MONOTONIC);
    }

    #[test]
    fn drain_terminates_checks_bound_abort_and_idleness() {
        // Exactly at the bound, settled, idle: clean.
        let mut e = RunEvidence {
            drain: Some((DRAIN_PUMP_BOUND, false)),
            idle_at_end: Some(true),
            ..RunEvidence::default()
        };
        assert!(DrainTerminates.check(&e).is_none());
        // One pump over the bound fires even without the abort flag.
        e.drain = Some((DRAIN_PUMP_BOUND + 1, false));
        assert!(DrainTerminates.check(&e).is_some());
        // An aborted drain fires regardless of the count.
        e.drain = Some((3, true));
        assert!(DrainTerminates.check(&e).is_some());
        // A non-idle end fires even when no drain evidence was recorded.
        let e = RunEvidence {
            idle_at_end: Some(false),
            ..RunEvidence::default()
        };
        let msg = DrainTerminates.check(&e).expect("not idle");
        assert!(msg.contains("not idle"), "{msg}");
        assert_eq!(DrainTerminates.code(), codes::DRAIN_TERMINATES);
    }

    #[test]
    fn throttle_clamped_accepts_the_closed_interval_only() {
        let check = |scale: f64, floor: f64| {
            let mut e = RunEvidence::default();
            e.throttles.push((scale, floor));
            ThrottleClamped.check(&e)
        };
        // Both endpoints of [floor, 1.0] are legal retargets.
        assert!(check(0.2, 0.2).is_none());
        assert!(check(1.0, 0.2).is_none());
        assert!(check(0.6, 0.2).is_none());
        // Below the floor, above 1.0, and non-finite all escape the clamp.
        assert!(check(0.1, 0.2).is_some());
        assert!(check(1.1, 0.2).is_some());
        assert!(check(f64::NAN, 0.2).is_some());
        assert!(check(f64::INFINITY, 0.2).is_some());
        assert_eq!(ThrottleClamped.code(), codes::THROTTLE_CLAMP);
    }

    #[test]
    fn fair_share_accepts_the_floor_overshoot() {
        // cap 1, two hungry lanes: the one-block floor grants 2 > cap,
        // which the engine documents and the oracle must accept.
        let mut e = RunEvidence::default();
        e.polls.push((
            1,
            20,
            vec![
                PollLane {
                    kind: TaskKind::Rebuild,
                    want: 10,
                    granted: 1,
                },
                PollLane {
                    kind: TaskKind::ExpansionMigration,
                    want: 10,
                    granted: 1,
                },
            ],
        ));
        assert!(FairShareBudget.check(&e).is_none());
    }

    #[test]
    fn absorb_routes_observations() {
        let mut e = RunEvidence::default();
        e.absorb(Observation::Poll {
            cap: 8,
            total_due: 4,
            lanes: vec![PollLane {
                kind: TaskKind::Rebuild,
                want: 4,
                granted: 4,
            }],
        });
        e.absorb(Observation::Throttle {
            scale: 0.5,
            floor: 0.2,
        });
        e.absorb(Observation::MigrationApply {
            block: 3,
            entry_generation: 1,
            task_generation: 1,
        });
        e.absorb(Observation::MoveSetEnqueued {
            kind: TaskKind::ArchiveRestripe,
            blocks: 16,
        });
        assert_eq!(e.polls.len(), 1);
        assert_eq!(e.throttles, vec![(0.5, 0.2)]);
        assert_eq!(e.applies, vec![(3, 1, 1)]);
        assert_eq!(e.enqueued, vec![(TaskKind::ArchiveRestripe, 16)]);
        assert!(check_all(&e).is_empty());

        // An aborted drain is itself evidence of a violation.
        e.absorb(Observation::Colocated { block: 4 });
        e.absorb(Observation::DrainAborted { pumps: 99 });
        assert_eq!(e.colocated, vec![4]);
        assert_eq!(e.drain, Some((99, true)));
        assert_eq!(
            check_all(&e).iter().map(|d| d.code).collect::<Vec<_>>(),
            vec![codes::EXACTLY_ONE_LOCATION, codes::DRAIN_TERMINATES]
        );
    }
}
