//! Pre-run static analysis of scenarios and array configurations.
//!
//! The simulator's misconfigurations used to surface in one of two bad
//! ways: as a first-error-wins [`CraidError`] string once the run had
//! already started, or — for impossible *timelines* — as a mid-run event
//! failure after minutes of replay. This module analyses a scenario
//! **before any simulated I/O happens**, as a pure function of the spec
//! and its event schedule, and reports every finding as a structured
//! [`Diagnostic`] with a stable machine-readable code.
//!
//! Three passes run, in order:
//!
//! 1. **Storage-graph rules** ([`graph`]): the resolved [`ArrayConfig`]
//!    is lowered into an explicit device / parity-group / partition graph
//!    ([`graph::StorageGraph`]) and an extensible set of
//!    [`graph::Rule`] objects checks capacity arithmetic, parity-group
//!    divisibility, cache-partition bindings, fair-share weights, QoS
//!    ranges and maintenance-rate sanity.
//! 2. **Symbolic timeline interpretation** ([`timeline`]): the
//!    [`ScheduledEvent`] schedule is abstractly replayed over per-disk
//!    state machines (healthy / failed / rebuilding), expansion
//!    generations and the activation policy — catching repairs of
//!    healthy disks, double failures under the single-fault model,
//!    expansions that shrink or break the array, events beyond the reach
//!    of the workload, and `wait-for-repair` activations that can
//!    provably never fire.
//! 3. **Scenario-surface rules** (this module): the scenario's own knobs
//!    (`pc_fraction`, request counts, phase-swap sources).
//!
//! Beyond the static passes, [`explore`] *dynamically* model-checks the
//! scheduler's decision space on a small-scope projection of the
//! scenario, judging every interleaving against the [`oracle`] invariant
//! library and folding violations into the same [`Analysis`] as
//! `CRAID-E4xx` diagnostics.
//!
//! Every diagnostic code is stable and documented in [`codes`]; golden
//! tests pin the `examples/scenarios/invalid/` corpus to its codes.
//!
//! ```
//! use craid::Scenario;
//!
//! let analysis = Scenario::builder().requests(400).small_test().build().analyze();
//! assert!(analysis.is_clean());
//! ```

pub mod explore;
pub mod graph;
pub mod oracle;
pub mod timeline;

use std::fmt;

use craid_trace::SyntheticWorkload;

use crate::config::ArrayConfig;
use crate::error::CraidError;
use crate::scenario::{Scenario, ScheduledEvent};

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but runnable: the run proceeds, probably not as the
    /// author intended.
    Warning,
    /// Impossible: the run would be rejected (or silently wrong).
    Error,
}

impl Severity {
    /// The lowercase label used when rendering.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured finding of the static analyser.
///
/// Renders as `error[CRAID-E102] array.parity_group: <message>`; the
/// `code` is stable across releases, the `path` names the offending
/// field in scenario-file notation (`array.qos.floor`, `events[2].disk`)
/// and `help` suggests the fix.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`CRAID-Exxx` / `CRAID-Wxxx`).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Scenario-file path of the offending field.
    pub path: String,
    /// Human-readable description of the problem.
    pub message: String,
    /// A suggested fix, when one is obvious.
    pub help: Option<String>,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, path: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            path: path.into(),
            message: message.into(),
            help: None,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            path: path.into(),
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a suggested fix.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// True for error severity.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.path, self.message
        )
    }
}

/// The result of analysing a scenario or configuration: every finding,
/// in pass order (graph rules, then timeline, then scenario surface).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Analysis {
    /// Every diagnostic the passes emitted.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.is_error())
    }

    /// True when any error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// True when there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// All codes, in emission order (golden tests pin these).
    pub fn codes(&self) -> Vec<&'static str> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// Converts the analysis into a result: `Err` on the first
    /// error-severity finding (warn-by-default — warnings pass).
    ///
    /// # Errors
    ///
    /// Returns [`CraidError::InvalidConfig`] for configuration findings
    /// and [`CraidError::InvalidSchedule`] for timeline (`CRAID-E2xx`)
    /// findings.
    pub fn into_result(self) -> Result<(), CraidError> {
        match self.diagnostics.into_iter().find(|d| d.is_error()) {
            Some(d) => Err(CraidError::from_diagnostic(d)),
            None => Ok(()),
        }
    }

    /// Converts the analysis into a result treating **warnings as
    /// errors** (the CI `deny` mode).
    ///
    /// # Errors
    ///
    /// Returns the first finding of any severity as a [`CraidError`].
    pub fn into_deny_result(self) -> Result<(), CraidError> {
        match self.diagnostics.into_iter().next() {
            Some(d) => Err(CraidError::from_diagnostic(d)),
            None => Ok(()),
        }
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
            if let Some(help) = &d.help {
                writeln!(f, "  help: {help}")?;
            }
        }
        Ok(())
    }
}

/// The stable diagnostic codes, grouped by pass.
///
/// `CRAID-E1xx` are storage-graph (configuration) errors, `CRAID-E2xx`
/// timeline errors, `CRAID-W3xx` timeline warnings. Codes never change
/// meaning; retired codes are not reused.
pub mod codes {
    /// The strategy does not match the array type it was given to.
    pub const STRATEGY_MISMATCH: &str = "CRAID-E100";
    /// Fewer than 2 mechanical disks.
    pub const TOO_FEW_DISKS: &str = "CRAID-E101";
    /// Parity-group width < 2 or not dividing the disk count.
    pub const PARITY_GROUP: &str = "CRAID-E102";
    /// Zero stripe unit.
    pub const STRIPE_UNIT: &str = "CRAID-E103";
    /// Empty dataset.
    pub const EMPTY_DATASET: &str = "CRAID-E104";
    /// CRAID strategy with an empty cache partition.
    pub const EMPTY_CACHE_PARTITION: &str = "CRAID-E105";
    /// SSD cache tier with fewer than 2 devices.
    pub const SSD_TIER_TOO_SMALL: &str = "CRAID-E106";
    /// Aggregated archive with no RAID sets.
    pub const NO_EXPANSION_SETS: &str = "CRAID-E107";
    /// Aggregation schedule not summing to the disk count.
    pub const EXPANSION_SETS_SUM: &str = "CRAID-E108";
    /// An aggregation set with fewer than 2 disks.
    pub const EXPANSION_SET_TOO_SMALL: &str = "CRAID-E109";
    /// Disks smaller than one stripe unit.
    pub const DISK_TOO_SMALL: &str = "CRAID-E110";
    /// Non-finite or non-positive rebuild rate.
    pub const REBUILD_RATE: &str = "CRAID-E111";
    /// Non-finite or non-positive fair-share weight.
    pub const SHARE_WEIGHT: &str = "CRAID-E112";
    /// Invalid migration rate (zero, negative or NaN).
    pub const MIGRATION_RATE: &str = "CRAID-E113";
    /// Dataset larger than the archive partition.
    pub const DATASET_DOES_NOT_FIT: &str = "CRAID-E114";
    /// QoS SLO without any target.
    pub const QOS_NO_TARGET: &str = "CRAID-E115";
    /// Invalid QoS latency target.
    pub const QOS_LATENCY_TARGET: &str = "CRAID-E116";
    /// QoS percentile outside [0, 1].
    pub const QOS_PERCENTILE: &str = "CRAID-E117";
    /// Invalid QoS queue-depth target.
    pub const QOS_QUEUE_DEPTH: &str = "CRAID-E118";
    /// QoS maintenance floor outside (0, 1].
    pub const QOS_FLOOR: &str = "CRAID-E119";
    /// Invalid QoS observation window.
    pub const QOS_WINDOW: &str = "CRAID-E120";
    /// Invalid QoS additive-increase gain.
    pub const QOS_INCREASE_GAIN: &str = "CRAID-E121";
    /// QoS multiplicative-decrease factor outside (0, 1).
    pub const QOS_DECREASE_FACTOR: &str = "CRAID-E122";
    /// Non-finite or non-positive cache-partition fraction.
    pub const PC_FRACTION: &str = "CRAID-E130";
    /// A workload source with zero requests.
    pub const EMPTY_WORKLOAD: &str = "CRAID-E131";

    /// Repair of a disk that is not failed.
    pub const REPAIR_WITHOUT_FAILURE: &str = "CRAID-E201";
    /// Second failure while the array is already degraded.
    pub const DOUBLE_FAILURE: &str = "CRAID-E202";
    /// Failure/repair of a disk index the array can never have.
    pub const NO_SUCH_DISK: &str = "CRAID-E203";
    /// A `wait-for-repair` activation that provably never fires.
    pub const UNREACHABLE_ACTIVATION: &str = "CRAID-E204";
    /// An expansion adding zero disks.
    pub const EXPAND_ADDS_NOTHING: &str = "CRAID-E205";
    /// An expansion while a disk is failed.
    pub const EXPAND_ON_FAILED_ARRAY: &str = "CRAID-E206";
    /// An expansion breaking the parity-group divisibility.
    pub const EXPAND_BREAKS_PARITY: &str = "CRAID-E207";
    /// An aggregated expansion adding fewer than 2 disks.
    pub const EXPAND_SET_TOO_SMALL: &str = "CRAID-E208";

    /// An event scheduled beyond the end of the replay.
    pub const EVENT_BEYOND_REPLAY: &str = "CRAID-W301";
    /// A failure of a disk whose expansion may still be deferred.
    pub const DISK_MAY_NOT_EXIST_YET: &str = "CRAID-W302";
    /// A `wait-for-repair` activation that may never fire.
    pub const ACTIVATION_MAY_STALL: &str = "CRAID-W303";
    /// An exact duplicate event at the same timestamp.
    pub const DUPLICATE_EVENT: &str = "CRAID-W304";
    /// Conflicting policy switches at the same instant.
    pub const CONFLICTING_POLICY_SWITCH: &str = "CRAID-W305";

    // `CRAID-E4xx` are dynamic invariant violations found by the
    // small-scope model checker ([`super::explore`]): a scheduler
    // interleaving under which a run of the *real* engine broke one of
    // the [`super::oracle`] invariants (or panicked).

    /// An explored branch panicked inside the engine.
    pub const EXPLORE_PANIC: &str = "CRAID-E400";
    /// A block was pending migration and cache-resident at once.
    pub const EXACTLY_ONE_LOCATION: &str = "CRAID-E401";
    /// A move set's block accounting did not balance.
    pub const BLOCK_CONSERVATION: &str = "CRAID-E402";
    /// A fair-share poll violated its budget arithmetic.
    pub const FAIR_SHARE_BUDGET: &str = "CRAID-E403";
    /// A migration task consumed a map entry of another generation.
    pub const GENERATION_MONOTONIC: &str = "CRAID-E404";
    /// An end-of-trace drain failed to terminate within its bound.
    pub const DRAIN_TERMINATES: &str = "CRAID-E405";
    /// A throttle retarget escaped the `[floor, 1.0]` clamp.
    pub const THROTTLE_CLAMP: &str = "CRAID-E406";
}

/// Analyses a scenario: storage-graph rules over the resolved config,
/// symbolic timeline interpretation, and the scenario-surface checks.
///
/// Pure: no trace is generated and no simulated I/O happens — the
/// workload footprint and duration are resolved from the scaling
/// formulas alone.
pub fn analyze_scenario(scenario: &Scenario) -> Analysis {
    let mut diagnostics = Vec::new();

    // Scenario surface: the two knobs trace generation asserts on.
    let fraction = scenario.array.pc_fraction;
    if !fraction.is_finite() || fraction <= 0.0 {
        diagnostics.push(
            Diagnostic::error(
                codes::PC_FRACTION,
                "array.pc_fraction",
                format!("pc_fraction must be finite and positive, got {fraction}"),
            )
            .with_help("the paper sweeps fractions in (0, 1]; 0.1 is the usual starting point"),
        );
    }
    if scenario.workload.requests == 0 {
        diagnostics.push(
            Diagnostic::error(
                codes::EMPTY_WORKLOAD,
                "workload.requests",
                "workload needs at least one request",
            )
            .with_help("set requests to the scaled trace length (the drills use 400-5000)"),
        );
    }
    for (index, event) in scenario.events.iter().enumerate() {
        if let ScheduledEvent::WorkloadPhase {
            workload: Some(source),
            ..
        } = event
        {
            if source.requests == 0 {
                diagnostics.push(
                    Diagnostic::error(
                        codes::EMPTY_WORKLOAD,
                        format!("events[{index}].requests"),
                        "a phase-swap workload needs at least one request",
                    )
                    .with_help("the swapped-in segment is generated just like the base workload"),
                );
            }
        }
    }

    // The remaining passes need the resolved config, which needs the
    // statically-scaled footprint; skip them when the surface checks
    // already failed (the scaling formulas assert on these inputs).
    if !diagnostics.is_empty() {
        return Analysis { diagnostics };
    }

    let footprint = scenario.static_footprint_blocks();
    // The runtime raises `dataset_blocks` to the composed trace's
    // footprint: the max over the base segment and every swapped-in
    // phase segment. Mirror that here so capacity findings match.
    let dataset = scenario
        .events
        .iter()
        .filter_map(|e| match e {
            ScheduledEvent::WorkloadPhase {
                workload: Some(source),
                ..
            } => Some(
                SyntheticWorkload::paper_scaled_to(source.id, source.requests)
                    .scaled_footprint_blocks(),
            ),
            ScheduledEvent::WorkloadPhase { workload: None, .. }
            | ScheduledEvent::Expand { .. }
            | ScheduledEvent::PolicySwitch { .. }
            | ScheduledEvent::DiskFailure { .. }
            | ScheduledEvent::DiskRepair { .. } => None,
        })
        .fold(footprint, u64::max);
    let mut config = scenario.array_config_for_footprint(footprint);
    config.dataset_blocks = config.dataset_blocks.max(dataset);

    diagnostics.extend(graph::check_config(&config));
    diagnostics.extend(timeline::check_schedule(
        &config,
        &scenario.events,
        Some(scenario.static_duration_secs()),
    ));
    Analysis { diagnostics }
}

/// Analyses a raw configuration + schedule pair (no scenario surface,
/// no replay-horizon information). [`crate::Simulation::analyze`] is the
/// public entry point.
pub fn analyze_config_events(config: &ArrayConfig, events: &[ScheduledEvent]) -> Analysis {
    let mut diagnostics = graph::check_config(config);
    diagnostics.extend(timeline::check_schedule(config, events, None));
    Analysis { diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render_with_code_path_and_severity() {
        let d = Diagnostic::error(codes::PARITY_GROUP, "array.parity_group", "does not divide")
            .with_help("pick a divisor");
        assert_eq!(
            d.to_string(),
            "error[CRAID-E102] array.parity_group: does not divide"
        );
        let w = Diagnostic::warning(codes::EVENT_BEYOND_REPLAY, "events[0]", "too late");
        assert!(w.to_string().starts_with("warning[CRAID-W301]"));
        assert!(!w.is_error());
    }

    #[test]
    fn analysis_partitions_and_converts() {
        let analysis = Analysis {
            diagnostics: vec![
                Diagnostic::warning(codes::EVENT_BEYOND_REPLAY, "events[0]", "late"),
                Diagnostic::error(codes::TOO_FEW_DISKS, "array.disks", "one disk"),
            ],
        };
        assert_eq!(analysis.errors().count(), 1);
        assert_eq!(analysis.warnings().count(), 1);
        assert!(analysis.has_errors());
        assert!(!analysis.is_clean());
        assert_eq!(
            analysis.codes(),
            vec![codes::EVENT_BEYOND_REPLAY, codes::TOO_FEW_DISKS]
        );
        let err = analysis.clone().into_result().unwrap_err();
        assert!(err.to_string().contains("CRAID-E101"));
        // Deny mode trips on the warning first.
        let err = analysis.into_deny_result().unwrap_err();
        assert!(err.to_string().contains("CRAID-W301"));

        let clean = Analysis::default();
        assert!(clean.clone().into_result().is_ok());
        assert!(clean.into_deny_result().is_ok());
    }

    #[test]
    fn default_builder_scenario_is_clean() {
        let analysis = analyze_scenario(&Scenario::builder().build());
        assert!(analysis.is_clean(), "{analysis}");
    }

    #[test]
    fn scenario_surface_errors_short_circuit() {
        let mut s = Scenario::builder().build();
        s.workload.requests = 0;
        s.array.pc_fraction = -1.0;
        let analysis = analyze_scenario(&s);
        assert_eq!(
            analysis.codes(),
            vec![codes::PC_FRACTION, codes::EMPTY_WORKLOAD]
        );
    }
}
