//! Storage-graph lowering and the configuration rule engine.
//!
//! An [`ArrayConfig`] is a flat bag of knobs; the relationships between
//! them (which devices form which parity groups, where the cache
//! partition lives, how much archive capacity is left for the dataset)
//! are implicit in the array-construction code. This pass makes them
//! explicit: [`StorageGraph::lower`] turns a config into a graph of
//! device, parity-group and partition nodes — **never panicking, even
//! on garbage input** — and an extensible list of [`Rule`] objects
//! checks invariants over that graph, each emitting structured
//! [`Diagnostic`]s instead of a first-error-wins string.
//!
//! [`ArrayConfig::validate`] delegates here and returns the first
//! error-severity finding, so the legacy `Result` surface and the
//! analyser render identical messages by construction.

use crate::analyze::{codes, Diagnostic};
use crate::config::ArrayConfig;
use crate::qos::SloSpec;

/// What kind of device a [`DeviceNode`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// A mechanical disk.
    Hdd,
    /// A dedicated cache SSD.
    Ssd,
}

/// One device of the lowered storage graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceNode {
    /// Device index (mechanical disks first, then SSDs).
    pub id: usize,
    /// Mechanical disk or SSD.
    pub kind: DeviceKind,
    /// Raw capacity in blocks.
    pub capacity_blocks: u64,
}

/// One parity group of the archive partition.
#[derive(Debug, Clone, PartialEq)]
pub struct ParityGroupNode {
    /// Member device ids.
    pub members: Vec<usize>,
    /// The aggregation step this group came from (0 for full-width
    /// layouts).
    pub generation: usize,
}

/// Where the cache partition's blocks live.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePartitionNode {
    /// The devices the partition is bound to.
    pub devices: Vec<usize>,
    /// Reserved blocks per device, when the geometry allows computing
    /// it (`None` on broken geometry — a rule reports the breakage).
    pub blocks_per_device: Option<u64>,
    /// Requested capacity in data blocks.
    pub requested_blocks: u64,
}

/// The lowered storage graph: devices, parity groups, partitions and
/// the capacity arithmetic derived from them. Lowering is total — any
/// config lowers, and broken relationships surface as `None` fields
/// plus rule diagnostics rather than panics.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageGraph {
    /// The configuration the graph was lowered from.
    pub config: ArrayConfig,
    /// Every device, mechanical disks first.
    pub devices: Vec<DeviceNode>,
    /// Archive parity groups (one per aggregation set for `+`
    /// archives, `disks / parity_group` full-width groups otherwise).
    pub parity_groups: Vec<ParityGroupNode>,
    /// The cache partition, for CRAID strategies.
    pub cache: Option<CachePartitionNode>,
    /// Client-visible data capacity of the archive partition, when the
    /// geometry is sound enough to compute it.
    pub archive_data_capacity: Option<u64>,
}

impl StorageGraph {
    /// Lowers a configuration into the explicit graph. Total: never
    /// panics, whatever the config holds.
    pub fn lower(config: &ArrayConfig) -> StorageGraph {
        let mut devices: Vec<DeviceNode> = (0..config.disks)
            .map(|id| DeviceNode {
                id,
                kind: DeviceKind::Hdd,
                capacity_blocks: config.hdd_capacity_blocks,
            })
            .collect();
        if config.strategy.uses_ssd_cache() {
            devices.extend((0..config.ssd_cache_devices).map(|i| DeviceNode {
                id: config.disks + i,
                kind: DeviceKind::Ssd,
                capacity_blocks: config.ssd.capacity_blocks,
            }));
        }

        let parity_groups = if config.strategy.archive_is_aggregated() {
            let mut groups = Vec::new();
            let mut next = 0usize;
            for (generation, &set) in config.expansion_sets.iter().enumerate() {
                let end = next.saturating_add(set).min(config.disks);
                groups.push(ParityGroupNode {
                    members: (next..end).collect(),
                    generation,
                });
                next = end;
            }
            groups
        } else if config.parity_group >= 2 && config.disks.is_multiple_of(config.parity_group) {
            (0..config.disks / config.parity_group)
                .map(|g| ParityGroupNode {
                    members: (g * config.parity_group..(g + 1) * config.parity_group).collect(),
                    generation: 0,
                })
                .collect()
        } else {
            Vec::new()
        };

        // Guarded capacity arithmetic: the raw helpers divide by the
        // data units per row, which is zero on broken geometry.
        let geometry_sound = config.stripe_unit > 0
            && config.disks >= 2
            && config.parity_group >= 2
            && config.disks.is_multiple_of(config.parity_group)
            && config.data_units_per_row() > 0;

        let cache = if config.strategy.is_craid() {
            let (devices, blocks_per_device) = if config.strategy.uses_ssd_cache() {
                let ids = (config.disks..config.disks + config.ssd_cache_devices).collect();
                let blocks = (config.ssd_cache_devices >= 2 && config.stripe_unit > 0)
                    .then(|| config.pc_blocks_per_ssd());
                (ids, blocks)
            } else {
                let ids = (0..config.disks).collect();
                let blocks = geometry_sound.then(|| config.pc_blocks_per_hdd());
                (ids, blocks)
            };
            Some(CachePartitionNode {
                devices,
                blocks_per_device,
                requested_blocks: config.pc_capacity_blocks,
            })
        } else {
            None
        };

        let archive_data_capacity = geometry_sound.then(|| {
            config.pa_blocks_per_hdd() / config.stripe_unit
                * config.data_units_per_row()
                * config.stripe_unit
        });

        StorageGraph {
            config: config.clone(),
            devices,
            parity_groups,
            cache,
            archive_data_capacity,
        }
    }

    /// The mechanical disks of the graph.
    pub fn hdds(&self) -> impl Iterator<Item = &DeviceNode> {
        self.devices.iter().filter(|d| d.kind == DeviceKind::Hdd)
    }
}

/// One extensible configuration check over the lowered graph.
///
/// Rules append every violation they find; severity and code live in
/// the diagnostics themselves. [`default_rules`] lists the built-in
/// set in the order [`ArrayConfig::validate`] historically checked, so
/// the first emitted error matches the legacy first-error behaviour.
pub trait Rule {
    /// Short identifier (used in docs and debugging).
    fn name(&self) -> &'static str;
    /// Appends every violation of this rule to `out`.
    fn check(&self, graph: &StorageGraph, out: &mut Vec<Diagnostic>);
}

/// Array shape: disk count, parity geometry, stripe unit, dataset.
struct ShapeRule;

impl Rule for ShapeRule {
    fn name(&self) -> &'static str {
        "shape"
    }

    fn check(&self, graph: &StorageGraph, out: &mut Vec<Diagnostic>) {
        let config = &graph.config;
        if config.disks < 2 {
            out.push(
                Diagnostic::error(
                    codes::TOO_FEW_DISKS,
                    "array.disks",
                    format!("need at least 2 disks, got {}", config.disks),
                )
                .with_help("the paper's testbed uses 50; the small test preset uses 8"),
            );
        }
        if config.parity_group < 2 || !config.disks.is_multiple_of(config.parity_group) {
            out.push(
                Diagnostic::error(
                    codes::PARITY_GROUP,
                    "array.parity_group",
                    format!(
                        "parity group {} must be >= 2 and divide the disk count {}",
                        config.parity_group, config.disks
                    ),
                )
                .with_help("full-width RAID-5 layouts split the disks into equal parity groups"),
            );
        }
        if config.stripe_unit == 0 {
            out.push(Diagnostic::error(
                codes::STRIPE_UNIT,
                "array.stripe_unit",
                "stripe unit must be positive",
            ));
        }
        if config.dataset_blocks == 0 {
            out.push(Diagnostic::error(
                codes::EMPTY_DATASET,
                "array.dataset_blocks",
                "dataset must contain at least one block",
            ));
        }
    }
}

/// Cache-partition binding: CRAID needs capacity; the SSD tier needs
/// enough devices to form a parity group.
struct CacheBindingRule;

impl Rule for CacheBindingRule {
    fn name(&self) -> &'static str {
        "cache-binding"
    }

    fn check(&self, graph: &StorageGraph, out: &mut Vec<Diagnostic>) {
        let config = &graph.config;
        if let Some(cache) = &graph.cache {
            if cache.requested_blocks == 0 {
                out.push(
                    Diagnostic::error(
                        codes::EMPTY_CACHE_PARTITION,
                        "array.pc_capacity_blocks",
                        "CRAID strategies need a non-empty cache partition",
                    )
                    .with_help(
                        "scenarios size it via pc_fraction; direct configs via pc_capacity_blocks",
                    ),
                );
            }
        }
        if config.strategy.uses_ssd_cache() && config.ssd_cache_devices < 2 {
            out.push(Diagnostic::error(
                codes::SSD_TIER_TOO_SMALL,
                "array.ssd_cache_devices",
                "the SSD cache tier needs at least 2 devices",
            ));
        }
    }
}

/// Aggregation schedule of `+` archives: non-empty, summing to the
/// disk count, every set wide enough to be a RAID set.
struct AggregationRule;

impl Rule for AggregationRule {
    fn name(&self) -> &'static str {
        "aggregation-schedule"
    }

    fn check(&self, graph: &StorageGraph, out: &mut Vec<Diagnostic>) {
        let config = &graph.config;
        if !config.strategy.archive_is_aggregated() {
            return;
        }
        if config.expansion_sets.is_empty() {
            out.push(Diagnostic::error(
                codes::NO_EXPANSION_SETS,
                "array.expansion_sets",
                "an aggregated archive needs at least one RAID set",
            ));
        }
        if !config.expansion_sets.is_empty()
            && config.expansion_sets.iter().sum::<usize>() != config.disks
        {
            out.push(
                Diagnostic::error(
                    codes::EXPANSION_SETS_SUM,
                    "array.expansion_sets",
                    format!(
                        "expansion sets {:?} must sum to the disk count {}",
                        config.expansion_sets, config.disks
                    ),
                )
                .with_help("each entry is the disk count of one aggregation step"),
            );
        }
        if config.expansion_sets.iter().any(|&s| s < 2) {
            out.push(Diagnostic::error(
                codes::EXPANSION_SET_TOO_SMALL,
                "array.expansion_sets",
                "every RAID set needs at least 2 disks",
            ));
        }
    }
}

/// Per-device capacity sanity.
struct DeviceCapacityRule;

impl Rule for DeviceCapacityRule {
    fn name(&self) -> &'static str {
        "device-capacity"
    }

    fn check(&self, graph: &StorageGraph, out: &mut Vec<Diagnostic>) {
        let config = &graph.config;
        if config.hdd_capacity_blocks < config.stripe_unit {
            out.push(Diagnostic::error(
                codes::DISK_TOO_SMALL,
                "array.hdd_capacity_blocks",
                "disks are smaller than one stripe unit",
            ));
        }
    }
}

/// Background-maintenance pacing: the rebuild rate.
struct RebuildRateRule;

impl Rule for RebuildRateRule {
    fn name(&self) -> &'static str {
        "rebuild-rate"
    }

    fn check(&self, graph: &StorageGraph, out: &mut Vec<Diagnostic>) {
        let rate = graph.config.rebuild_rate_blocks_per_sec;
        if !rate.is_finite() || rate <= 0.0 {
            out.push(Diagnostic::error(
                codes::REBUILD_RATE,
                "array.rebuild_rate",
                format!("rebuild rate must be finite and positive, got {rate}"),
            ));
        }
    }
}

/// Fair-share weights of the background engine.
struct FairShareRule;

impl Rule for FairShareRule {
    fn name(&self) -> &'static str {
        "fair-shares"
    }

    fn check(&self, graph: &StorageGraph, out: &mut Vec<Diagnostic>) {
        for (name, share) in [
            ("rebuild_share", graph.config.rebuild_share),
            ("migration_share", graph.config.migration_share),
        ] {
            if !share.is_finite() || share <= 0.0 {
                out.push(Diagnostic::error(
                    codes::SHARE_WEIGHT,
                    format!("array.{name}"),
                    format!("{name} must be finite and positive, got {share}"),
                ));
            }
        }
    }
}

/// QoS SLO ranges (floor, gains, targets, window).
struct QosRule;

impl Rule for QosRule {
    fn name(&self) -> &'static str {
        "qos-ranges"
    }

    fn check(&self, graph: &StorageGraph, out: &mut Vec<Diagnostic>) {
        if let Some(spec) = &graph.config.qos {
            out.extend(check_slo(spec, "array.qos"));
        }
    }
}

/// Migration pacing of `expand` events.
struct MigrationRateRule;

impl Rule for MigrationRateRule {
    fn name(&self) -> &'static str {
        "migration-rate"
    }

    fn check(&self, graph: &StorageGraph, out: &mut Vec<Diagnostic>) {
        if let Some(rate) = graph.config.migration_rate_blocks_per_sec {
            // +inf is legal and means "instant", exactly like omitting
            // the knob: an unbounded pace degenerates to the atomic
            // upgrade.
            if rate.is_nan() || rate <= 0.0 {
                out.push(Diagnostic::error(
                    codes::MIGRATION_RATE,
                    "array.migration_rate",
                    format!(
                        "migration rate must be positive (or +inf / omitted for an \
                         instant migration), got {rate}"
                    ),
                ));
            }
        }
    }
}

/// Capacity arithmetic: the scattered dataset must fit in the archive
/// partition left over after the cache reservation.
struct DatasetFitRule;

impl Rule for DatasetFitRule {
    fn name(&self) -> &'static str {
        "dataset-fit"
    }

    fn check(&self, graph: &StorageGraph, out: &mut Vec<Diagnostic>) {
        // `None` means the geometry is broken; the shape rule already
        // reported why, and capacity arithmetic would be meaningless.
        if let Some(pa_data_capacity) = graph.archive_data_capacity {
            if pa_data_capacity < graph.config.dataset_blocks {
                out.push(
                    Diagnostic::error(
                        codes::DATASET_DOES_NOT_FIT,
                        "array.dataset_blocks",
                        format!(
                            "archive partition ({pa_data_capacity} blocks) cannot hold \
                             the dataset ({} blocks)",
                            graph.config.dataset_blocks
                        ),
                    )
                    .with_help("shrink pc_fraction, add disks, or scale the workload down"),
                );
            }
        }
    }
}

/// The built-in rule set, in the order [`ArrayConfig::validate`]
/// historically checked its constraints.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ShapeRule),
        Box::new(CacheBindingRule),
        Box::new(AggregationRule),
        Box::new(DeviceCapacityRule),
        Box::new(RebuildRateRule),
        Box::new(FairShareRule),
        Box::new(QosRule),
        Box::new(MigrationRateRule),
        Box::new(DatasetFitRule),
    ]
}

/// Lowers a configuration and runs every built-in rule over the graph.
pub fn check_config(config: &ArrayConfig) -> Vec<Diagnostic> {
    let graph = StorageGraph::lower(config);
    let mut out = Vec::new();
    for rule in default_rules() {
        rule.check(&graph, &mut out);
    }
    out
}

/// Checks one SLO spec; `prefix` anchors diagnostic paths (scenario
/// files use `array.qos`). [`SloSpec::validate`] delegates here.
pub fn check_slo(spec: &SloSpec, prefix: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if spec.target_latency_ms.is_none() && spec.max_queue_depth.is_none() {
        out.push(
            Diagnostic::error(
                codes::QOS_NO_TARGET,
                prefix,
                "an SLO needs at least one target (target_latency_ms or max_queue_depth)",
            )
            .with_help("set target_latency_ms (and optionally percentile) or max_queue_depth"),
        );
    }
    if let Some(ms) = spec.target_latency_ms {
        if !ms.is_finite() || ms <= 0.0 {
            out.push(Diagnostic::error(
                codes::QOS_LATENCY_TARGET,
                format!("{prefix}.target_latency_ms"),
                format!("target_latency_ms must be finite and positive, got {ms}"),
            ));
        }
    }
    if !(0.0..=1.0).contains(&spec.percentile) || !spec.percentile.is_finite() {
        out.push(Diagnostic::error(
            codes::QOS_PERCENTILE,
            format!("{prefix}.percentile"),
            format!("percentile must be in [0, 1], got {}", spec.percentile),
        ));
    }
    if let Some(depth) = spec.max_queue_depth {
        if !depth.is_finite() || depth <= 0.0 {
            out.push(Diagnostic::error(
                codes::QOS_QUEUE_DEPTH,
                format!("{prefix}.max_queue_depth"),
                format!("max_queue_depth must be finite and positive, got {depth}"),
            ));
        }
    }
    if !spec.floor.is_finite() || spec.floor <= 0.0 || spec.floor > 1.0 {
        out.push(
            Diagnostic::error(
                codes::QOS_FLOOR,
                format!("{prefix}.floor"),
                format!("floor must be in (0, 1], got {}", spec.floor),
            )
            .with_help("the floor is a fraction of the configured maintenance rates"),
        );
    }
    if !spec.window_secs.is_finite() || spec.window_secs <= 0.0 {
        out.push(Diagnostic::error(
            codes::QOS_WINDOW,
            format!("{prefix}.window_secs"),
            format!(
                "window_secs must be finite and positive, got {}",
                spec.window_secs
            ),
        ));
    }
    if !spec.increase_per_sec.is_finite() || spec.increase_per_sec <= 0.0 {
        out.push(Diagnostic::error(
            codes::QOS_INCREASE_GAIN,
            format!("{prefix}.increase_per_sec"),
            format!(
                "increase_per_sec must be finite and positive, got {}",
                spec.increase_per_sec
            ),
        ));
    }
    if !spec.decrease_factor.is_finite()
        || spec.decrease_factor <= 0.0
        || spec.decrease_factor >= 1.0
    {
        out.push(Diagnostic::error(
            codes::QOS_DECREASE_FACTOR,
            format!("{prefix}.decrease_factor"),
            format!(
                "decrease_factor must be in (0, 1), got {}",
                spec.decrease_factor
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyKind;

    #[test]
    fn lowering_builds_devices_groups_and_partitions() {
        let config = ArrayConfig::paper(StrategyKind::Craid5Ssd, 100_000, 4_000);
        let graph = StorageGraph::lower(&config);
        assert_eq!(graph.hdds().count(), 50);
        assert_eq!(graph.devices.len(), 55, "5 SSDs join the graph");
        assert_eq!(graph.parity_groups.len(), 5, "50 disks in groups of 10");
        let cache = graph.cache.expect("CRAID strategies carry a cache node");
        assert_eq!(cache.devices, (50..55).collect::<Vec<_>>());
        assert!(cache.blocks_per_device.unwrap() > 0);
        assert!(graph.archive_data_capacity.unwrap() >= 100_000);
    }

    #[test]
    fn aggregated_lowering_groups_by_expansion_set() {
        let config = ArrayConfig::paper(StrategyKind::Raid5Plus, 100_000, 0);
        let graph = StorageGraph::lower(&config);
        assert_eq!(
            graph.parity_groups.len(),
            7,
            "one group per aggregation step"
        );
        assert_eq!(graph.parity_groups[0].members.len(), 10);
        assert_eq!(graph.parity_groups[6].generation, 6);
        assert!(graph.cache.is_none(), "baselines carry no cache partition");
    }

    #[test]
    fn lowering_is_total_on_garbage() {
        // Division-by-zero bait: zero stripe unit, zero parity group,
        // one disk. Lowering must not panic and must withhold derived
        // capacities instead.
        let mut config = ArrayConfig::small_test(StrategyKind::Craid5, 10_000);
        config.stripe_unit = 0;
        config.parity_group = 0;
        config.disks = 1;
        let graph = StorageGraph::lower(&config);
        assert!(graph.archive_data_capacity.is_none());
        assert!(graph.cache.unwrap().blocks_per_device.is_none());
        let findings = check_config(&config);
        assert!(findings.iter().any(|d| d.code == codes::TOO_FEW_DISKS));
        assert!(findings.iter().any(|d| d.code == codes::STRIPE_UNIT));
    }

    #[test]
    fn rules_emit_every_violation_not_just_the_first() {
        let mut config = ArrayConfig::small_test(StrategyKind::Craid5Plus, 10_000);
        config.expansion_sets = vec![1, 3]; // sums to 4, not 8; and a 1-disk set
        config.rebuild_share = -2.0;
        config.migration_share = f64::NAN;
        let findings = check_config(&config);
        let codes_found: Vec<_> = findings.iter().map(|d| d.code).collect();
        assert!(codes_found.contains(&codes::EXPANSION_SETS_SUM));
        assert!(codes_found.contains(&codes::EXPANSION_SET_TOO_SMALL));
        assert_eq!(
            codes_found
                .iter()
                .filter(|&&c| c == codes::SHARE_WEIGHT)
                .count(),
            2,
            "both shares are reported"
        );
    }

    #[test]
    fn slo_paths_are_prefixed() {
        let spec = SloSpec::latency_target(25.0).with_floor(1.5);
        let findings = check_slo(&spec, "array.qos");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, codes::QOS_FLOOR);
        assert_eq!(findings[0].path, "array.qos.floor");
    }

    #[test]
    fn valid_presets_lower_clean() {
        for strategy in StrategyKind::ALL {
            let config = ArrayConfig::paper(strategy, 100_000, 4_000);
            assert!(check_config(&config).is_empty(), "{strategy}");
            let config = ArrayConfig::small_test(strategy, 10_000);
            assert!(check_config(&config).is_empty(), "{strategy}");
        }
    }
}
