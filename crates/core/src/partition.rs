//! Partitions: placing a layout onto a slice of the array's devices.
//!
//! CRAID divides every disk into a small **cache partition** (`PC`) at the
//! start of the device (the fastest, outermost zone) and an **archive
//! partition** (`PA`) covering the rest. A [`Partition`] binds a RAID layout
//! to a device range and a per-device block offset; [`CachePartition`] adds
//! the slot allocator the I/O monitor uses to place cached copies, and
//! [`ArchiveLayout`] abstracts over the two archive organisations the paper
//! evaluates (ideal RAID-5 vs. aggregated RAID-5+).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use craid_diskmodel::IoKind;
use craid_raid::{IoPlanner, Layout, PlannedIo, Raid5Layout, Raid5PlusLayout};

/// A device I/O produced by a partition: a [`PlannedIo`] whose device index
/// and block number are absolute (array-wide device id, device-absolute
/// block).
pub type PartitionIo = PlannedIo;

/// A RAID layout bound to a contiguous range of devices and a per-device
/// block offset.
#[derive(Debug, Clone)]
pub struct Partition<L> {
    planner: IoPlanner<L>,
    first_device: usize,
    block_offset: u64,
}

impl<L: Layout> Partition<L> {
    /// Binds `layout` to the devices starting at `first_device`, with every
    /// physical block shifted by `block_offset` on its device.
    pub fn new(layout: L, first_device: usize, block_offset: u64) -> Self {
        Partition {
            planner: IoPlanner::new(layout),
            first_device,
            block_offset,
        }
    }

    /// The wrapped layout.
    pub fn layout(&self) -> &L {
        self.planner.layout()
    }

    /// Logical data capacity of the partition in blocks.
    pub fn data_capacity(&self) -> u64 {
        self.planner.layout().data_capacity()
    }

    /// Index of the first device used by this partition.
    pub fn first_device(&self) -> usize {
        self.first_device
    }

    /// Per-device block offset of this partition.
    pub fn block_offset(&self) -> u64 {
        self.block_offset
    }

    /// Moves the partition onto a new first device, keeping the layout and
    /// offsets. Used when an upgrade splices new disks in front of the
    /// devices this partition lives on (the dedicated SSDs trail the
    /// mechanical disks, so their indices shift).
    pub fn rebind_first_device(&mut self, first_device: usize) {
        self.first_device = first_device;
    }

    /// Plans the device I/Os for a set of logical partition blocks,
    /// translating device indices and block numbers to absolute coordinates.
    pub fn plan_blocks(&self, kind: IoKind, blocks: &[u64]) -> Vec<PartitionIo> {
        self.planner
            .plan_blocks(kind, blocks)
            .into_iter()
            .map(|io| PlannedIo {
                disk: io.disk + self.first_device,
                range: craid_diskmodel::BlockRange::new(
                    io.range.start() + self.block_offset,
                    io.range.len(),
                ),
                ..io
            })
            .collect()
    }
}

/// The two archive-partition organisations of the paper's evaluation.
#[derive(Debug, Clone)]
pub enum ArchiveLayout {
    /// An ideally restriped RAID-5 across all disks.
    Ideal(Raid5Layout),
    /// The aggregation of independent RAID-5 sets left behind by upgrades.
    Aggregated(Raid5PlusLayout),
}

impl Layout for ArchiveLayout {
    fn disk_count(&self) -> usize {
        match self {
            ArchiveLayout::Ideal(l) => l.disk_count(),
            ArchiveLayout::Aggregated(l) => l.disk_count(),
        }
    }

    fn data_capacity(&self) -> u64 {
        match self {
            ArchiveLayout::Ideal(l) => l.data_capacity(),
            ArchiveLayout::Aggregated(l) => l.data_capacity(),
        }
    }

    fn stripe_unit(&self) -> u64 {
        match self {
            ArchiveLayout::Ideal(l) => l.stripe_unit(),
            ArchiveLayout::Aggregated(l) => l.stripe_unit(),
        }
    }

    fn blocks_per_disk(&self) -> u64 {
        match self {
            ArchiveLayout::Ideal(l) => l.blocks_per_disk(),
            ArchiveLayout::Aggregated(l) => l.blocks_per_disk(),
        }
    }

    fn locate(&self, logical: u64) -> craid_raid::DiskBlock {
        match self {
            ArchiveLayout::Ideal(l) => l.locate(logical),
            ArchiveLayout::Aggregated(l) => l.locate(logical),
        }
    }

    fn parity_for(&self, logical: u64) -> Option<craid_raid::DiskBlock> {
        match self {
            ArchiveLayout::Ideal(l) => l.parity_for(logical),
            ArchiveLayout::Aggregated(l) => l.parity_for(logical),
        }
    }

    fn data_blocks_per_parity_stripe(&self) -> u64 {
        match self {
            ArchiveLayout::Ideal(l) => l.data_blocks_per_parity_stripe(),
            ArchiveLayout::Aggregated(l) => l.data_blocks_per_parity_stripe(),
        }
    }

    fn reconstruction_peers(&self, disk: usize) -> Vec<usize> {
        match self {
            ArchiveLayout::Ideal(l) => l.reconstruction_peers(disk),
            ArchiveLayout::Aggregated(l) => l.reconstruction_peers(disk),
        }
    }
}

/// The cache partition: a RAID-5 area at the head of the caching devices plus
/// the slot allocator handing out cache blocks to the I/O monitor.
///
/// Slots are handed out in ascending order (lowest free slot first), so the
/// blocks of a freshly admitted run land physically contiguous — this is what
/// gives CRAID the "long sequential chains of related blocks" the paper
/// credits for its sequentiality gains.
#[derive(Debug, Clone)]
pub struct CachePartition {
    partition: Partition<Raid5Layout>,
    capacity: u64,
    next_fresh: u64,
    recycled: BinaryHeap<Reverse<u64>>,
}

impl CachePartition {
    /// Creates a cache partition over the given layout.
    pub fn new(layout: Raid5Layout, first_device: usize, block_offset: u64) -> Self {
        let capacity = layout.data_capacity();
        CachePartition {
            partition: Partition::new(layout, first_device, block_offset),
            capacity,
            next_fresh: 0,
            recycled: BinaryHeap::new(),
        }
    }

    /// Total number of cache slots (data blocks).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of slots currently handed out.
    pub fn allocated(&self) -> u64 {
        self.next_fresh - self.recycled.len() as u64
    }

    /// Number of slots still available.
    pub fn free_slots(&self) -> u64 {
        self.capacity - self.allocated()
    }

    /// Index of the first device holding the cache partition.
    pub fn first_device(&self) -> usize {
        self.partition.first_device()
    }

    /// The cache partition's RAID-5 layout (degraded planning needs its
    /// parity groups).
    pub fn layout(&self) -> &Raid5Layout {
        self.partition.layout()
    }

    /// Moves the partition onto a new first device without touching the
    /// slot allocator or layout — the devices kept their contents, only
    /// their indices shifted (new mechanical disks were spliced in front
    /// of the dedicated SSDs).
    pub fn rebind_first_device(&mut self, first_device: usize) {
        self.partition.rebind_first_device(first_device);
    }

    /// Number of devices the cache partition spans.
    pub fn device_count(&self) -> usize {
        self.partition.layout().disk_count()
    }

    /// Hands out the lowest free slot, or `None` if the partition is full.
    pub fn allocate(&mut self) -> Option<u64> {
        if let Some(Reverse(slot)) = self.recycled.pop() {
            return Some(slot);
        }
        if self.next_fresh < self.capacity {
            let slot = self.next_fresh;
            self.next_fresh += 1;
            Some(slot)
        } else {
            None
        }
    }

    /// Returns a slot to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never allocated (is out of range).
    pub fn release(&mut self, slot: u64) {
        assert!(slot < self.capacity, "slot {slot} out of range");
        self.recycled.push(Reverse(slot));
    }

    /// Plans the device I/Os touching the given cache slots.
    pub fn plan_blocks(&self, kind: IoKind, slots: &[u64]) -> Vec<PartitionIo> {
        self.partition.plan_blocks(kind, slots)
    }

    /// Replaces the layout (an online upgrade extended the partition over
    /// more devices) and resets the slot allocator. All previous slot
    /// assignments become invalid — the caller must have drained the mapping
    /// cache first.
    pub fn rebuild(&mut self, layout: Raid5Layout, first_device: usize, block_offset: u64) {
        self.capacity = layout.data_capacity();
        self.partition = Partition::new(layout, first_device, block_offset);
        self.next_fresh = 0;
        self.recycled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craid_raid::IoPurpose;

    fn pc() -> CachePartition {
        // 4 devices, single parity group, 2-block units, 8 blocks per disk
        // → 3 data units per row × 4 rows × 2 blocks = 24 slots.
        CachePartition::new(Raid5Layout::new(4, 4, 2, 8).unwrap(), 0, 0)
    }

    #[test]
    fn slots_are_allocated_in_ascending_order() {
        let mut p = pc();
        assert_eq!(p.capacity(), 24);
        assert_eq!(p.allocate(), Some(0));
        assert_eq!(p.allocate(), Some(1));
        assert_eq!(p.allocate(), Some(2));
        assert_eq!(p.allocated(), 3);
        assert_eq!(p.free_slots(), 21);
    }

    #[test]
    fn released_slots_are_reused_lowest_first() {
        let mut p = pc();
        for _ in 0..5 {
            p.allocate();
        }
        p.release(3);
        p.release(1);
        assert_eq!(p.allocate(), Some(1));
        assert_eq!(p.allocate(), Some(3));
        assert_eq!(p.allocate(), Some(5));
    }

    #[test]
    fn allocation_stops_at_capacity() {
        let mut p = pc();
        for _ in 0..24 {
            assert!(p.allocate().is_some());
        }
        assert_eq!(p.allocate(), None);
        assert_eq!(p.free_slots(), 0);
        p.release(7);
        assert_eq!(p.allocate(), Some(7));
    }

    #[test]
    fn plan_translates_device_and_offset() {
        let layout = Raid5Layout::new(4, 4, 2, 8).unwrap();
        let p = CachePartition::new(layout, 10, 0);
        let plan = p.plan_blocks(IoKind::Read, &[0, 1]);
        assert_eq!(plan.len(), 1);
        assert_eq!(
            plan[0].disk, 10,
            "device ids are shifted to the partition's devices"
        );

        let part = Partition::new(Raid5Layout::new(4, 4, 2, 8).unwrap(), 2, 100);
        let plan = part.plan_blocks(IoKind::Read, &[0]);
        assert_eq!(plan[0].disk, 2);
        assert_eq!(plan[0].range.start(), 100, "block offset is applied");
    }

    #[test]
    fn write_plans_carry_parity_to_shifted_devices() {
        let p = pc();
        let plan = p.plan_blocks(IoKind::Write, &[0]);
        assert!(plan.iter().any(|io| io.purpose == IoPurpose::ParityWrite));
        let total_devices = p.device_count();
        assert!(plan.iter().all(|io| io.disk < total_devices));
    }

    #[test]
    fn rebuild_resets_slots_and_capacity() {
        let mut p = pc();
        for _ in 0..10 {
            p.allocate();
        }
        p.rebuild(Raid5Layout::new(8, 4, 2, 8).unwrap(), 0, 0);
        assert_eq!(p.capacity(), 8 * 6); // 6 data units per row × 4 rows × 2
        assert_eq!(p.allocated(), 0);
        assert_eq!(p.allocate(), Some(0));
    }

    #[test]
    fn rebind_keeps_slots_and_shifts_devices() {
        let mut p = pc();
        for _ in 0..5 {
            p.allocate();
        }
        p.rebind_first_device(12);
        assert_eq!(p.allocated(), 5, "the allocator survives the rebind");
        assert_eq!(p.first_device(), 12);
        let plan = p.plan_blocks(IoKind::Read, &[0]);
        assert!(plan.iter().all(|io| io.disk >= 12));
    }

    #[test]
    fn archive_layout_delegates() {
        let ideal = ArchiveLayout::Ideal(Raid5Layout::new(4, 4, 2, 8).unwrap());
        let agg = ArchiveLayout::Aggregated(Raid5PlusLayout::new(&[4, 3], 2, 8).unwrap());
        assert_eq!(ideal.reconstruction_peers(1), vec![0, 2, 3]);
        assert_eq!(agg.reconstruction_peers(5), vec![4, 6]);
        assert_eq!(ideal.disk_count(), 4);
        assert_eq!(agg.disk_count(), 7);
        assert!(ideal.data_capacity() > 0);
        assert!(agg.parity_for(0).is_some());
        assert_eq!(ideal.stripe_unit(), 2);
        assert!(agg.blocks_per_disk() > 0);
        // Both layouts expose a positive parity-stripe width.
        assert!(ideal.data_blocks_per_parity_stripe() > 0);
        assert!(agg.data_blocks_per_parity_stripe() > 0);
        let _ = ideal.locate(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn releasing_unknown_slot_panics() {
        let mut p = pc();
        p.release(1_000);
    }
}
