//! Error type for the CRAID library.

use std::fmt;

use craid_raid::LayoutError;

use crate::analyze::Diagnostic;

/// Errors surfaced by the CRAID configuration and simulation APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum CraidError {
    /// An array configuration parameter is inconsistent. Carries the
    /// static analyser's [`Diagnostic`] — stable code, field path and
    /// message — so `validate()` errors and `analyze()` findings render
    /// identically.
    InvalidConfig(Diagnostic),
    /// An event schedule is impossible (a `CRAID-E2xx` timeline
    /// finding promoted to an error by [`crate::Scenario::load`] or the
    /// analyser's deny mode).
    InvalidSchedule(Diagnostic),
    /// A RAID layout could not be constructed from the configuration.
    Layout(LayoutError),
    /// A client request addressed blocks outside the volume.
    OutOfRange {
        /// First block requested.
        start: u64,
        /// Number of blocks requested.
        blocks: u64,
        /// Volume capacity in blocks.
        capacity: u64,
    },
    /// An expansion request was invalid (e.g. zero disks added).
    InvalidExpansion(String),
    /// A fault-injection request was invalid (e.g. failing a disk that is
    /// already failed, or repairing a healthy one).
    InvalidFault(String),
    /// A scenario file could not be read.
    Io(String),
    /// A scenario file could not be parsed.
    Parse(String),
}

impl CraidError {
    /// Wraps an analyser finding in the matching error variant:
    /// timeline codes (`CRAID-E2xx`/`CRAID-W3xx`) become
    /// [`CraidError::InvalidSchedule`], everything else
    /// [`CraidError::InvalidConfig`].
    pub fn from_diagnostic(diagnostic: Diagnostic) -> Self {
        if diagnostic.code.starts_with("CRAID-E2") || diagnostic.code.starts_with("CRAID-W3") {
            CraidError::InvalidSchedule(diagnostic)
        } else {
            CraidError::InvalidConfig(diagnostic)
        }
    }

    /// The analyser diagnostic this error carries, if any.
    pub fn diagnostic(&self) -> Option<&Diagnostic> {
        match self {
            CraidError::InvalidConfig(d) | CraidError::InvalidSchedule(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for CraidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CraidError::InvalidConfig(d) => {
                write!(
                    f,
                    "invalid configuration: [{}] {}: {}",
                    d.code, d.path, d.message
                )
            }
            CraidError::InvalidSchedule(d) => {
                write!(
                    f,
                    "invalid schedule: [{}] {}: {}",
                    d.code, d.path, d.message
                )
            }
            CraidError::Layout(e) => write!(f, "layout error: {e}"),
            CraidError::OutOfRange {
                start,
                blocks,
                capacity,
            } => write!(
                f,
                "request for {blocks} blocks at {start} exceeds volume capacity {capacity}"
            ),
            CraidError::InvalidExpansion(msg) => write!(f, "invalid expansion: {msg}"),
            CraidError::InvalidFault(msg) => write!(f, "invalid fault injection: {msg}"),
            CraidError::Io(msg) => write!(f, "scenario file error: {msg}"),
            CraidError::Parse(msg) => write!(f, "scenario parse error: {msg}"),
        }
    }
}

impl std::error::Error for CraidError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CraidError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LayoutError> for CraidError {
    fn from(e: LayoutError) -> Self {
        CraidError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::codes;

    #[test]
    fn display_messages_are_descriptive() {
        let e = CraidError::InvalidConfig(Diagnostic::error(
            codes::TOO_FEW_DISKS,
            "array.disks",
            "zero disks",
        ));
        assert!(e.to_string().contains("zero disks"));
        assert!(e.to_string().contains("CRAID-E101"), "{e}");
        assert!(e.to_string().contains("array.disks"), "{e}");
        let e = CraidError::OutOfRange {
            start: 10,
            blocks: 5,
            capacity: 12,
        };
        assert!(e.to_string().contains("exceeds"));
        let e = CraidError::InvalidExpansion("no disks added".into());
        assert!(e.to_string().contains("expansion"));
        let e = CraidError::InvalidFault("disk 3 already failed".into());
        assert!(e.to_string().contains("fault"));
        let e = CraidError::Io("missing.toml: not found".into());
        assert!(e.to_string().contains("missing.toml"));
        let e = CraidError::Parse("bad TOML".into());
        assert!(e.to_string().contains("parse"));
    }

    #[test]
    fn diagnostics_route_to_the_matching_variant() {
        let config = CraidError::from_diagnostic(Diagnostic::error(
            codes::QOS_FLOOR,
            "array.qos.floor",
            "floor must be in (0, 1], got 2",
        ));
        assert!(matches!(config, CraidError::InvalidConfig(_)));
        assert_eq!(config.diagnostic().unwrap().code, codes::QOS_FLOOR);

        let schedule = CraidError::from_diagnostic(Diagnostic::error(
            codes::DOUBLE_FAILURE,
            "events[1].disk",
            "two concurrent failures",
        ));
        assert!(matches!(schedule, CraidError::InvalidSchedule(_)));
        assert!(schedule.to_string().contains("invalid schedule"));

        assert!(CraidError::Io("x".into()).diagnostic().is_none());
    }

    #[test]
    fn layout_errors_convert_and_chain() {
        let layout_err = LayoutError::NotEnoughDisks { got: 1, need: 2 };
        let e: CraidError = layout_err.clone().into();
        assert_eq!(e, CraidError::Layout(layout_err));
        assert!(std::error::Error::source(&e).is_some());
    }
}
