//! Error type for the CRAID library.

use std::fmt;

use craid_raid::LayoutError;

/// Errors surfaced by the CRAID configuration and simulation APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum CraidError {
    /// An array configuration parameter is inconsistent.
    InvalidConfig(String),
    /// A RAID layout could not be constructed from the configuration.
    Layout(LayoutError),
    /// A client request addressed blocks outside the volume.
    OutOfRange {
        /// First block requested.
        start: u64,
        /// Number of blocks requested.
        blocks: u64,
        /// Volume capacity in blocks.
        capacity: u64,
    },
    /// An expansion request was invalid (e.g. zero disks added).
    InvalidExpansion(String),
    /// A fault-injection request was invalid (e.g. failing a disk that is
    /// already failed, or repairing a healthy one).
    InvalidFault(String),
}

impl fmt::Display for CraidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CraidError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CraidError::Layout(e) => write!(f, "layout error: {e}"),
            CraidError::OutOfRange {
                start,
                blocks,
                capacity,
            } => write!(
                f,
                "request for {blocks} blocks at {start} exceeds volume capacity {capacity}"
            ),
            CraidError::InvalidExpansion(msg) => write!(f, "invalid expansion: {msg}"),
            CraidError::InvalidFault(msg) => write!(f, "invalid fault injection: {msg}"),
        }
    }
}

impl std::error::Error for CraidError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CraidError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LayoutError> for CraidError {
    fn from(e: LayoutError) -> Self {
        CraidError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = CraidError::InvalidConfig("zero disks".into());
        assert!(e.to_string().contains("zero disks"));
        let e = CraidError::OutOfRange {
            start: 10,
            blocks: 5,
            capacity: 12,
        };
        assert!(e.to_string().contains("exceeds"));
        let e = CraidError::InvalidExpansion("no disks added".into());
        assert!(e.to_string().contains("expansion"));
        let e = CraidError::InvalidFault("disk 3 already failed".into());
        assert!(e.to_string().contains("fault"));
    }

    #[test]
    fn layout_errors_convert_and_chain() {
        let layout_err = LayoutError::NotEnoughDisks { got: 1, need: 2 };
        let e: CraidError = layout_err.clone().into();
        assert_eq!(e, CraidError::Layout(layout_err));
        assert!(std::error::Error::source(&e).is_some());
    }
}
