//! Array and experiment configuration.

use serde::{Deserialize, Serialize};

use craid_cache::PolicyKind;
use craid_diskmodel::{HddParameters, SsdParameters};

use crate::error::CraidError;

/// The six allocation policies compared in the paper's evaluation (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// An ideally restriped RAID-5 using every disk (upper baseline).
    Raid5,
    /// A RAID-5 grown by aggregation: independent RAID-5 sets added per
    /// upgrade (realistic baseline).
    Raid5Plus,
    /// CRAID with a RAID-5 cache partition over all disks and an ideally
    /// restriped RAID-5 archive.
    Craid5,
    /// CRAID with a RAID-5 cache partition over all disks and an aggregated
    /// RAID-5+ archive.
    Craid5Plus,
    /// CRAID with the cache partition on dedicated SSDs and a RAID-5 archive.
    Craid5Ssd,
    /// CRAID with the cache partition on dedicated SSDs and a RAID-5+
    /// archive.
    Craid5PlusSsd,
}

impl StrategyKind {
    /// Every strategy of the paper's evaluation, in its plotting order.
    pub const ALL: [StrategyKind; 6] = [
        StrategyKind::Raid5,
        StrategyKind::Raid5Plus,
        StrategyKind::Craid5,
        StrategyKind::Craid5Plus,
        StrategyKind::Craid5Ssd,
        StrategyKind::Craid5PlusSsd,
    ];

    /// The label used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Raid5 => "RAID-5",
            StrategyKind::Raid5Plus => "RAID-5+",
            StrategyKind::Craid5 => "CRAID-5",
            StrategyKind::Craid5Plus => "CRAID-5+",
            StrategyKind::Craid5Ssd => "CRAID-5ssd",
            StrategyKind::Craid5PlusSsd => "CRAID-5+ssd",
        }
    }

    /// True for the four CRAID variants (they carry a cache partition).
    pub fn is_craid(self) -> bool {
        !matches!(self, StrategyKind::Raid5 | StrategyKind::Raid5Plus)
    }

    /// True when the cache partition lives on dedicated SSDs.
    pub fn uses_ssd_cache(self) -> bool {
        matches!(self, StrategyKind::Craid5Ssd | StrategyKind::Craid5PlusSsd)
    }

    /// True when the archive partition is the aggregation of independent
    /// RAID-5 sets (the "+" variants).
    pub fn archive_is_aggregated(self) -> bool {
        matches!(
            self,
            StrategyKind::Raid5Plus | StrategyKind::Craid5Plus | StrategyKind::Craid5PlusSsd
        )
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = String;

    /// Parses either the paper's figure label (`"CRAID-5+ssd"`) or the
    /// variant identifier (`"Craid5PlusSsd"`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Normalize: drop dashes/underscores, lowercase, and let "plus"
        // stand in for "+", so every spelling collapses to one key.
        let key: String = s
            .trim()
            .chars()
            .filter(|c| *c != '-' && *c != '_')
            .collect::<String>()
            .to_ascii_lowercase()
            .replace("plus", "+");
        StrategyKind::ALL
            .into_iter()
            .find(|k| k.name().replace('-', "").to_ascii_lowercase() == key)
            .ok_or_else(|| {
                format!(
                    "unknown strategy '{s}' (expected one of: {})",
                    StrategyKind::ALL.map(|k| k.name()).join(", ")
                )
            })
    }
}

// Strategies serialize as their figure labels so scenario files can name
// them the way the paper does (`strategy = "CRAID-5+"`).
impl Serialize for StrategyKind {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for StrategyKind {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("strategy name", value))?;
        s.parse().map_err(serde::Error::custom)
    }
}

/// When a deferred expansion (queued behind an in-flight archive restripe)
/// is allowed to activate once that restripe drains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ActivationPolicy {
    /// Activate unconditionally the moment the blocking restripe drains —
    /// even on a degraded array (the activation's maintenance I/O runs
    /// through the degraded planner like any other traffic). The
    /// pre-existing behaviour and the default.
    #[default]
    Immediate,
    /// Wait until the array is healthy: an activation that comes due while
    /// a disk is failed or rebuilding holds until the rebuild completes
    /// (or, if the disk is never repaired, indefinitely — the deferred
    /// queue then survives the run and is visible via
    /// `deferred_expansions`).
    WaitForRepair,
}

impl ActivationPolicy {
    /// The serialized name.
    pub fn name(self) -> &'static str {
        match self {
            ActivationPolicy::Immediate => "immediate",
            ActivationPolicy::WaitForRepair => "wait-for-repair",
        }
    }
}

impl std::fmt::Display for ActivationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ActivationPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().replace('_', "-").as_str() {
            "immediate" => Ok(ActivationPolicy::Immediate),
            "wait-for-repair" | "waitforrepair" => Ok(ActivationPolicy::WaitForRepair),
            other => Err(format!(
                "unknown activation policy '{other}' (expected immediate or wait-for-repair)"
            )),
        }
    }
}

impl Serialize for ActivationPolicy {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for ActivationPolicy {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("activation policy name", value))?;
        s.parse().map_err(serde::Error::custom)
    }
}

/// Which device model backs the simulated spindles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceTier {
    /// The Cheetah-15K.5-like mechanical model (the default).
    Hdd,
    /// The zero-latency model used for the policy-quality experiments
    /// (Tables 2 and 3), where only hit/replacement counts matter.
    Instant,
}

/// Complete description of one simulated array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Allocation policy under test.
    pub strategy: StrategyKind,
    /// Number of mechanical disks in the array (the paper uses 50).
    pub disks: usize,
    /// Parity-group width for RAID-5 layouts (the paper uses 10).
    pub parity_group: usize,
    /// Stripe unit in 4 KiB blocks. The paper uses 32 (128 KiB); the scaled
    /// experiments default to 8 so that stripe geometry stays proportionate
    /// to the scaled-down footprints.
    pub stripe_unit: u64,
    /// Number of dedicated SSDs for the `*ssd` strategies (the paper adds 5).
    pub ssd_cache_devices: usize,
    /// Requested cache-partition capacity in data blocks. Ignored by the
    /// baseline strategies. The realised capacity is rounded up to whole
    /// stripe rows.
    pub pc_capacity_blocks: u64,
    /// Client-visible volume size in blocks (the trace's footprint).
    pub dataset_blocks: u64,
    /// Replacement policy for the I/O monitor (the paper settles on
    /// WLRU(0.5)).
    pub policy: PolicyKind,
    /// Device model used for the spindles.
    pub device_tier: DeviceTier,
    /// Disk counts of the aggregation steps used by RAID-5+ archives
    /// (the paper's schedule grows 10 → 50 disks in ≈30 % steps).
    pub expansion_sets: Vec<usize>,
    /// Blocks per mechanical disk. Defaults to the full Cheetah 15K.5
    /// capacity so seek distances stay realistic; the dataset is scattered
    /// across the archive partition by the dataset mapper.
    pub hdd_capacity_blocks: u64,
    /// Parameters of the mechanical disks.
    pub hdd: HddParameters,
    /// Parameters of the dedicated SSDs.
    pub ssd: SsdParameters,
    /// Seed for the dataset-scatter permutation.
    pub seed: u64,
    /// Pace of the background rebuild after a `DiskRepair` event, in blocks
    /// reconstructed onto the hot spare per simulated second. The default
    /// (25 600 blocks ≈ 100 MiB/s) matches a sequential rebuild stream on
    /// the modeled spindles.
    pub rebuild_rate_blocks_per_sec: f64,
    /// Pace of the background migration an `Expand` event enqueues, in
    /// blocks moved to their post-upgrade home per simulated second. `None`
    /// (the default) and `+inf` both mean *instant*: the upgrade migrates
    /// everything atomically at event time, as the pre-engine
    /// implementation did.
    pub migration_rate_blocks_per_sec: Option<f64>,
    /// The order the background engine issues rebuild and migration blocks
    /// in ([`Sequential`](crate::background::BackgroundPriority::Sequential)
    /// by default; `HotFirst` moves the I/O monitor's hottest blocks first —
    /// the CRAID move).
    pub background_priority: crate::background::BackgroundPriority,
    /// Fair-share weight of rebuild tasks on the background engine. When a
    /// rebuild and a migration are both behind pace in the same poll, the
    /// contended batch budget is split `rebuild_share : migration_share`
    /// between them (default 1.0 — equal shares).
    pub rebuild_share: f64,
    /// Fair-share weight of expansion-migration and archive-restripe tasks
    /// on the background engine (default 1.0 — equal shares).
    pub migration_share: f64,
    /// Service-level objective for the QoS control subsystem. When set, a
    /// [`QosController`](crate::qos::QosController) watches client service
    /// quality and adaptively throttles the background engine between the
    /// spec's maintenance floor and the configured rates. `None` (the
    /// default) disables QoS entirely — the engine keeps its static cap,
    /// bit-for-bit the pre-QoS behaviour.
    pub qos: Option<crate::qos::SloSpec>,
    /// When a deferred expansion may activate once the archive restripe
    /// blocking it drains (default: immediately, even on a degraded array).
    pub activation: ActivationPolicy,
}

impl ArrayConfig {
    /// The paper's testbed shape: 50 disks, parity groups of 10, the
    /// RAID-5+ aggregation schedule 10 → 13 → 17 → 22 → 29 → 38 → 50, five
    /// dedicated SSDs, WLRU(0.5).
    ///
    /// `dataset_blocks` is the trace footprint; `pc_capacity_blocks` the
    /// requested cache-partition size (in blocks).
    pub fn paper(strategy: StrategyKind, dataset_blocks: u64, pc_capacity_blocks: u64) -> Self {
        // The drive's DRAM cache is scaled down together with the workload
        // footprint: a full 16 MiB per-disk buffer against a few-hundred-MB
        // scaled dataset would absorb nearly all re-reads and hide the
        // mechanical effects the comparison is about.
        let mut hdd = HddParameters::cheetah_15k5();
        hdd.cache_bytes = 4 * 1024 * 1024;
        hdd.cache_segments = 8;
        hdd.readahead_blocks = 16;
        ArrayConfig {
            strategy,
            disks: 50,
            parity_group: 10,
            stripe_unit: 8,
            ssd_cache_devices: 5,
            pc_capacity_blocks,
            dataset_blocks,
            policy: PolicyKind::Wlru(0.5),
            device_tier: DeviceTier::Hdd,
            expansion_sets: vec![10, 3, 4, 5, 7, 9, 12],
            hdd_capacity_blocks: hdd.capacity_blocks,
            hdd,
            ssd: SsdParameters::msr_ideal(),
            seed: 0x5eed,
            rebuild_rate_blocks_per_sec: 25_600.0,
            migration_rate_blocks_per_sec: None,
            background_priority: crate::background::BackgroundPriority::Sequential,
            rebuild_share: 1.0,
            migration_share: 1.0,
            qos: None,
            activation: ActivationPolicy::Immediate,
        }
    }

    /// A small 8-disk array for unit and integration tests: fast to simulate
    /// while exercising every code path (parity groups, PC, SSD tier).
    pub fn small_test(strategy: StrategyKind, dataset_blocks: u64) -> Self {
        let hdd = HddParameters::cheetah_15k5_scaled(2 * 1024 * 1024);
        ArrayConfig {
            strategy,
            disks: 8,
            parity_group: 4,
            stripe_unit: 4,
            ssd_cache_devices: 3,
            pc_capacity_blocks: (dataset_blocks / 5).max(64),
            dataset_blocks,
            policy: PolicyKind::Wlru(0.5),
            device_tier: DeviceTier::Hdd,
            expansion_sets: vec![4, 4],
            hdd_capacity_blocks: hdd.capacity_blocks,
            hdd,
            ssd: SsdParameters::msr_ideal_scaled(1024 * 1024),
            seed: 7,
            rebuild_rate_blocks_per_sec: 25_600.0,
            migration_rate_blocks_per_sec: None,
            background_priority: crate::background::BackgroundPriority::Sequential,
            rebuild_share: 1.0,
            migration_share: 1.0,
            qos: None,
            activation: ActivationPolicy::Immediate,
        }
    }

    /// Sets the replacement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the requested cache-partition capacity (in blocks).
    pub fn with_pc_capacity(mut self, blocks: u64) -> Self {
        self.pc_capacity_blocks = blocks;
        self
    }

    /// Switches the spindles to the zero-latency model.
    pub fn with_instant_devices(mut self) -> Self {
        self.device_tier = DeviceTier::Instant;
        self
    }

    /// Sets the stripe unit (in blocks).
    pub fn with_stripe_unit(mut self, blocks: u64) -> Self {
        self.stripe_unit = blocks;
        self
    }

    /// Sets the background rebuild pace (blocks per simulated second).
    pub fn with_rebuild_rate(mut self, blocks_per_sec: f64) -> Self {
        self.rebuild_rate_blocks_per_sec = blocks_per_sec;
        self
    }

    /// Sets the background migration pace (blocks per simulated second);
    /// `None` restores the instant-expand behaviour.
    pub fn with_migration_rate(mut self, blocks_per_sec: Option<f64>) -> Self {
        self.migration_rate_blocks_per_sec = blocks_per_sec;
        self
    }

    /// Sets the background engine's fair-share weight for rebuild tasks.
    pub fn with_rebuild_share(mut self, share: f64) -> Self {
        self.rebuild_share = share;
        self
    }

    /// Sets the background engine's fair-share weight for migration and
    /// archive-restripe tasks.
    pub fn with_migration_share(mut self, share: f64) -> Self {
        self.migration_share = share;
        self
    }

    /// Attaches a QoS service-level objective: the background engine's pace
    /// becomes a function of observed client service quality, throttled
    /// between the spec's maintenance floor and the configured rates.
    pub fn with_qos(mut self, spec: crate::qos::SloSpec) -> Self {
        self.qos = Some(spec);
        self
    }

    /// Sets the deferred-expansion activation policy.
    pub fn with_activation(mut self, policy: ActivationPolicy) -> Self {
        self.activation = policy;
        self
    }

    /// Sets the background engine's block-ordering policy.
    pub fn with_background_priority(
        mut self,
        priority: crate::background::BackgroundPriority,
    ) -> Self {
        self.background_priority = priority;
        self
    }

    /// True when `Expand` events migrate atomically at event time instead of
    /// enqueueing a paced background task (the knob is omitted, or its rate
    /// is unbounded).
    pub fn instant_migration(&self) -> bool {
        match self.migration_rate_blocks_per_sec {
            None => true,
            Some(rate) => rate.is_infinite() && rate > 0.0,
        }
    }

    /// Number of parity groups of the full-width RAID-5 layouts.
    pub fn parity_groups(&self) -> usize {
        self.disks / self.parity_group.max(1)
    }

    /// Data stripe units per row of a full-width RAID-5 layout.
    pub fn data_units_per_row(&self) -> u64 {
        (self.disks - self.parity_groups()) as u64
    }

    /// Cache-partition blocks reserved per mechanical disk (0 for baselines
    /// and for the SSD-cached variants).
    pub fn pc_blocks_per_hdd(&self) -> u64 {
        if !self.strategy.is_craid() || self.strategy.uses_ssd_cache() {
            return 0;
        }
        let data_per_row = self.data_units_per_row() * self.stripe_unit;
        let rows = self.pc_capacity_blocks.div_ceil(data_per_row).max(1);
        rows * self.stripe_unit
    }

    /// Cache-partition blocks reserved per dedicated SSD (0 unless the
    /// strategy uses the SSD tier).
    pub fn pc_blocks_per_ssd(&self) -> u64 {
        if !self.strategy.uses_ssd_cache() {
            return 0;
        }
        let groups = 1u64; // the SSD set forms a single parity group
        let data_per_row = (self.ssd_cache_devices as u64 - groups) * self.stripe_unit;
        let rows = self.pc_capacity_blocks.div_ceil(data_per_row.max(1)).max(1);
        rows * self.stripe_unit
    }

    /// Archive-partition blocks available per mechanical disk.
    pub fn pa_blocks_per_hdd(&self) -> u64 {
        let remaining = self
            .hdd_capacity_blocks
            .saturating_sub(self.pc_blocks_per_hdd());
        (remaining / self.stripe_unit) * self.stripe_unit
    }

    /// The cache partition's size as a percentage of each disk's capacity —
    /// the x-axis of the paper's Figures 4 and 6.
    pub fn pc_percent_per_disk(&self) -> f64 {
        if self.hdd_capacity_blocks == 0 {
            0.0
        } else {
            100.0 * self.pc_blocks_per_hdd() as f64 / self.hdd_capacity_blocks as f64
        }
    }

    /// Validates the configuration by running the static analyser's
    /// storage-graph rules ([`crate::analyze::graph`]) and returning the
    /// first error-severity finding — so this legacy `Result` surface
    /// and [`crate::analyze`] render identical diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`CraidError::InvalidConfig`] carrying the first violated
    /// constraint's [`crate::analyze::Diagnostic`].
    pub fn validate(&self) -> Result<(), CraidError> {
        match crate::analyze::graph::check_config(self)
            .into_iter()
            .find(|d| d.is_error())
        {
            Some(d) => Err(CraidError::InvalidConfig(d)),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_classification() {
        assert!(!StrategyKind::Raid5.is_craid());
        assert!(!StrategyKind::Raid5Plus.is_craid());
        assert!(StrategyKind::Craid5.is_craid());
        assert!(StrategyKind::Craid5PlusSsd.uses_ssd_cache());
        assert!(!StrategyKind::Craid5.uses_ssd_cache());
        assert!(StrategyKind::Raid5Plus.archive_is_aggregated());
        assert!(!StrategyKind::Craid5Ssd.archive_is_aggregated());
        assert_eq!(StrategyKind::ALL.len(), 6);
        assert_eq!(StrategyKind::Craid5Plus.to_string(), "CRAID-5+");
    }

    #[test]
    fn strategy_names_round_trip_through_strings() {
        for s in StrategyKind::ALL {
            // The figure label round-trips...
            assert_eq!(s.name().parse::<StrategyKind>().unwrap(), s);
            // ...and so do the variant identifier and sloppy spellings.
            assert_eq!(format!("{s:?}").parse::<StrategyKind>().unwrap(), s);
            assert_eq!(s.name().to_lowercase().parse::<StrategyKind>().unwrap(), s);
        }
        assert_eq!(
            "craid-5+ssd".parse::<StrategyKind>().unwrap(),
            StrategyKind::Craid5PlusSsd
        );
        assert!("raid6".parse::<StrategyKind>().is_err());
        assert!("".parse::<StrategyKind>().is_err());
    }

    #[test]
    fn strategy_serde_uses_figure_labels() {
        for s in StrategyKind::ALL {
            let v = Serialize::serialize(&s);
            assert_eq!(v, serde::Value::Str(s.name().to_string()));
            let back: StrategyKind = Deserialize::deserialize(&v).unwrap();
            assert_eq!(back, s);
        }
        let err = StrategyKind::deserialize(&serde::Value::Int(3));
        assert!(err.is_err());
    }

    #[test]
    fn paper_config_is_valid_for_every_strategy() {
        for strategy in StrategyKind::ALL {
            let cfg = ArrayConfig::paper(strategy, 100_000, 4_000);
            assert!(cfg.validate().is_ok(), "{strategy}: {:?}", cfg.validate());
            assert_eq!(cfg.disks, 50);
            assert_eq!(cfg.parity_groups(), 5);
            assert_eq!(cfg.data_units_per_row(), 45);
        }
    }

    #[test]
    fn small_test_config_is_valid_for_every_strategy() {
        for strategy in StrategyKind::ALL {
            let cfg = ArrayConfig::small_test(strategy, 10_000);
            assert!(cfg.validate().is_ok(), "{strategy}: {:?}", cfg.validate());
        }
    }

    #[test]
    fn pc_reservation_only_for_hdd_cached_craid() {
        let dataset = 100_000;
        let craid = ArrayConfig::paper(StrategyKind::Craid5, dataset, 4_000);
        assert!(craid.pc_blocks_per_hdd() > 0);
        assert_eq!(craid.pc_blocks_per_ssd(), 0);

        let ssd = ArrayConfig::paper(StrategyKind::Craid5Ssd, dataset, 4_000);
        assert_eq!(ssd.pc_blocks_per_hdd(), 0);
        assert!(ssd.pc_blocks_per_ssd() > 0);

        let baseline = ArrayConfig::paper(StrategyKind::Raid5, dataset, 4_000);
        assert_eq!(baseline.pc_blocks_per_hdd(), 0);
        assert_eq!(baseline.pc_blocks_per_ssd(), 0);
    }

    #[test]
    fn pc_rounds_up_to_whole_rows() {
        let cfg = ArrayConfig::paper(StrategyKind::Craid5, 100_000, 1);
        // One row of PC: stripe_unit blocks on every disk.
        assert_eq!(cfg.pc_blocks_per_hdd(), cfg.stripe_unit);
        assert!(cfg.pc_percent_per_disk() > 0.0);
    }

    #[test]
    fn pa_capacity_shrinks_with_pc() {
        let without = ArrayConfig::paper(StrategyKind::Raid5, 100_000, 0);
        let with = ArrayConfig::paper(StrategyKind::Craid5, 100_000, 1_000_000);
        assert!(with.pa_blocks_per_hdd() < without.pa_blocks_per_hdd());
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut cfg = ArrayConfig::paper(StrategyKind::Craid5, 100_000, 4_000);
        cfg.parity_group = 7;
        assert!(cfg.validate().is_err());

        let mut cfg = ArrayConfig::paper(StrategyKind::Craid5, 100_000, 0);
        cfg.pc_capacity_blocks = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ArrayConfig::paper(StrategyKind::Craid5Plus, 100_000, 4_000);
        cfg.expansion_sets = vec![10, 10];
        assert!(cfg.validate().is_err(), "sets must sum to the disk count");

        let mut cfg = ArrayConfig::paper(StrategyKind::Raid5, 100_000, 0);
        cfg.dataset_blocks = u64::MAX / 2;
        assert!(cfg.validate().is_err(), "dataset larger than the archive");

        let mut cfg = ArrayConfig::paper(StrategyKind::Raid5, 100_000, 0);
        cfg.rebuild_rate_blocks_per_sec = 0.0;
        assert!(cfg.validate().is_err(), "rebuild rate must be positive");
        cfg.rebuild_rate_blocks_per_sec = f64::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builder_methods_compose() {
        use crate::background::BackgroundPriority;
        let cfg = ArrayConfig::small_test(StrategyKind::Craid5, 10_000)
            .with_policy(PolicyKind::Arc)
            .with_pc_capacity(512)
            .with_stripe_unit(8)
            .with_rebuild_rate(1_000.0)
            .with_migration_rate(Some(2_000.0))
            .with_background_priority(BackgroundPriority::HotFirst)
            .with_rebuild_share(3.0)
            .with_migration_share(0.5)
            .with_instant_devices();
        assert_eq!(cfg.policy, PolicyKind::Arc);
        assert_eq!(cfg.pc_capacity_blocks, 512);
        assert_eq!(cfg.stripe_unit, 8);
        assert_eq!(cfg.rebuild_rate_blocks_per_sec, 1_000.0);
        assert_eq!(cfg.migration_rate_blocks_per_sec, Some(2_000.0));
        assert!(!cfg.instant_migration());
        assert_eq!(cfg.background_priority, BackgroundPriority::HotFirst);
        assert_eq!(cfg.rebuild_share, 3.0);
        assert_eq!(cfg.migration_share, 0.5);
        assert_eq!(cfg.device_tier, DeviceTier::Instant);
    }

    #[test]
    fn fair_shares_must_be_finite_and_positive() {
        let good = ArrayConfig::small_test(StrategyKind::Raid5, 10_000);
        assert!(good.validate().is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = good.clone().with_rebuild_share(bad);
            assert!(cfg.validate().is_err(), "rebuild_share {bad}");
            let cfg = good.clone().with_migration_share(bad);
            assert!(cfg.validate().is_err(), "migration_share {bad}");
        }
    }

    #[test]
    fn activation_policy_parses_and_round_trips() {
        for p in [ActivationPolicy::Immediate, ActivationPolicy::WaitForRepair] {
            assert_eq!(p.name().parse::<ActivationPolicy>().unwrap(), p);
            let v = Serialize::serialize(&p);
            assert_eq!(ActivationPolicy::deserialize(&v).unwrap(), p);
        }
        assert_eq!(
            "Wait_For_Repair".parse::<ActivationPolicy>().unwrap(),
            ActivationPolicy::WaitForRepair
        );
        assert!("eventually".parse::<ActivationPolicy>().is_err());
        assert!(ActivationPolicy::deserialize(&serde::Value::Int(1)).is_err());
        assert_eq!(
            ActivationPolicy::WaitForRepair.to_string(),
            "wait-for-repair"
        );
    }

    #[test]
    fn qos_spec_is_validated_through_the_config() {
        use crate::qos::SloSpec;
        let good = ArrayConfig::small_test(StrategyKind::Craid5, 10_000)
            .with_qos(SloSpec::latency_target(25.0))
            .with_activation(ActivationPolicy::WaitForRepair);
        assert!(good.validate().is_ok());
        assert_eq!(good.activation, ActivationPolicy::WaitForRepair);
        // An SLO without any target is rejected at config validation.
        let bad =
            ArrayConfig::small_test(StrategyKind::Craid5, 10_000).with_qos(SloSpec::default());
        assert!(bad.validate().is_err());
        let bad = ArrayConfig::small_test(StrategyKind::Craid5, 10_000)
            .with_qos(SloSpec::latency_target(25.0).with_floor(0.0));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn migration_rate_must_be_finite_and_positive() {
        let mut cfg = ArrayConfig::small_test(StrategyKind::Craid5, 10_000);
        assert!(cfg.instant_migration(), "the default migration is instant");
        cfg.migration_rate_blocks_per_sec = Some(0.0);
        assert!(cfg.validate().is_err());
        cfg.migration_rate_blocks_per_sec = Some(f64::NAN);
        assert!(cfg.validate().is_err());
        cfg.migration_rate_blocks_per_sec = Some(f64::INFINITY);
        assert!(cfg.validate().is_ok(), "an unbounded rate is legal");
        assert!(cfg.instant_migration(), "and degenerates to instant");
        cfg.migration_rate_blocks_per_sec = Some(500.0);
        assert!(cfg.validate().is_ok());
        assert!(!cfg.instant_migration());
    }
}
