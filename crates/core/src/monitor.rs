//! The I/O monitor (paper §4.1).
//!
//! The monitor watches every block access, maintains the working set through
//! a replacement policy (WLRU(0.5) by default), keeps the [`MappingCache`]
//! in sync with the policy's residency decisions, and hands the array the
//! eviction work (write-backs of dirty copies) that each admission may
//! trigger. It is also responsible for the upgrade-time invalidation of the
//! whole cache partition.

use serde::{Deserialize, Serialize};

use craid_cache::{AccessMeta, AccessOutcome, PolicyKind, ReplacementPolicy};
use craid_diskmodel::IoKind;

use crate::mapping::MappingCache;
use crate::partition::CachePartition;

/// What the monitor decided about one block access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockDecision {
    /// The block already had a cached copy at this cache-partition slot.
    Cached {
        /// Slot of the existing copy.
        slot: u64,
    },
    /// The block was just admitted and assigned this slot; the caller must
    /// copy the data into the slot (for reads) or write the new data there
    /// (for writes).
    Admitted {
        /// Slot assigned to the new copy.
        slot: u64,
    },
}

impl BlockDecision {
    /// The cache-partition slot the block lives in after this access.
    pub fn slot(self) -> u64 {
        match self {
            BlockDecision::Cached { slot } | BlockDecision::Admitted { slot } => slot,
        }
    }

    /// True if the access hit an existing cached copy.
    pub fn is_hit(self) -> bool {
        matches!(self, BlockDecision::Cached { .. })
    }
}

/// Write-back work produced by an eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionTask {
    /// Archive block whose cached copy was evicted.
    pub pa_block: u64,
    /// Cache slot that held the copy (already released).
    pub pc_slot: u64,
    /// True if the copy was modified and must be written back to the
    /// archive (costing the RAID-5 read-modify-write there).
    pub dirty: bool,
}

/// Counters the paper's evaluation reads off the monitor (Tables 2-4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorStats {
    /// Block accesses belonging to read requests.
    pub read_accesses: u64,
    /// Read block accesses that found a cached copy.
    pub read_hits: u64,
    /// Block accesses belonging to write requests.
    pub write_accesses: u64,
    /// Write block accesses that found a cached copy.
    pub write_hits: u64,
    /// Evictions triggered by read admissions.
    pub read_evictions: u64,
    /// Evictions triggered by write admissions.
    pub write_evictions: u64,
    /// Evictions whose victim was dirty (requiring archive write-back).
    pub dirty_evictions: u64,
}

impl MonitorStats {
    /// Overall hit ratio across reads and writes, in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        ratio(
            self.read_hits + self.write_hits,
            self.read_accesses + self.write_accesses,
        )
    }

    /// Hit ratio of read block accesses.
    pub fn read_hit_ratio(&self) -> f64 {
        ratio(self.read_hits, self.read_accesses)
    }

    /// Hit ratio of write block accesses.
    pub fn write_hit_ratio(&self) -> f64 {
        ratio(self.write_hits, self.write_accesses)
    }

    /// Overall replacement (eviction) ratio: evictions per block access.
    pub fn replacement_ratio(&self) -> f64 {
        ratio(
            self.read_evictions + self.write_evictions,
            self.read_accesses + self.write_accesses,
        )
    }

    /// Evictions per read block access.
    pub fn read_eviction_ratio(&self) -> f64 {
        ratio(self.read_evictions, self.read_accesses)
    }

    /// Evictions per write block access.
    pub fn write_eviction_ratio(&self) -> f64 {
        ratio(self.write_evictions, self.write_accesses)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The I/O monitor: replacement policy + mapping cache + statistics.
#[derive(Debug)]
pub struct IoMonitor {
    policy: Box<dyn ReplacementPolicy>,
    policy_kind: PolicyKind,
    mapping: MappingCache,
    stats: MonitorStats,
    /// Per-block access counts — the heat signal the background engine's
    /// `HotFirst` priority orders rebuilds and migrations by. Survives
    /// invalidations (it is access history, not residency). A BTree map so
    /// iteration (`hottest_blocks`) walks keys in a deterministic order
    /// before the heat-ranked sort applies its own tie-break.
    heat: std::collections::BTreeMap<u64, u64>,
}

impl IoMonitor {
    /// Creates a monitor using `policy_kind` with room for `capacity_blocks`
    /// cached blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks` is zero.
    pub fn new(policy_kind: PolicyKind, capacity_blocks: u64) -> Self {
        assert!(capacity_blocks > 0, "cache capacity must be positive");
        IoMonitor {
            policy: policy_kind.build(capacity_blocks as usize),
            policy_kind,
            mapping: MappingCache::new(),
            stats: MonitorStats::default(),
            heat: std::collections::BTreeMap::new(),
        }
    }

    /// The policy the monitor was configured with.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy_kind
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &MonitorStats {
        &self.stats
    }

    /// Number of blocks currently cached.
    pub fn cached_blocks(&self) -> usize {
        self.mapping.len()
    }

    /// Read access to the mapping cache (for the redirector).
    pub fn mapping(&self) -> &MappingCache {
        &self.mapping
    }

    /// Looks up whether `pa_block` currently has a cached copy and where.
    pub fn cached_slot(&self, pa_block: u64) -> Option<u64> {
        self.mapping.lookup(pa_block).map(|m| m.pc_block)
    }

    /// Records one block access and returns the placement decision plus any
    /// eviction work it triggered.
    ///
    /// # Panics
    ///
    /// Panics if the cache partition has fewer free slots than the policy
    /// believes (the two are kept in lock-step by construction).
    pub fn access(
        &mut self,
        pa_block: u64,
        kind: IoKind,
        request_blocks: u64,
        pc: &mut CachePartition,
    ) -> (BlockDecision, Vec<EvictionTask>) {
        let meta = match kind {
            IoKind::Read => AccessMeta::read(request_blocks),
            IoKind::Write => AccessMeta::write(request_blocks),
        };
        match kind {
            IoKind::Read => self.stats.read_accesses += 1,
            IoKind::Write => self.stats.write_accesses += 1,
        }
        *self.heat.entry(pa_block).or_insert(0) += 1;

        let outcome = self.policy.access(pa_block, meta);
        match outcome {
            AccessOutcome::Hit => {
                match kind {
                    IoKind::Read => self.stats.read_hits += 1,
                    IoKind::Write => self.stats.write_hits += 1,
                }
                if kind.is_write() {
                    self.mapping.mark_dirty(pa_block);
                }
                let slot = self
                    .mapping
                    .lookup(pa_block)
                    .expect("policy residency and mapping cache are in lock-step")
                    .pc_block;
                (BlockDecision::Cached { slot }, Vec::new())
            }
            AccessOutcome::Inserted => {
                let slot = pc
                    .allocate()
                    .expect("policy capacity equals cache-partition capacity");
                self.mapping.insert(pa_block, slot, kind.is_write());
                // The tracer's ambient clock was set by the replay loop for
                // this request; with no tracer installed this builds nothing.
                craid_obs::emit(|now| {
                    craid_obs::TraceEvent::instant(craid_obs::SpanCategory::Cache, "admit", now)
                        .arg("block", pa_block)
                        .arg("write", kind.is_write())
                });
                craid_obs::counter_add("cache.admissions", 1);
                (BlockDecision::Admitted { slot }, Vec::new())
            }
            AccessOutcome::InsertedWithEviction(evicted) => {
                match kind {
                    IoKind::Read => self.stats.read_evictions += 1,
                    IoKind::Write => self.stats.write_evictions += 1,
                }
                let victim = self
                    .mapping
                    .remove(evicted.block)
                    .expect("evicted block must have a mapping");
                pc.release(victim.pc_block);
                let dirty = victim.dirty;
                if dirty {
                    self.stats.dirty_evictions += 1;
                }
                let slot = pc.allocate().expect("the eviction just freed a slot");
                self.mapping.insert(pa_block, slot, kind.is_write());
                craid_obs::emit(|now| {
                    craid_obs::TraceEvent::instant(craid_obs::SpanCategory::Cache, "admit", now)
                        .arg("block", pa_block)
                        .arg("write", kind.is_write())
                });
                craid_obs::emit(|now| {
                    craid_obs::TraceEvent::instant(craid_obs::SpanCategory::Cache, "evict", now)
                        .arg("block", evicted.block)
                        .arg("dirty", dirty)
                });
                craid_obs::counter_add("cache.admissions", 1);
                craid_obs::counter_add("cache.evictions", 1);
                (
                    BlockDecision::Admitted { slot },
                    vec![EvictionTask {
                        pa_block: evicted.block,
                        pc_slot: victim.pc_block,
                        dirty,
                    }],
                )
            }
        }
    }

    /// Invalidates the whole cache partition (the paper's upgrade step):
    /// every cached block is dropped, dirty copies are returned as write-back
    /// tasks, and all slots are released. The caller typically rebuilds the
    /// cache partition over the new device set afterwards and calls
    /// [`IoMonitor::resize`].
    pub fn invalidate_all(&mut self, pc: &mut CachePartition) -> Vec<EvictionTask> {
        self.policy.clear();
        let mut tasks = Vec::new();
        for (pa_block, mapping) in self.mapping.drain() {
            pc.release(mapping.pc_block);
            if mapping.dirty {
                self.stats.dirty_evictions += 1;
                tasks.push(EvictionTask {
                    pa_block,
                    pc_slot: mapping.pc_block,
                    dirty: true,
                });
            }
        }
        tasks
    }

    /// Starts a paced cache-partition redistribution (the background-engine
    /// variant of the upgrade step): every translation is drained and its
    /// slot released, the policy is cleared, and the former contents —
    /// clean *and* dirty — are returned so the caller can enqueue them as a
    /// migration task. Unlike [`IoMonitor::invalidate_all`], nothing is
    /// counted as an eviction: the blocks are being *moved*, not dropped.
    pub fn begin_migration(
        &mut self,
        pc: &mut CachePartition,
    ) -> Vec<(u64, crate::mapping::Mapping)> {
        self.policy.clear();
        let drained = self.mapping.drain();
        for (_, mapping) in &drained {
            pc.release(mapping.pc_block);
        }
        drained
    }

    /// Re-admits a block the background migration moved into the (rebuilt)
    /// cache partition, preserving its dirty bit. Returns the assigned slot
    /// plus any eviction work the re-admission displaced, or `None` when the
    /// block is already resident (client traffic beat the migration to it).
    ///
    /// The re-admission is silent: it counts into neither the access nor the
    /// eviction statistics — it is maintenance traffic, not client load.
    pub fn readmit(
        &mut self,
        pa_block: u64,
        dirty: bool,
        pc: &mut CachePartition,
    ) -> Option<(u64, Vec<EvictionTask>)> {
        if self.mapping.contains(pa_block) {
            return None;
        }
        let meta = if dirty {
            AccessMeta::write(1)
        } else {
            AccessMeta::read(1)
        };
        match self.policy.access(pa_block, meta) {
            AccessOutcome::Hit => None, // residency and mapping are in lock-step
            AccessOutcome::Inserted => {
                let slot = pc
                    .allocate()
                    .expect("policy capacity equals cache-partition capacity");
                self.mapping.insert(pa_block, slot, dirty);
                Some((slot, Vec::new()))
            }
            AccessOutcome::InsertedWithEviction(evicted) => {
                let victim = self
                    .mapping
                    .remove(evicted.block)
                    .expect("evicted block must have a mapping");
                pc.release(victim.pc_block);
                let slot = pc.allocate().expect("the eviction just freed a slot");
                self.mapping.insert(pa_block, slot, dirty);
                Some((
                    slot,
                    vec![EvictionTask {
                        pa_block: evicted.block,
                        pc_slot: victim.pc_block,
                        dirty: victim.dirty,
                    }],
                ))
            }
        }
    }

    /// Observed access count of `pa_block` (the heat signal).
    pub fn heat_of(&self, pa_block: u64) -> u64 {
        self.heat.get(&pa_block).copied().unwrap_or(0)
    }

    /// Sorts `blocks` hottest-first (ties broken by ascending block number,
    /// so the order is deterministic).
    pub fn rank_hot_desc(&self, blocks: &mut [u64]) {
        blocks.sort_by_key(|&b| (std::cmp::Reverse(self.heat_of(b)), b));
    }

    /// Up to `limit` of the hottest blocks ever observed, hottest first
    /// (deterministic tie-break by block number). The background engine uses
    /// this to put a rebuild's hot stripes at the front of the stream.
    pub fn hottest_blocks(&self, limit: usize) -> Vec<u64> {
        let mut ranked: Vec<(u64, u64)> = self.heat.iter().map(|(&b, &h)| (b, h)).collect();
        ranked.sort_by_key(|&(b, h)| (std::cmp::Reverse(h), b));
        ranked.truncate(limit);
        ranked.into_iter().map(|(b, _)| b).collect()
    }

    /// Swaps the replacement policy mid-run (a scenario's `PolicySwitch`
    /// event), preserving the resident set and its dirty bits.
    ///
    /// The new policy is rebuilt by re-inserting every cached block in
    /// ascending block order, so the handover is deterministic; recency /
    /// frequency history beyond residency is not carried over (the new
    /// policy starts with one access per resident block).
    pub fn switch_policy(&mut self, kind: PolicyKind) {
        let mut resident: Vec<(u64, bool)> =
            self.mapping.iter().map(|(pa, m)| (pa, m.dirty)).collect();
        resident.sort_unstable();
        let mut fresh = kind.build(self.policy.capacity());
        for (pa_block, dirty) in resident {
            let meta = if dirty {
                AccessMeta::write(1)
            } else {
                AccessMeta::read(1)
            };
            let outcome = fresh.access(pa_block, meta);
            debug_assert!(
                !outcome.is_replacement(),
                "rebuilding at equal capacity cannot evict"
            );
        }
        self.policy = fresh;
        self.policy_kind = kind;
    }

    /// Adjusts the policy's capacity after the cache partition was rebuilt
    /// over a different device count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks` is zero.
    pub fn resize(&mut self, capacity_blocks: u64) {
        assert!(capacity_blocks > 0, "cache capacity must be positive");
        let evicted = self.policy.resize(capacity_blocks as usize);
        debug_assert!(
            evicted.is_empty(),
            "resize is only called right after invalidation, when the policy is empty"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craid_raid::Raid5Layout;

    fn pc(slots_per_disk: u64) -> CachePartition {
        CachePartition::new(Raid5Layout::new(4, 4, 1, slots_per_disk).unwrap(), 0, 0)
    }

    fn monitor(capacity: u64) -> IoMonitor {
        IoMonitor::new(PolicyKind::Wlru(0.5), capacity)
    }

    #[test]
    fn admission_then_hit() {
        let mut pc = pc(4); // capacity 12
        let mut m = monitor(pc.capacity());
        let (d, ev) = m.access(100, IoKind::Read, 1, &mut pc);
        assert!(matches!(d, BlockDecision::Admitted { .. }));
        assert!(ev.is_empty());
        let (d2, _) = m.access(100, IoKind::Read, 1, &mut pc);
        assert!(d2.is_hit());
        assert_eq!(d2.slot(), d.slot());
        assert_eq!(m.stats().read_hits, 1);
        assert_eq!(m.stats().read_accesses, 2);
        assert_eq!(m.cached_blocks(), 1);
        assert_eq!(m.cached_slot(100), Some(d.slot()));
        assert_eq!(m.cached_slot(999), None);
    }

    #[test]
    fn write_hit_marks_mapping_dirty() {
        let mut pc = pc(4);
        let mut m = monitor(pc.capacity());
        m.access(5, IoKind::Read, 1, &mut pc);
        assert!(!m.mapping().lookup(5).unwrap().dirty);
        m.access(5, IoKind::Write, 1, &mut pc);
        assert!(m.mapping().lookup(5).unwrap().dirty);
        assert_eq!(m.stats().write_hits, 1);
    }

    #[test]
    fn eviction_releases_and_reuses_slot() {
        let mut pc = pc(1); // capacity 3
        let mut m = monitor(pc.capacity());
        m.access(1, IoKind::Write, 1, &mut pc);
        m.access(2, IoKind::Read, 1, &mut pc);
        m.access(3, IoKind::Read, 1, &mut pc);
        assert_eq!(pc.free_slots(), 0);
        // Fourth distinct block must evict one of the first three.
        let (d, ev) = m.access(4, IoKind::Read, 1, &mut pc);
        assert!(matches!(d, BlockDecision::Admitted { .. }));
        assert_eq!(ev.len(), 1);
        assert_eq!(
            ev[0].pc_slot,
            d.slot(),
            "the freed slot is reused immediately"
        );
        assert_eq!(m.cached_blocks(), 3);
        assert_eq!(pc.free_slots(), 0);
        assert_eq!(m.stats().read_evictions, 1);
    }

    #[test]
    fn wlru_prefers_clean_victims_reducing_dirty_evictions() {
        // One dirty and two clean blocks: WLRU must evict a clean one.
        let mut pc = pc(1);
        let mut m = monitor(pc.capacity());
        m.access(1, IoKind::Write, 1, &mut pc); // dirty, LRU position
        m.access(2, IoKind::Read, 1, &mut pc);
        m.access(3, IoKind::Read, 1, &mut pc);
        let (_, ev) = m.access(4, IoKind::Read, 1, &mut pc);
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].dirty, "WLRU should have picked a clean victim");
        assert_eq!(m.stats().dirty_evictions, 0);
        assert!(m.mapping().contains(1), "the dirty block survived");
    }

    #[test]
    fn invalidate_all_returns_only_dirty_writebacks() {
        let mut pc = pc(2); // capacity 6
        let mut m = monitor(pc.capacity());
        m.access(1, IoKind::Write, 1, &mut pc);
        m.access(2, IoKind::Read, 1, &mut pc);
        m.access(3, IoKind::Write, 1, &mut pc);
        let tasks = m.invalidate_all(&mut pc);
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().all(|t| t.dirty));
        assert_eq!(m.cached_blocks(), 0);
        assert_eq!(pc.free_slots(), pc.capacity());
        // The monitor can be resized and keeps working afterwards.
        m.resize(pc.capacity() * 2);
        let (d, _) = m.access(9, IoKind::Read, 1, &mut pc);
        assert!(matches!(d, BlockDecision::Admitted { .. }));
    }

    #[test]
    fn stats_ratios() {
        let mut pc = pc(1);
        let mut m = monitor(pc.capacity());
        for b in 0..3 {
            m.access(b, IoKind::Read, 1, &mut pc);
        }
        for b in 0..3 {
            m.access(b, IoKind::Write, 1, &mut pc);
        }
        let s = m.stats();
        assert_eq!(s.read_hit_ratio(), 0.0);
        assert_eq!(s.write_hit_ratio(), 1.0);
        assert_eq!(s.hit_ratio(), 0.5);
        assert_eq!(s.replacement_ratio(), 0.0);
        // Overflow the cache from a write: eviction attributed to writes.
        m.access(100, IoKind::Write, 1, &mut pc);
        assert!(m.stats().write_eviction_ratio() > 0.0);
        assert_eq!(m.stats().read_eviction_ratio(), 0.0);
    }

    #[test]
    fn heat_ranks_blocks_by_access_count() {
        let mut pc = pc(4);
        let mut m = monitor(pc.capacity());
        for _ in 0..3 {
            m.access(5, IoKind::Read, 1, &mut pc);
        }
        m.access(9, IoKind::Write, 1, &mut pc);
        m.access(9, IoKind::Read, 1, &mut pc);
        m.access(1, IoKind::Read, 1, &mut pc);
        assert_eq!(m.heat_of(5), 3);
        assert_eq!(m.heat_of(9), 2);
        assert_eq!(m.heat_of(42), 0);
        let mut blocks = vec![1, 5, 9, 42];
        m.rank_hot_desc(&mut blocks);
        assert_eq!(blocks, vec![5, 9, 1, 42]);
        assert_eq!(m.hottest_blocks(2), vec![5, 9]);
    }

    #[test]
    fn begin_migration_drains_everything_without_counting_evictions() {
        let mut pc = pc(2);
        let mut m = monitor(pc.capacity());
        m.access(1, IoKind::Write, 1, &mut pc);
        m.access(2, IoKind::Read, 1, &mut pc);
        let drained = m.begin_migration(&mut pc);
        assert_eq!(drained.len(), 2, "clean and dirty entries are returned");
        assert!(drained.iter().any(|(b, map)| *b == 1 && map.dirty));
        assert!(drained.iter().any(|(b, map)| *b == 2 && !map.dirty));
        assert_eq!(m.cached_blocks(), 0);
        assert_eq!(pc.free_slots(), pc.capacity());
        assert_eq!(m.stats().dirty_evictions, 0, "moves are not evictions");
        // Heat history survives the migration.
        assert_eq!(m.heat_of(1), 1);
    }

    #[test]
    fn readmit_restores_residency_silently_and_preserves_dirty() {
        let mut pc = pc(2);
        let mut m = monitor(pc.capacity());
        m.access(1, IoKind::Write, 1, &mut pc);
        let drained = m.begin_migration(&mut pc);
        let accesses_before = m.stats().read_accesses + m.stats().write_accesses;
        let (pa, mapping) = drained[0];
        let (slot, evictions) = m.readmit(pa, mapping.dirty, &mut pc).unwrap();
        assert!(evictions.is_empty());
        assert!(m.mapping().lookup(pa).unwrap().dirty);
        assert_eq!(m.mapping().lookup(pa).unwrap().pc_block, slot);
        assert_eq!(
            m.stats().read_accesses + m.stats().write_accesses,
            accesses_before,
            "re-admission does not count as client traffic"
        );
        // A second readmit is a no-op: the block is already home.
        assert!(m.readmit(pa, mapping.dirty, &mut pc).is_none());
    }

    #[test]
    fn policy_kind_is_exposed() {
        let m = monitor(8);
        assert_eq!(m.policy_kind(), PolicyKind::Wlru(0.5));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        monitor(0);
    }
}
