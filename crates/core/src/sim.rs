//! The trace-replay simulation driver.
//!
//! [`Simulation`] replays a [`Trace`] against the array described by an
//! [`ArrayConfig`] and collects every measurement the paper's evaluation
//! reports. The workload generator issues each request at its recorded time
//! (open loop), the array turns it into device I/Os, and the metrics
//! trackers observe the per-device traffic.
//!
//! [`DatasetMapper`] scatters the trace's dataset uniformly across the
//! archive partition (the paper maps its datasets "onto the simulated disks
//! uniformly so that all disks have the same access probability"), while
//! preserving intra-request contiguity at extent granularity.
//!
//! [`policy_quality`] reproduces the setup of Tables 2 and 3: the policies
//! are exercised against the raw block stream with an instant disk model, so
//! hit and replacement ratios can be compared without queueing interference.

use craid_cache::{AccessMeta, PolicyKind};
use craid_diskmodel::{BlockRange, IoKind};
use craid_simkit::SimTime;
use craid_trace::{SyntheticWorkload, Trace, TraceRecord};

use crate::array::{build_array, ExpansionReport, RequestReport};
use crate::config::ArrayConfig;
use crate::error::CraidError;
use crate::observer::{MetricsCollector, NullObserver, Observer, RequestOutcome};
use crate::report::{CraidStats, SimulationReport};
use crate::scenario::{AppliedEvent, ScheduledEvent};

/// Scatter granularity of the dataset mapper: large enough that almost every
/// client request stays contiguous after mapping, small enough to spread the
/// dataset across the whole archive.
const MAP_EXTENT_BLOCKS: u64 = 256;

/// Maps dataset-relative block numbers onto the archive partition's logical
/// address space, scattering extents with a fixed coprime stride.
#[derive(Debug, Clone)]
pub struct DatasetMapper {
    dataset_blocks: u64,
    target_extents: u64,
    stride: u64,
}

impl DatasetMapper {
    /// Creates a mapper scattering `dataset_blocks` over `target_capacity`
    /// logical blocks.
    ///
    /// # Panics
    ///
    /// Panics if the dataset does not fit in the target capacity.
    pub fn new(dataset_blocks: u64, target_capacity: u64, seed: u64) -> Self {
        assert!(
            dataset_blocks > 0,
            "dataset must contain at least one block"
        );
        assert!(
            target_capacity >= dataset_blocks,
            "dataset ({dataset_blocks} blocks) does not fit in the volume ({target_capacity} blocks)"
        );
        let target_extents = (target_capacity / MAP_EXTENT_BLOCKS).max(1);
        // A deterministic odd stride derived from the seed, made coprime with
        // the extent count.
        let mut stride = (seed | 1).wrapping_mul(2_654_435_761) % target_extents.max(1);
        stride = stride.max(1) | 1;
        while gcd(stride, target_extents) != 1 {
            stride += 2;
        }
        DatasetMapper {
            dataset_blocks,
            target_extents,
            stride,
        }
    }

    /// Maps one dataset-relative range onto one or more volume ranges
    /// (usually one; more when the range straddles a scatter extent).
    pub fn map(&self, range: BlockRange) -> Vec<BlockRange> {
        let mut out = Vec::with_capacity(range.len().div_ceil(MAP_EXTENT_BLOCKS) as usize + 1);
        self.map_into(range, &mut out);
        out
    }

    /// Allocation-free variant of [`DatasetMapper::map`] for the replay hot
    /// loop: clears `out` and fills it with the mapped sub-ranges.
    pub fn map_into(&self, range: BlockRange, out: &mut Vec<BlockRange>) {
        assert!(
            range.end() <= self.dataset_blocks,
            "request {range} outside the dataset of {} blocks",
            self.dataset_blocks
        );
        out.clear();
        for chunk in range.chunks(MAP_EXTENT_BLOCKS) {
            // Split chunks that straddle an extent boundary.
            let first_extent = chunk.start() / MAP_EXTENT_BLOCKS;
            let last_extent = (chunk.end() - 1) / MAP_EXTENT_BLOCKS;
            if first_extent == last_extent {
                out.push(self.map_within_extent(chunk));
            } else {
                let split = (first_extent + 1) * MAP_EXTENT_BLOCKS;
                out.push(
                    self.map_within_extent(BlockRange::new(chunk.start(), split - chunk.start())),
                );
                out.push(self.map_within_extent(BlockRange::new(split, chunk.end() - split)));
            }
        }
    }

    fn map_within_extent(&self, range: BlockRange) -> BlockRange {
        let extent = range.start() / MAP_EXTENT_BLOCKS;
        let offset = range.start() % MAP_EXTENT_BLOCKS;
        let target_extent = (extent.wrapping_mul(self.stride)) % self.target_extents;
        BlockRange::new(target_extent * MAP_EXTENT_BLOCKS + offset, range.len())
    }
}

/// Euclid's algorithm (shared with the baseline array's coprime-stride
/// restripe sampler).
pub(crate) fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Replays traces against a configured array and produces
/// [`SimulationReport`]s.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: ArrayConfig,
}

impl Simulation {
    /// Creates a driver for the given configuration.
    pub fn new(config: ArrayConfig) -> Self {
        Simulation { config }
    }

    /// The configuration this driver runs.
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// Replays `trace` and returns the full measurement report.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (use [`Simulation::try_run`]
    /// for a fallible variant).
    pub fn run(&self, trace: &Trace) -> SimulationReport {
        self.try_run(trace)
            .expect("simulation configuration is valid")
    }

    /// Fallible variant of [`Simulation::run`].
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the configuration is inconsistent.
    pub fn try_run(&self, trace: &Trace) -> Result<SimulationReport, CraidError> {
        self.try_run_events(trace, &[], &mut NullObserver)
            .map(|(report, _, _)| report)
    }

    /// Statically analyses this configuration plus an event schedule —
    /// the storage-graph rules and the symbolic timeline interpreter of
    /// [`crate::analyze`] — without replaying anything. The replay-reach
    /// check is skipped (no workload is attached here);
    /// [`crate::Scenario::analyze`] has the full picture.
    pub fn analyze(&self, events: &[ScheduledEvent]) -> crate::analyze::Analysis {
        crate::analyze::analyze_config_events(&self.config, events)
    }

    /// Replays `trace` while driving a [`ScheduledEvent`] timeline, with
    /// every hook delivered to `observer` (pass
    /// [`NullObserver`] when nothing needs to watch).
    ///
    /// The schedule is stable-sorted by time, so events at equal times
    /// apply in declaration order. Events scheduled after the last request
    /// still execute, but outside the measurement window (their device
    /// traffic does not count into the report's trackers, matching the
    /// paper's methodology of measuring while the workload runs).
    ///
    /// [`ScheduledEvent::WorkloadPhase`] events carrying a workload source
    /// swap the active trace segment: the replay is truncated at the phase
    /// time and continues with the new workload's records from there.
    ///
    /// One interleaving loop drives every background task the array has in
    /// flight (rebuilds, paced expansion migrations, paced archive
    /// restripes): the engine is pumped once per client request and splits
    /// each pump's budget across concurrent tasks by the configured fair
    /// shares, so maintenance I/O contends with traffic exactly as the
    /// paper's online claim requires. Work still in flight when the trace
    /// (and any post-trace events) end is drained afterwards, outside the
    /// measurement window, and reported as
    /// [`SimulationReport::background_drain_secs`] — a short trace cannot
    /// freeze a rebuild mid-air or leave an MTTR unrecorded.
    ///
    /// When the configuration carries a QoS spec ([`ArrayConfig::qos`]), a
    /// [`QosController`](crate::qos::QosController) additionally watches
    /// every client completion and retargets the array's maintenance
    /// throttle ahead of each pump (AIMD between the spec's floor and the
    /// configured rates); its [`QosStats`](crate::report::QosStats) ride
    /// on the report. Without a spec no controller exists and the engine's
    /// static pacing is untouched.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the configuration or an event is
    /// invalid.
    pub fn try_run_events(
        &self,
        trace: &Trace,
        events: &[ScheduledEvent],
        observer: &mut dyn Observer,
    ) -> Result<(SimulationReport, Vec<ExpansionReport>, Vec<AppliedEvent>), CraidError> {
        self.try_run_events_sharded(trace, events, observer, 1)
    }

    /// Like [`Simulation::try_run_events`], but with the device-event
    /// metrics pipeline sharded across `threads` worker threads (one shard
    /// per parity group of devices, merged deterministically at the end).
    ///
    /// The report is **bit-identical** to the single-threaded one for any
    /// `threads`: devices are partitioned across shards, so every per-device
    /// accumulation happens on one worker in replay order, and the merge
    /// reassembles exactly the per-second aggregates the inline trackers
    /// compute. `threads <= 1` runs the inline pipeline.
    ///
    /// # Errors
    ///
    /// Returns a [`CraidError`] if the configuration or an event is
    /// invalid.
    pub fn try_run_events_sharded(
        &self,
        trace: &Trace,
        events: &[ScheduledEvent],
        observer: &mut dyn Observer,
        threads: usize,
    ) -> Result<(SimulationReport, Vec<ExpansionReport>, Vec<AppliedEvent>), CraidError> {
        let composed = compose_phase_swaps(trace, events);
        let trace = composed.as_ref().unwrap_or(trace);
        let mut config = self.config.clone();
        config.dataset_blocks = config.dataset_blocks.max(trace.footprint_blocks());
        let mut array = build_array(&config)?;
        let mapper = DatasetMapper::new(
            trace.footprint_blocks(),
            array.capacity_blocks(),
            config.seed,
        );

        // Stable sort: equal times keep declaration order. The model
        // checker may permute equal-time groups (the declaration-order
        // tie-break is a policy, not a law); branch 0 keeps it.
        let mut schedule: Vec<&ScheduledEvent> = events.iter().collect();
        schedule.sort_by_key(|e| e.at());
        permute_equal_time_groups(&mut schedule);
        let mut pending = schedule.into_iter().peekable();

        let total_added: usize = events
            .iter()
            .map(|e| match e {
                ScheduledEvent::Expand { added_disks, .. } => *added_disks,
                ScheduledEvent::PolicySwitch { .. }
                | ScheduledEvent::WorkloadPhase { .. }
                | ScheduledEvent::DiskFailure { .. }
                | ScheduledEvent::DiskRepair { .. } => 0,
            })
            .sum();
        let device_slots = array.device_count() + total_added;
        let mut metrics = if threads > 1 {
            MetricsCollector::new_sharded(device_slots, config.parity_group.max(1), threads)
        } else {
            MetricsCollector::new(device_slots)
        };
        observer.on_start(&config, trace);

        let mut expansion_reports = Vec::new();
        let mut applied_events = Vec::new();
        let mut end_time = SimTime::ZERO;

        // The QoS control loop, when the configuration carries an SLO: the
        // controller watches client completions through a sliding window
        // and retargets the array's maintenance throttle ahead of every
        // background pump. Without a `[qos]` spec no controller exists and
        // the engine's static pacing is untouched.
        let mut qos = config.qos.clone().map(crate::qos::QosController::new);

        // Event-clocked pumping: outside the model checker the engine is
        // polled only when a pacing clock says work can actually be due
        // (`background_work_due`), turning the once-per-request pump into
        // O(completions). Under `--explore` the per-request cadence is kept
        // so the explored decision tree is unchanged.
        let event_clocked = !crate::choice::active();
        // Request-path scratch, reused across records: the mapped sub-range
        // list, the outcome's report list, and the background event buffer
        // (reclaimed from the outcome after the observer hooks ran).
        let mut ranges: Vec<BlockRange> = Vec::new();
        let mut background: Vec<crate::devices::DeviceIoEvent> = Vec::new();
        let mut outcome = RequestOutcome {
            worst_ms: 0.0,
            reports: Vec::new(),
        };

        for record in trace {
            end_time = end_time.max(record.time);
            // Advance the tracer's ambient clock (a no-op on untraced
            // runs): subsystems without a time parameter — the I/O monitor's
            // cache instants — stamp their events with this.
            craid_obs::set_now(record.time);
            // Apply every event whose time has come.
            while let Some(event) = pending.peek() {
                if event.at() > record.time {
                    break;
                }
                let event = pending.next().expect("peeked event exists");
                let expansion = apply_event(array.as_mut(), event)?;
                metrics.on_event(event, expansion.as_ref());
                observer.on_event(event, expansion.as_ref());
                applied_events.push(AppliedEvent {
                    at: event.at(),
                    description: event.describe(),
                    during_replay: true,
                });
                if let Some(report) = expansion {
                    expansion_reports.push(report);
                }
            }

            // One control decision ahead of the pump: while the sliding
            // window violates the SLO the maintenance throttle backs off
            // multiplicatively; while it is met it recovers additively.
            // The control decision normally lands before the pump; the
            // model checker may let the pump race ahead of it (branch 1),
            // as a real engine thread would against an async controller.
            let pump_first = qos.is_some()
                && crate::choice::choose(crate::choice::DecisionPoint::ThrottlePumpOrder, 2) == 1;
            background.clear();
            if pump_first && (!event_clocked || array.background_work_due(record.time)) {
                let _stage = craid_obs::profile::timer(craid_obs::profile::Stage::Pump);
                array.pump_background_into(record.time, &mut background);
            }
            if let Some(controller) = qos.as_mut() {
                if let Some(retarget) = controller.evaluate(record.time) {
                    array.set_background_throttle(record.time, retarget.scale);
                    if retarget.notable {
                        observer.on_throttle(record.time, retarget.scale);
                    }
                }
            }

            // One catch-up step of the background engine ahead of the
            // client I/O: rebuild and migration batches occupy devices (the
            // client does not wait on them) and count into the measurement
            // window like any other traffic.
            if !pump_first && (!event_clocked || array.background_work_due(record.time)) {
                let _stage = craid_obs::profile::timer(craid_obs::profile::Stage::Pump);
                array.pump_background_into(record.time, &mut background);
            }
            if let Some(controller) = qos.as_mut() {
                controller.note_maintenance(&background);
            }
            for activation in array.take_activations() {
                craid_obs::emit(|_| {
                    craid_obs::TraceEvent::instant(
                        craid_obs::SpanCategory::Activation,
                        "deferred-activation",
                        activation.at,
                    )
                    .arg("added_disks", activation.added_disks as u64)
                });
                craid_obs::counter_add("activations", 1);
                observer.on_deferred_activation(activation.at, activation.added_disks);
            }

            {
                let _stage = craid_obs::profile::timer(craid_obs::profile::Stage::Mapping);
                mapper.map_into(BlockRange::new(record.offset, record.length), &mut ranges);
            }
            outcome.worst_ms = 0.0;
            outcome.reports.clear();
            let has_background_report = !background.is_empty();
            if has_background_report {
                outcome.reports.push(RequestReport {
                    events: std::mem::take(&mut background),
                    ..RequestReport::default()
                });
            }
            {
                let _stage = craid_obs::profile::timer(craid_obs::profile::Stage::Redirect);
                for &range in &ranges {
                    let report = array.submit(record.time, record.kind, range)?;
                    outcome.worst_ms = outcome.worst_ms.max(report.response.as_millis());
                    outcome.reports.push(report);
                }
            }
            if craid_obs::active() {
                // The request-lifecycle span: built once, shown to the
                // observer, then moved into the ring. Untraced runs skip
                // this block entirely (one thread-local flag test).
                let span = craid_obs::TraceEvent::span(
                    craid_obs::SpanCategory::Request,
                    match record.kind {
                        IoKind::Read => "read",
                        IoKind::Write => "write",
                    },
                    record.time,
                    craid_simkit::SimDuration::from_millis(outcome.worst_ms),
                )
                .arg("blocks", record.length)
                .arg("cache_hit_blocks", outcome.cache_hit_blocks());
                observer.on_span(&span);
                craid_obs::emit(move |_| span);
                craid_obs::counter_add("requests", 1);
                craid_obs::histogram_record("request.worst_ms", outcome.worst_ms);
            }
            {
                let _stage = craid_obs::profile::timer(craid_obs::profile::Stage::MetricsFold);
                if let Some(controller) = qos.as_mut() {
                    // The first report carries the pump's maintenance batch
                    // (when one was issued); the controller must only see the
                    // *client* I/O, or it would throttle against the queue
                    // depths of the very maintenance it paces.
                    let client_from = usize::from(has_background_report);
                    controller.observe(
                        record.time,
                        outcome.worst_ms,
                        &outcome.reports[client_from..],
                    );
                }
                metrics.on_request(record, &outcome);
                observer.on_request(record, &outcome);
            }
            if has_background_report {
                background = std::mem::take(&mut outcome.reports[0].events);
            }
        }

        // Events scheduled after the last request still execute, outside
        // the measurement window.
        metrics.close();
        let measured_end = end_time;
        for event in pending {
            end_time = end_time.max(event.at());
            let expansion = apply_event(array.as_mut(), event)?;
            metrics.on_event(event, expansion.as_ref());
            observer.on_event(event, expansion.as_ref());
            applied_events.push(AppliedEvent {
                at: event.at(),
                description: event.describe(),
                during_replay: false,
            });
            if let Some(report) = expansion {
                expansion_reports.push(report);
            }
        }

        // End-of-trace drain: a rebuild or migration still in flight when
        // the workload ends must not freeze forever (MTTR never recorded,
        // pending moves stuck nonzero). Like post-trace events, the drain
        // runs *outside* the measurement window; time jumps to each task's
        // exact pace-completion instant (`background_drain_eta`) so the
        // recorded windows match what an uncut trace would have produced.
        let drain_started = end_time;
        let mut drain_at = end_time;
        if qos.is_some() {
            // No clients are left to protect: release the throttle so the
            // drain runs at the full configured rates. Leaving the last
            // in-trace backoff frozen would inflate the drain (and any
            // still-running rebuild's MTTR) by up to 1/floor for no one's
            // benefit — exactly what a real controller's additive recovery
            // would undo on an idle array.
            array.set_background_throttle(drain_started, 1.0);
        }
        let mut drain_pumps = 0u64;
        while !array.background_idle() {
            // Under the model checker the drain is bounded: pacing
            // guarantees termination on the production path, but an
            // explored branch that breaks that guarantee must surface as a
            // DrainTerminates violation, not a hang.
            drain_pumps += 1;
            if crate::choice::active() && drain_pumps > crate::choice::DRAIN_PUMP_BOUND {
                crate::choice::observe(|| crate::choice::Observation::DrainAborted {
                    pumps: drain_pumps,
                });
                break;
            }
            if let Some(eta) = array.background_drain_eta() {
                drain_at = drain_at.max(eta);
            }
            let events = array.pump_background(drain_at);
            for activation in array.take_activations() {
                craid_obs::emit(|_| {
                    craid_obs::TraceEvent::instant(
                        craid_obs::SpanCategory::Activation,
                        "deferred-activation",
                        activation.at,
                    )
                    .arg("added_disks", activation.added_disks as u64)
                });
                craid_obs::counter_add("activations", 1);
                observer.on_deferred_activation(activation.at, activation.added_disks);
            }
            if events.is_empty() && !array.background_idle() {
                // The eta is computed in f64 and can round a hair short of
                // the instant the final block comes due (`rate × elapsed`
                // floors to `total − 1`), which would otherwise spin this
                // loop forever. An idle pump with work still queued means
                // exactly that: nudge time forward past the rounding error.
                drain_at += craid_simkit::SimDuration::from_millis(1.0);
            }
        }
        let drain_secs = drain_at.saturating_since(drain_started).as_secs();

        let craid = array.monitor_stats().map(|m| CraidStats {
            pc_capacity_blocks: array.pc_capacity_blocks(),
            pc_percent_per_disk: config.pc_percent_per_disk(),
            hit_ratio: m.hit_ratio(),
            read_hit_ratio: m.read_hit_ratio(),
            write_hit_ratio: m.write_hit_ratio(),
            replacement_ratio: m.replacement_ratio(),
            read_eviction_ratio: m.read_eviction_ratio(),
            write_eviction_ratio: m.write_eviction_ratio(),
            dirty_evictions: m.dirty_evictions,
        });
        let device_bytes = array.device_stats().iter().map(|s| s.bytes).collect();
        let mut report = metrics.finish(config.strategy.name(), trace.name(), craid, device_bytes);
        report.fault = array.fault_stats();
        report.migration = array.migration_stats();
        if let Some(controller) = qos {
            // The controller's watch ends with the measurement window (the
            // last trace record); post-trace events and the drain run
            // outside it and must not dilute the time accounting or the
            // effective-rate denominator.
            report.qos = controller.finish(measured_end);
        }
        report.background_drain_secs = drain_secs;
        observer.on_finish(&report);
        Ok((report, expansion_reports, applied_events))
    }
}

/// Resource footprint of one scheduled event, for the model checker's
/// sleep-set pruning: equal-time events with pairwise-disjoint footprints
/// commute, so their alternative orderings are provably equivalent and are
/// not explored.
fn event_resources(event: &ScheduledEvent) -> u8 {
    const DEVICES: u8 = 1;
    const LAYOUT: u8 = 2;
    const MONITOR: u8 = 4;
    match event {
        ScheduledEvent::Expand { .. } => DEVICES | LAYOUT | MONITOR,
        ScheduledEvent::PolicySwitch { .. } => MONITOR,
        ScheduledEvent::WorkloadPhase { .. } => 0,
        ScheduledEvent::DiskFailure { .. } | ScheduledEvent::DiskRepair { .. } => DEVICES,
    }
}

/// Lets an installed chooser permute each equal-timestamp group of the
/// sorted schedule (selection-style: one [`DecisionPoint::EventOrder`]
/// choice per position). Branch 0 everywhere keeps declaration order — the
/// pinned production tie-break — and groups whose events are pairwise
/// independent are skipped entirely (reported via `prune`).
fn permute_equal_time_groups(schedule: &mut [&ScheduledEvent]) {
    use crate::choice::{self, DecisionPoint};
    if !choice::active() {
        return;
    }
    let mut start = 0;
    while start < schedule.len() {
        let mut end = start + 1;
        while end < schedule.len() && schedule[end].at() == schedule[start].at() {
            end += 1;
        }
        let group = &mut schedule[start..end];
        if group.len() > 1 {
            let independent = group.iter().enumerate().all(|(i, a)| {
                group[i + 1..]
                    .iter()
                    .all(|b| event_resources(a) & event_resources(b) == 0)
            });
            if independent {
                choice::prune(DecisionPoint::EventOrder, group.len() - 1);
            } else {
                for i in 0..group.len() - 1 {
                    let pick = choice::choose(DecisionPoint::EventOrder, group.len() - i);
                    // Move the picked event to position i, preserving the
                    // relative order of the ones it jumps over.
                    group[i..=i + pick].rotate_right(1);
                }
            }
        }
        start = end;
    }
}

/// Applies the trace-swap semantics of [`ScheduledEvent::WorkloadPhase`]:
/// each phase event carrying a workload source truncates the composite at
/// its time and splices in the new workload's records, shifted to start
/// there. Returns `None` when no event swaps the trace (the common case —
/// label-only phases are pure markers).
fn compose_phase_swaps(base: &Trace, events: &[ScheduledEvent]) -> Option<Trace> {
    let mut swaps: Vec<(SimTime, &crate::scenario::WorkloadSource)> = events
        .iter()
        .filter_map(|e| match e {
            ScheduledEvent::WorkloadPhase {
                at,
                workload: Some(source),
                ..
            } => Some((*at, source)),
            ScheduledEvent::WorkloadPhase { workload: None, .. }
            | ScheduledEvent::Expand { .. }
            | ScheduledEvent::PolicySwitch { .. }
            | ScheduledEvent::DiskFailure { .. }
            | ScheduledEvent::DiskRepair { .. } => None,
        })
        .collect();
    if swaps.is_empty() {
        return None;
    }
    swaps.sort_by_key(|&(at, _)| at);
    let mut records: Vec<TraceRecord> = base.records().to_vec();
    let mut footprint = base.footprint_blocks();
    for (at, source) in swaps {
        records.retain(|r| r.time < at);
        let segment =
            SyntheticWorkload::paper_scaled_to(source.id, source.requests).generate(source.seed);
        footprint = footprint.max(segment.footprint_blocks());
        records.extend(segment.records().iter().map(|r| TraceRecord {
            time: SimTime::from_nanos(at.as_nanos() + r.time.as_nanos()),
            ..*r
        }));
    }
    Some(Trace::new(base.name(), footprint, records))
}

/// Applies one scheduled event to the array, returning the expansion report
/// when the event was an upgrade.
fn apply_event(
    array: &mut dyn crate::array::StorageArray,
    event: &ScheduledEvent,
) -> Result<Option<ExpansionReport>, CraidError> {
    match event {
        ScheduledEvent::Expand { at, added_disks } => array.expand(*at, *added_disks).map(Some),
        ScheduledEvent::PolicySwitch { at, policy } => {
            array.switch_policy(*at, *policy)?;
            Ok(None)
        }
        ScheduledEvent::WorkloadPhase { .. } => Ok(None),
        ScheduledEvent::DiskFailure { at, disk } => {
            array.fail_disk(*at, *disk)?;
            Ok(None)
        }
        ScheduledEvent::DiskRepair { at, disk } => {
            array.repair_disk(*at, *disk)?;
            Ok(None)
        }
    }
}

/// Hit and replacement ratios of one policy over one trace (Tables 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PolicyQuality {
    /// Fraction of block accesses that hit the cache.
    pub hit_ratio: f64,
    /// Replacements per block access.
    pub replacement_ratio: f64,
    /// Capacity the policy was given, in blocks.
    pub capacity_blocks: u64,
}

/// Replays the block stream of `trace` through `policy` with a cache of
/// `capacity_fraction` × footprint blocks and an instant storage model, as
/// the paper does for its policy-quality comparison.
///
/// # Panics
///
/// Panics if `capacity_fraction` is not in `(0, 1]`.
pub fn policy_quality(policy: PolicyKind, trace: &Trace, capacity_fraction: f64) -> PolicyQuality {
    assert!(
        capacity_fraction > 0.0 && capacity_fraction <= 1.0,
        "capacity fraction must be in (0, 1], got {capacity_fraction}"
    );
    let capacity = ((trace.footprint_blocks() as f64 * capacity_fraction) as usize).max(1);
    let mut cache = policy.build(capacity);
    let mut accesses = 0u64;
    let mut hits = 0u64;
    let mut replacements = 0u64;
    for record in trace {
        let meta = match record.kind {
            IoKind::Read => AccessMeta::read(record.length),
            IoKind::Write => AccessMeta::write(record.length),
        };
        for block in record.blocks() {
            accesses += 1;
            let outcome = cache.access(block, meta);
            if outcome.is_hit() {
                hits += 1;
            }
            if outcome.is_replacement() {
                replacements += 1;
            }
        }
    }
    PolicyQuality {
        hit_ratio: if accesses == 0 {
            0.0
        } else {
            hits as f64 / accesses as f64
        },
        replacement_ratio: if accesses == 0 {
            0.0
        } else {
            replacements as f64 / accesses as f64
        },
        capacity_blocks: capacity as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StrategyKind;
    use craid_simkit::SimTime;
    use craid_trace::{SyntheticWorkload, WorkloadId};

    fn tiny_trace() -> Trace {
        SyntheticWorkload::paper(WorkloadId::Wdev)
            .scale(400_000)
            .generate(3)
    }

    #[test]
    fn mapper_preserves_length_and_stays_in_bounds() {
        let mapper = DatasetMapper::new(10_000, 1_000_000, 42);
        for start in [0u64, 100, 255, 256, 9_990] {
            let len = 8.min(10_000 - start);
            let mapped = mapper.map(BlockRange::new(start, len));
            let total: u64 = mapped.iter().map(|r| r.len()).sum();
            assert_eq!(total, len);
            assert!(mapped.iter().all(|r| r.end() <= 1_000_000));
        }
    }

    #[test]
    fn mapper_is_injective_on_extents() {
        let mapper = DatasetMapper::new(4_096, 65_536, 7);
        let mut seen = std::collections::HashSet::new();
        for extent in 0..(4_096 / MAP_EXTENT_BLOCKS) {
            let mapped = mapper.map(BlockRange::new(extent * MAP_EXTENT_BLOCKS, 1));
            assert!(
                seen.insert(mapped[0].start()),
                "two extents mapped to the same place"
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn mapper_rejects_oversized_datasets() {
        DatasetMapper::new(1_000, 500, 0);
    }

    #[test]
    fn simulation_produces_complete_report() {
        let trace = tiny_trace();
        let config = ArrayConfig::small_test(StrategyKind::Craid5, trace.footprint_blocks());
        let report = Simulation::new(config).run(&trace);
        assert_eq!(report.requests, trace.len() as u64);
        assert_eq!(report.workload, "wdev");
        assert_eq!(report.strategy, "CRAID-5");
        assert!(report.read.count + report.write.count == report.requests);
        assert!(report.write.mean_ms > 0.0);
        let craid = report.craid.expect("CRAID run must report cache stats");
        assert!(
            craid.hit_ratio > 0.0,
            "a skewed workload must produce cache hits"
        );
        assert!(!report.device_bytes.is_empty());
        assert!(!report.load_balance.cv_cdf.is_empty());
    }

    #[test]
    fn baseline_report_has_no_craid_stats() {
        let trace = tiny_trace();
        let config = ArrayConfig::small_test(StrategyKind::Raid5, trace.footprint_blocks());
        let report = Simulation::new(config).run(&trace);
        assert!(report.craid.is_none());
        assert!(report.requests > 0);
    }

    #[test]
    fn expansions_are_applied_mid_run() {
        let trace = tiny_trace();
        let config = ArrayConfig::small_test(StrategyKind::Craid5Plus, trace.footprint_blocks());
        let half_time = SimTime::from_secs(trace.duration().as_secs() / 2.0);
        let events = [ScheduledEvent::expand(half_time, 4)];
        let (report, expansions, applied) = Simulation::new(config)
            .try_run_events(&trace, &events, &mut NullObserver)
            .unwrap();
        assert_eq!(expansions.len(), 1);
        assert_eq!(expansions[0].added_disks, 4);
        assert_eq!(applied.len(), 1);
        assert!(applied[0].during_replay);
        assert!(report.requests > 0);
    }

    #[test]
    fn disk_failure_and_repair_events_apply_and_report_fault_stats() {
        let trace = tiny_trace();
        let config = ArrayConfig::small_test(StrategyKind::Raid5, trace.footprint_blocks());
        let quarter = SimTime::from_secs(trace.duration().as_secs() / 4.0);
        let half = SimTime::from_secs(trace.duration().as_secs() / 2.0);
        let events = [
            ScheduledEvent::disk_failure(quarter, 2),
            ScheduledEvent::disk_repair(half, 2),
        ];
        let (report, expansions, applied) = Simulation::new(config)
            .try_run_events(&trace, &events, &mut NullObserver)
            .unwrap();
        assert!(expansions.is_empty(), "neither event expands the array");
        assert_eq!(applied.len(), 2);
        assert!(applied[0].description.contains("fail disk 2"));
        assert!(applied[1].description.contains("repair disk 2"));
        let fault = report.fault;
        assert_eq!(fault.disk_failures, 1);
        assert_eq!(fault.disk_repairs, 1);
        assert!(fault.degraded_reads > 0, "degraded reads were served");
        assert!(
            fault.reconstruction_ios >= 3 * fault.degraded_reads,
            "each degraded read fans out to the G-1 surviving members"
        );
        assert!(fault.rebuild_write_blocks > 0, "rebuild traffic flowed");
    }

    #[test]
    fn failing_an_unknown_disk_is_rejected_not_swallowed() {
        let trace = tiny_trace();
        let config = ArrayConfig::small_test(StrategyKind::Craid5, trace.footprint_blocks());
        let events = [ScheduledEvent::disk_failure(SimTime::from_secs(1.0), 99)];
        let result = Simulation::new(config).try_run_events(&trace, &events, &mut NullObserver);
        assert!(matches!(result, Err(CraidError::InvalidFault(_))));
    }

    #[test]
    fn policy_switch_and_phase_events_apply() {
        let trace = tiny_trace();
        let config = ArrayConfig::small_test(StrategyKind::Craid5, trace.footprint_blocks());
        let quarter = SimTime::from_secs(trace.duration().as_secs() / 4.0);
        let half = SimTime::from_secs(trace.duration().as_secs() / 2.0);
        let events = [
            ScheduledEvent::workload_phase(quarter, "warm"),
            ScheduledEvent::policy_switch(half, craid_cache::PolicyKind::Arc),
        ];
        let (report, expansions, applied) = Simulation::new(config)
            .try_run_events(&trace, &events, &mut NullObserver)
            .unwrap();
        assert!(expansions.is_empty(), "neither event expands the array");
        assert_eq!(applied.len(), 2);
        assert!(applied[0].description.contains("warm"));
        assert!(applied[1].description.contains("ARC"));
        let craid = report.craid.expect("CRAID stats survive a policy switch");
        assert!(
            craid.hit_ratio > 0.0,
            "cache keeps hitting after the switch"
        );
    }

    #[test]
    fn workload_phase_with_source_swaps_the_trace_segment() {
        let trace = tiny_trace();
        let config = ArrayConfig::small_test(StrategyKind::Raid5, trace.footprint_blocks());
        let half = SimTime::from_secs(trace.duration().as_secs() / 2.0);
        let swap = [ScheduledEvent::workload_phase_swap(
            half,
            "proj takes over",
            crate::scenario::WorkloadSource {
                id: WorkloadId::Proj,
                requests: 300,
                seed: 9,
            },
        )];
        let (swapped, _, applied) = Simulation::new(config.clone())
            .try_run_events(&trace, &swap, &mut NullObserver)
            .unwrap();
        assert_eq!(applied.len(), 1);
        assert!(applied[0].description.contains("switch trace"));
        // The composite replays the base records before the swap plus the
        // whole new segment — not the base tail.
        let before_swap = trace.iter().filter(|r| r.time < half).count() as u64;
        let segment = SyntheticWorkload::paper_scaled_to(WorkloadId::Proj, 300).generate(9);
        assert_eq!(swapped.requests, before_swap + segment.len() as u64);
        assert!(swapped.requests != trace.len() as u64);
        // A marker-only phase leaves the trace untouched.
        let marker = [ScheduledEvent::workload_phase(half, "no swap")];
        let (plain, _, _) = Simulation::new(config)
            .try_run_events(&trace, &marker, &mut NullObserver)
            .unwrap();
        assert_eq!(plain.requests, trace.len() as u64);
        // Same scenario, same composite: the swap is deterministic.
        let (again, _, _) = Simulation::new(ArrayConfig::small_test(
            StrategyKind::Raid5,
            trace.footprint_blocks(),
        ))
        .try_run_events(&trace, &swap, &mut NullObserver)
        .unwrap();
        assert_eq!(again, swapped);
    }

    #[test]
    fn policy_quality_matches_paper_ordering() {
        let trace = tiny_trace();
        let arc = policy_quality(PolicyKind::Arc, &trace, 0.05);
        let lru = policy_quality(PolicyKind::Lru, &trace, 0.05);
        let gdsf = policy_quality(PolicyKind::Gdsf, &trace, 0.05);
        assert!(arc.hit_ratio > 0.2);
        assert!(
            (arc.hit_ratio - lru.hit_ratio).abs() < 0.15,
            "ARC and LRU should be comparable: {} vs {}",
            arc.hit_ratio,
            lru.hit_ratio
        );
        assert!(
            gdsf.hit_ratio < arc.hit_ratio,
            "GDSF must trail the other policies ({} vs {})",
            gdsf.hit_ratio,
            arc.hit_ratio
        );
        assert!(arc.replacement_ratio <= 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity fraction")]
    fn policy_quality_validates_fraction() {
        policy_quality(PolicyKind::Lru, &tiny_trace(), 0.0);
    }
}
