//! Result structures produced by the simulation driver.
//!
//! Every number the paper's evaluation section reports has a field here, so
//! the experiment harness (`craid-bench`) can print Table/Figure rows and
//! serialize full runs to JSON for EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

use craid_metrics::concurrency::ConcurrencySummary;

/// Summary of a response-time distribution (one line of Fig. 4 / Fig. 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResponseSummary {
    /// Number of requests measured.
    pub count: u64,
    /// Mean response time in milliseconds.
    pub mean_ms: f64,
    /// Half-width of the 95 % confidence interval of the mean (ms).
    pub ci95_ms: f64,
    /// Median response time (ms).
    pub p50_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// Slowest request (ms).
    pub max_ms: f64,
}

/// Cache-partition behaviour of a CRAID run (Tables 2, 3 and 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CraidStats {
    /// Cache-partition capacity in blocks.
    pub pc_capacity_blocks: u64,
    /// The cache partition's size as a percentage of each disk.
    pub pc_percent_per_disk: f64,
    /// Hit ratio over all block accesses.
    pub hit_ratio: f64,
    /// Hit ratio of read block accesses.
    pub read_hit_ratio: f64,
    /// Hit ratio of write block accesses.
    pub write_hit_ratio: f64,
    /// Evictions per block access.
    pub replacement_ratio: f64,
    /// Evictions per read block access.
    pub read_eviction_ratio: f64,
    /// Evictions per write block access.
    pub write_eviction_ratio: f64,
    /// Evictions whose victim was dirty.
    pub dirty_evictions: u64,
}

/// Fault-recovery measurements of a run with injected disk failures: the
/// degraded-mode and rebuild traffic that RAID reliability evaluations
/// report (all zero when no `DiskFailure` event was scheduled).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// `DiskFailure` events applied.
    pub disk_failures: u64,
    /// `DiskRepair` events applied (hot spare installed, rebuild started).
    pub disk_repairs: u64,
    /// Planned read I/Os that targeted a failed (or still-rebuilding) disk
    /// and were served by reconstruction instead. A client request can
    /// contribute more than one when its plan touches the lost disk in
    /// several non-contiguous ranges.
    pub degraded_reads: u64,
    /// Reconstruction I/Os fanned out to surviving parity-group members on
    /// behalf of degraded reads.
    pub reconstruction_ios: u64,
    /// Blocks read from surviving members for degraded reads.
    pub reconstruction_blocks: u64,
    /// Writes aimed at a failed disk that were absorbed by parity instead
    /// of hitting the (dead) device.
    pub parity_absorbed_writes: u64,
    /// Blocks read from surviving members by the background rebuild.
    pub rebuild_read_blocks: u64,
    /// Blocks reconstructed onto hot spares by the background rebuild.
    pub rebuild_write_blocks: u64,
    /// Rebuilds that ran to completion during the run.
    pub rebuilds_completed: u64,
    /// Total simulated seconds spent rebuilding, summed over completed
    /// rebuilds — divide by `rebuilds_completed` for an MTTR-style figure.
    pub rebuild_secs: f64,
}

impl FaultStats {
    /// True if any failure was injected during the run.
    pub fn any_faults(&self) -> bool {
        self.disk_failures > 0
    }

    /// Mean time to repair across completed rebuilds, in simulated seconds
    /// (0 when no rebuild completed).
    pub fn mttr_secs(&self) -> f64 {
        if self.rebuilds_completed == 0 {
            0.0
        } else {
            self.rebuild_secs / self.rebuilds_completed as f64
        }
    }
}

/// Online-upgrade measurements of a run with paced expansion migrations:
/// the redistribution-time vs. service-time trade-off the paper's online
/// claim is about (all zero when every expansion was instant).
///
/// Two cost lines are kept apart: the `migrations_*`/`migrated_*` fields
/// cover the *expansion migration* proper (CRAID's cache-partition
/// redistribution — the paper's accounting — or, for the conventional
/// RAID-5 baseline, its whole restripe), while the `archive_*` fields cover
/// the **paced archive restripe** a `CRAID-5`/`CRAID-5ssd` upgrade
/// additionally pays to reshape its ideal RAID-5 archive onto the grown
/// disk set — a cost earlier versions modeled as free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationStats {
    /// Paced migration tasks enqueued by `Expand` events.
    pub migrations_started: u64,
    /// Paced migration tasks that drained during the run.
    pub migrations_completed: u64,
    /// Blocks the background engine moved to their post-upgrade home.
    pub migrated_blocks: u64,
    /// Pending moves superseded by client traffic before the engine reached
    /// them (a write landed at the new home, or a read re-admitted the
    /// block).
    pub superseded_blocks: u64,
    /// Blocks still awaiting migration when the run ended.
    pub pending_blocks: u64,
    /// Dirty blocks the migration (or the evictions it displaced) wrote
    /// back to the archive.
    pub writeback_blocks: u64,
    /// Total simulated seconds the array spent with a migration in flight —
    /// the *upgrade window* during which clients were served degraded-but-
    /// correct. Summed over completed migrations.
    pub migration_secs: f64,
    /// Paced archive-restripe tasks enqueued by `Expand` events (ideal
    /// RAID-5 archives of the `CRAID-5`/`CRAID-5ssd` strategies only).
    pub archive_restripes_started: u64,
    /// Paced archive-restripe tasks that drained during the run.
    pub archive_restripes_completed: u64,
    /// Blocks the paced archive restripe moved to their reshaped location.
    pub archive_migrated_blocks: u64,
    /// Archive moves superseded by client write-backs before the restripe
    /// cursor reached them.
    pub archive_superseded_blocks: u64,
    /// Archive moves still pending when the run ended.
    pub archive_pending_blocks: u64,
    /// Total simulated seconds archive restripes were in flight, summed
    /// over completed restripes.
    pub archive_restripe_secs: f64,
    /// The block-issue order the paced migration *actually* ran with.
    /// Baseline arrays have no heat signal, so a configured `hot-first`
    /// silently degrades to `sequential`; this field records the effective
    /// order so ordering comparisons cannot mistake a no-op knob for a null
    /// result. `None` until a paced migration or restripe starts.
    pub effective_priority: Option<crate::background::BackgroundPriority>,
}

impl MigrationStats {
    /// True if any paced migration ran during the run.
    pub fn any_migrations(&self) -> bool {
        self.migrations_started > 0
    }

    /// True if any paced archive restripe ran during the run.
    pub fn any_archive_restripes(&self) -> bool {
        self.archive_restripes_started > 0
    }

    /// Mean archive-restripe window across completed restripes, in
    /// simulated seconds (0 when none completed).
    pub fn mean_archive_window_secs(&self) -> f64 {
        if self.archive_restripes_completed == 0 {
            0.0
        } else {
            self.archive_restripe_secs / self.archive_restripes_completed as f64
        }
    }

    /// Mean upgrade window across completed migrations, in simulated
    /// seconds (0 when none completed).
    pub fn mean_window_secs(&self) -> f64 {
        if self.migrations_completed == 0 {
            0.0
        } else {
            self.migration_secs / self.migrations_completed as f64
        }
    }
}

/// What the QoS control subsystem did during a run: the maintenance
/// throttle's trajectory and how much of the run violated the configured
/// SLO (all zero, with `enabled = false`, when the array had no `[qos]`
/// spec — the no-QoS path never runs the controller).
///
/// Produced by [`QosController::finish`](crate::qos::QosController::finish)
/// and carried on every [`SimulationReport`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QosStats {
    /// True when a QoS controller steered this run.
    pub enabled: bool,
    /// Control decisions taken (one per engine pump).
    pub decisions: u64,
    /// Decisions that actually changed the throttle.
    pub throttle_changes: u64,
    /// Throttle trajectory samples: `(simulated seconds, scale)`, recorded
    /// on notable changes (backoffs, floor/ceiling transitions) and on
    /// every ≥ 0.05 drift of the additive recovery ramp.
    pub throttle_timeline: Vec<(f64, f64)>,
    /// Timeline samples dropped beyond the storage cap (0 in practice; a
    /// nonzero value means the timeline above is a truncated prefix).
    pub timeline_dropped: u64,
    /// Simulated seconds the throttle sat at the maintenance floor.
    pub time_at_floor_secs: f64,
    /// Simulated seconds the throttle sat at the ceiling (full configured
    /// maintenance rate).
    pub time_at_ceiling_secs: f64,
    /// Simulated seconds during which the sliding-window observation
    /// violated the SLO.
    pub slo_violation_secs: f64,
    /// Blocks of background maintenance I/O issued while the controller
    /// watched.
    pub maintenance_blocks: u64,
    /// `maintenance_blocks` over the controlled window — the maintenance
    /// pace the array *actually* sustained under throttling, in blocks per
    /// simulated second.
    pub effective_maintenance_rate: f64,
    /// The throttle scale at the end of the measurement window.
    pub final_scale: f64,
}

impl QosStats {
    /// True when any control decision changed the throttle.
    pub fn any_throttling(&self) -> bool {
        self.enabled && self.throttle_changes > 0
    }
}

/// Load-balance measurements (Fig. 7 / Table 6).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadBalanceSummary {
    /// CDF points of the per-second coefficient of variation of per-disk
    /// load: `(cv, fraction_of_seconds)`.
    pub cv_cdf: Vec<(f64, f64)>,
    /// Mean per-second cv.
    pub mean_cv: f64,
    /// 95th percentile of the per-second cv.
    pub p95_cv: f64,
    /// cv of the whole-run per-device byte totals.
    pub overall_cv: f64,
}

/// Everything measured while replaying one trace against one array.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Strategy label (e.g. `"CRAID-5"`).
    pub strategy: String,
    /// Workload name (e.g. `"wdev"`).
    pub workload: String,
    /// Number of client requests replayed.
    pub requests: u64,
    /// Response-time summary of read requests.
    pub read: ResponseSummary,
    /// Response-time summary of write requests.
    pub write: ResponseSummary,
    /// Per-second sequential-access percentage CDF (Fig. 5).
    pub sequentiality_cdf: Vec<(f64, f64)>,
    /// Fraction of device accesses that were physically sequential.
    pub sequential_fraction: f64,
    /// Load-balance measurements (Fig. 7 / Table 6).
    pub load_balance: LoadBalanceSummary,
    /// Device I/O-queue depth summary (Table 5 "Ioq").
    pub ioq: ConcurrencySummary,
    /// Concurrently-active device count summary (Table 5 "Cdev").
    pub cdev: ConcurrencySummary,
    /// Cache-partition statistics (None for the baselines).
    pub craid: Option<CraidStats>,
    /// Degraded-mode and rebuild measurements (all zero without injected
    /// disk failures).
    pub fault: FaultStats,
    /// Online-upgrade migration measurements (all zero without paced
    /// expansions).
    pub migration: MigrationStats,
    /// QoS throttling measurements (all zero, `enabled = false`, when the
    /// array had no `[qos]` spec).
    pub qos: QosStats,
    /// Simulated seconds the engine kept pumping background work *after*
    /// the last trace record (the end-of-trace drain): rebuilds and
    /// migrations still in flight when the workload ends run to completion
    /// outside the measurement window instead of freezing forever, so MTTR
    /// and upgrade windows stay finite. Zero when everything drained during
    /// the replay.
    pub background_drain_secs: f64,
    /// Total bytes moved per device over the run.
    pub device_bytes: Vec<u64>,
    /// Observability snapshot (span/event tallies plus the unified metrics
    /// registry), present only on traced runs. Untraced reports omit the
    /// key entirely, keeping their JSON byte-identical to pre-tracing
    /// builds.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub obs: Option<craid_obs::ObsSnapshot>,
}

impl SimulationReport {
    /// Mean read response time in milliseconds (0 if no reads were issued).
    pub fn read_mean_ms(&self) -> f64 {
        self.read.mean_ms
    }

    /// Mean write response time in milliseconds (0 if no writes were issued).
    pub fn write_mean_ms(&self) -> f64 {
        self.write.mean_ms
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics only if serde serialization fails, which cannot happen for
    /// this plain-data structure.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("SimulationReport always serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let report = SimulationReport {
            strategy: "CRAID-5".into(),
            workload: "wdev".into(),
            requests: 100,
            read: ResponseSummary {
                count: 60,
                mean_ms: 4.2,
                ci95_ms: 0.3,
                p50_ms: 3.9,
                p95_ms: 8.1,
                p99_ms: 12.0,
                max_ms: 30.0,
            },
            craid: Some(CraidStats {
                pc_capacity_blocks: 1024,
                hit_ratio: 0.91,
                ..CraidStats::default()
            }),
            fault: FaultStats {
                disk_failures: 1,
                disk_repairs: 1,
                degraded_reads: 12,
                rebuilds_completed: 1,
                rebuild_secs: 42.0,
                ..FaultStats::default()
            },
            migration: MigrationStats {
                migrations_started: 2,
                migrations_completed: 2,
                migrated_blocks: 640,
                superseded_blocks: 3,
                writeback_blocks: 17,
                migration_secs: 12.0,
                archive_restripes_started: 1,
                archive_restripes_completed: 1,
                archive_migrated_blocks: 9_000,
                archive_superseded_blocks: 12,
                archive_restripe_secs: 30.0,
                effective_priority: Some(crate::background::BackgroundPriority::HotFirst),
                ..MigrationStats::default()
            },
            qos: QosStats {
                enabled: true,
                decisions: 40,
                throttle_changes: 6,
                throttle_timeline: vec![(1.0, 0.5), (3.0, 0.25), (9.0, 1.0)],
                timeline_dropped: 0,
                time_at_floor_secs: 2.0,
                time_at_ceiling_secs: 5.0,
                slo_violation_secs: 3.5,
                maintenance_blocks: 4_000,
                effective_maintenance_rate: 400.0,
                final_scale: 1.0,
            },
            background_drain_secs: 4.5,
            ..SimulationReport::default()
        };
        let json = report.to_json();
        assert!(json.contains("CRAID-5"));
        let back: SimulationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.read_mean_ms(), 4.2);
        assert_eq!(back.write_mean_ms(), 0.0);
        assert!(back.fault.any_faults());
        assert_eq!(back.fault.mttr_secs(), 42.0);
        assert!(back.migration.any_migrations());
        assert_eq!(back.migration.mean_window_secs(), 6.0);
        assert!(back.migration.any_archive_restripes());
        assert_eq!(back.migration.mean_archive_window_secs(), 30.0);
        assert_eq!(
            back.migration.effective_priority,
            Some(crate::background::BackgroundPriority::HotFirst)
        );
        assert_eq!(back.background_drain_secs, 4.5);
        assert!(back.qos.any_throttling());
        assert_eq!(back.qos.throttle_timeline.len(), 3);
        assert_eq!(back.qos.effective_maintenance_rate, 400.0);
    }

    #[test]
    fn qos_stats_handle_empty_runs() {
        let stats = QosStats::default();
        assert!(!stats.any_throttling());
        assert!(!stats.enabled);
        assert_eq!(stats.slo_violation_secs, 0.0);
    }

    #[test]
    fn fault_stats_ratios_handle_empty_runs() {
        let stats = FaultStats::default();
        assert!(!stats.any_faults());
        assert_eq!(stats.mttr_secs(), 0.0);
    }

    #[test]
    fn migration_stats_handle_empty_runs() {
        let stats = MigrationStats::default();
        assert!(!stats.any_migrations());
        assert_eq!(stats.mean_window_secs(), 0.0);
    }
}
