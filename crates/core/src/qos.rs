//! SLO-driven adaptive throttling of background maintenance (QoS control).
//!
//! CRAID's whole premise is that reorganization happens *online* — which
//! only holds if maintenance I/O yields to client traffic when the array is
//! busy. The background engine paces rebuilds, migrations and archive
//! restripes at their *configured* rates; this module closes the loop by
//! making the realised pace a function of observed client service quality:
//!
//! * an [`SloSpec`] declares, per array, what "good service" means — a
//!   target client latency at a percentile and/or a maximum device queue
//!   depth — plus a maintenance-rate **floor** the throttle never drops
//!   below and the controller gains;
//! * a [`QosController`] watches client request completions through a
//!   sliding window (reusing [`craid_metrics::Quantiles`] and
//!   [`craid_metrics::StreamingSummary`]) and runs an **AIMD** loop: while
//!   the SLO is violated the maintenance throttle decreases
//!   multiplicatively (fast backoff), while it is met the throttle
//!   recovers additively (slow probe), always clamped to
//!   `[floor, 1.0]`;
//! * the simulation driver applies each retarget to the array's
//!   [`BackgroundEngine`](crate::background::BackgroundEngine), which
//!   scales both its per-poll batch budget and every task's pacing clock
//!   (see [`BackgroundEngine::set_throttle`](crate::background::BackgroundEngine::set_throttle));
//! * everything the controller did is reported as [`QosStats`] on the
//!   [`SimulationReport`](crate::report::SimulationReport): the throttle
//!   timeline, time spent at the floor/ceiling, SLO-violation seconds and
//!   the effective maintenance rate.
//!
//! When no `[qos]` table is configured nothing here runs and the engine
//! keeps its static cap — the no-QoS path is bit-for-bit identical to the
//! pre-QoS behaviour.
//!
//! ```
//! use craid::qos::SloSpec;
//!
//! // A 25 ms p95 read/write latency target with a 10 % maintenance floor.
//! let spec = SloSpec::latency_target(25.0).with_floor(0.1);
//! assert!(spec.validate().is_ok());
//! let toml = "target_latency_ms = 25.0\nfloor = 0.1";
//! # let _ = toml;
//! ```

use std::collections::VecDeque;

use craid_metrics::{Quantiles, StreamingSummary};
use craid_simkit::SimTime;
use serde::{Deserialize, Serialize, Value};

use crate::array::RequestReport;
use crate::devices::DeviceIoEvent;
use crate::error::CraidError;
use crate::report::QosStats;

/// Throttle-timeline samples kept in [`QosStats`]. Long runs with a busy
/// controller drop interior samples beyond the cap and report how many via
/// [`QosStats::timeline_dropped`] — no silent truncation.
const TIMELINE_CAP: usize = 4_096;

/// Minimum latency samples in the window before a percentile verdict is
/// trusted (a near-empty window after an idle spell must not trigger a
/// backoff off one unlucky request).
const MIN_WINDOW_SAMPLES: usize = 8;

/// The service-level objective one array's maintenance throttling steers
/// by, plus the controller's gains. At least one target
/// ([`target_latency_ms`](SloSpec::target_latency_ms) or
/// [`max_queue_depth`](SloSpec::max_queue_depth)) must be set.
///
/// In scenario TOML the spec is the `[array.qos]` table; every field has a
/// default, so the smallest useful spec is a single line:
///
/// ```toml
/// [array.qos]
/// target_latency_ms = 25.0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Target client latency in milliseconds at
    /// [`percentile`](SloSpec::percentile); the SLO is violated while the
    /// sliding window's observed percentile exceeds it. `None` disables the
    /// latency target.
    pub target_latency_ms: Option<f64>,
    /// The percentile the latency target applies to (default 0.95).
    pub percentile: f64,
    /// Maximum acceptable mean device queue depth observed across the
    /// window's client I/O completions. `None` disables the depth target.
    pub max_queue_depth: Option<f64>,
    /// Maintenance-rate floor as a fraction of each task's configured rate,
    /// in `(0, 1]` (default 0.1): throttling never paces a rebuild or
    /// migration below `floor × configured_rate`, so maintenance always
    /// finishes.
    pub floor: f64,
    /// Length of the sliding observation window in simulated seconds
    /// (default 5.0). Also sets the multiplicative-backoff hold-off: at most
    /// one decrease per half window, so a single burst is not punished
    /// repeatedly before its effect leaves the window.
    pub window_secs: f64,
    /// Additive-increase gain: throttle recovered per simulated second while
    /// the SLO is met (default 0.05 — full rate regained in 20 s of good
    /// service from a full backoff).
    pub increase_per_sec: f64,
    /// Multiplicative-decrease factor applied on a violation (default 0.5).
    pub decrease_factor: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            target_latency_ms: None,
            percentile: 0.95,
            max_queue_depth: None,
            floor: 0.1,
            window_secs: 5.0,
            increase_per_sec: 0.05,
            decrease_factor: 0.5,
        }
    }
}

impl SloSpec {
    /// A spec with a latency target at the default percentile and defaults
    /// everywhere else.
    pub fn latency_target(target_ms: f64) -> Self {
        SloSpec {
            target_latency_ms: Some(target_ms),
            ..SloSpec::default()
        }
    }

    /// A spec with a queue-depth target and defaults everywhere else.
    pub fn queue_depth_target(depth: f64) -> Self {
        SloSpec {
            max_queue_depth: Some(depth),
            ..SloSpec::default()
        }
    }

    /// Sets the maintenance-rate floor (fraction of the configured rates).
    #[must_use]
    pub fn with_floor(mut self, floor: f64) -> Self {
        self.floor = floor;
        self
    }

    /// Sets the sliding observation window, in simulated seconds.
    #[must_use]
    pub fn with_window(mut self, secs: f64) -> Self {
        self.window_secs = secs;
        self
    }

    /// Sets the controller gains (additive increase per second,
    /// multiplicative decrease factor).
    #[must_use]
    pub fn with_gains(mut self, increase_per_sec: f64, decrease_factor: f64) -> Self {
        self.increase_per_sec = increase_per_sec;
        self.decrease_factor = decrease_factor;
        self
    }

    /// Validates the spec by running the static analyser's QoS rules
    /// ([`crate::analyze::graph::check_slo`]) and returning the first
    /// finding, with paths anchored at `array.qos` — exactly what the
    /// analyser reports for a scenario's `[array.qos]` table.
    ///
    /// # Errors
    ///
    /// Returns [`CraidError::InvalidConfig`] carrying the first violated
    /// constraint's [`crate::analyze::Diagnostic`].
    pub fn validate(&self) -> Result<(), CraidError> {
        match crate::analyze::graph::check_slo(self, "array.qos")
            .into_iter()
            .find(|d| d.is_error())
        {
            Some(d) => Err(CraidError::InvalidConfig(d)),
            None => Ok(()),
        }
    }
}

// The spec serializes as a flat map so scenario files can write a plain
// `[array.qos]` table; every field has a default on the way back in, so a
// one-line table is valid.
impl Serialize for SloSpec {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            (
                "target_latency_ms".to_string(),
                self.target_latency_ms.serialize(),
            ),
            ("percentile".to_string(), self.percentile.serialize()),
            (
                "max_queue_depth".to_string(),
                self.max_queue_depth.serialize(),
            ),
            ("floor".to_string(), self.floor.serialize()),
            ("window_secs".to_string(), self.window_secs.serialize()),
            (
                "increase_per_sec".to_string(),
                self.increase_per_sec.serialize(),
            ),
            (
                "decrease_factor".to_string(),
                self.decrease_factor.serialize(),
            ),
        ])
    }
}

impl Deserialize for SloSpec {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        if value.as_map().is_none() {
            return Err(serde::Error::expected("a [qos] table", value));
        }
        let defaults = SloSpec::default();
        Ok(SloSpec {
            target_latency_ms: serde::field(value, "target_latency_ms")?,
            percentile: serde::field::<Option<f64>>(value, "percentile")?
                .unwrap_or(defaults.percentile),
            max_queue_depth: serde::field(value, "max_queue_depth")?,
            floor: serde::field::<Option<f64>>(value, "floor")?.unwrap_or(defaults.floor),
            window_secs: serde::field::<Option<f64>>(value, "window_secs")?
                .unwrap_or(defaults.window_secs),
            increase_per_sec: serde::field::<Option<f64>>(value, "increase_per_sec")?
                .unwrap_or(defaults.increase_per_sec),
            decrease_factor: serde::field::<Option<f64>>(value, "decrease_factor")?
                .unwrap_or(defaults.decrease_factor),
        })
    }
}

/// One throttle retarget the controller decided on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retarget {
    /// The new throttle scale in `[floor, 1.0]`.
    pub scale: f64,
    /// True for *notable* changes — multiplicative backoffs and
    /// floor/ceiling transitions — which is what the
    /// [`Observer::on_throttle`](crate::observer::Observer::on_throttle)
    /// hook fires for (the smooth additive recovery would spam it).
    pub notable: bool,
}

/// The sliding-window observer + AIMD controller steering one array's
/// background-maintenance throttle toward its [`SloSpec`].
///
/// The simulation driver owns one per run (when the array's configuration
/// carries a `qos` spec), feeds it every client request completion via
/// [`QosController::observe`], asks for a retarget each pump via
/// [`QosController::evaluate`], and folds the finished [`QosStats`] into
/// the report via [`QosController::finish`].
#[derive(Debug, Clone)]
pub struct QosController {
    spec: SloSpec,
    /// Client request completions in the window: `(completion time,
    /// worst-subrange latency ms)`.
    latency: VecDeque<(SimTime, f64)>,
    /// Device queue depths observed by client I/O in the window.
    depth: VecDeque<(SimTime, f64)>,
    scale: f64,
    last_eval: Option<SimTime>,
    last_decrease: Option<SimTime>,
    first_seen: Option<SimTime>,
    last_timeline_scale: f64,
    stats: QosStats,
}

impl QosController {
    /// A controller at full throttle (scale 1.0) for the given spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid — validate configurations with
    /// [`SloSpec::validate`] (the array config does) before building one.
    pub fn new(spec: SloSpec) -> Self {
        spec.validate()
            .expect("QoS spec was validated by the config");
        QosController {
            spec,
            latency: VecDeque::new(),
            depth: VecDeque::new(),
            scale: 1.0,
            last_eval: None,
            last_decrease: None,
            first_seen: None,
            last_timeline_scale: 1.0,
            stats: QosStats {
                enabled: true,
                ..QosStats::default()
            },
        }
    }

    /// The spec this controller steers by.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// The current throttle scale in `[floor, 1.0]`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Feeds one client request completion into the sliding window: the
    /// per-request worst latency plus every device queue depth the
    /// request's *client* I/O observed. `client_reports` must exclude
    /// background-maintenance batches — the controller steers by client
    /// service quality, and letting it ingest the engine's own deeply
    /// queued maintenance I/O would couple it to the very signal it
    /// throttles (a floor-paced rebuild would read as a permanent
    /// queue-depth violation on an otherwise idle array).
    pub fn observe(&mut self, now: SimTime, worst_ms: f64, client_reports: &[RequestReport]) {
        self.first_seen.get_or_insert(now);
        self.latency.push_back((now, worst_ms));
        for report in client_reports {
            for ev in &report.events {
                self.depth.push_back((ev.submitted, ev.queue_depth as f64));
            }
        }
        self.prune(now);
    }

    /// Counts maintenance blocks the background engine issued (for the
    /// effective-rate line of [`QosStats`]).
    pub fn note_maintenance(&mut self, events: &[DeviceIoEvent]) {
        self.stats.maintenance_blocks += events.iter().map(|e| e.blocks).sum::<u64>();
    }

    fn prune(&mut self, now: SimTime) {
        let horizon = self.spec.window_secs;
        while let Some(&(t, _)) = self.latency.front() {
            if now.saturating_since(t).as_secs() > horizon {
                self.latency.pop_front();
            } else {
                break;
            }
        }
        while let Some(&(t, _)) = self.depth.front() {
            if now.saturating_since(t).as_secs() > horizon {
                self.depth.pop_front();
            } else {
                break;
            }
        }
    }

    /// True while the window's observations violate the SLO.
    fn violated(&mut self) -> bool {
        if let Some(target) = self.spec.target_latency_ms {
            if self.latency.len() >= MIN_WINDOW_SAMPLES {
                let mut q = Quantiles::with_capacity(self.latency.len());
                for &(_, ms) in &self.latency {
                    q.record(ms);
                }
                if q.quantile(self.spec.percentile).unwrap_or(0.0) > target {
                    return true;
                }
            }
        }
        if let Some(max_depth) = self.spec.max_queue_depth {
            if self.depth.len() >= MIN_WINDOW_SAMPLES {
                let mut s = StreamingSummary::new();
                for &(_, d) in &self.depth {
                    s.record(d);
                }
                if s.mean() > max_depth {
                    return true;
                }
            }
        }
        false
    }

    /// One control decision at `now` (the driver calls this once per pump,
    /// ahead of the background engine): accounts the elapsed interval at
    /// the previous throttle, then applies AIMD — multiplicative decrease
    /// while the SLO is violated (at most one backoff per half window),
    /// additive recovery while it is met. Returns the retarget when the
    /// scale changed, `None` when the throttle is already where it should
    /// be.
    pub fn evaluate(&mut self, now: SimTime) -> Option<Retarget> {
        self.first_seen.get_or_insert(now);
        let dt = self
            .last_eval
            .map(|t| now.saturating_since(t).as_secs())
            .unwrap_or(0.0);
        self.last_eval = Some(now);
        self.prune(now);
        self.stats.decisions += 1;
        // The elapsed interval ran at the *previous* scale.
        if self.scale <= self.spec.floor {
            self.stats.time_at_floor_secs += dt;
        } else if self.scale >= 1.0 {
            self.stats.time_at_ceiling_secs += dt;
        }
        let violated = self.violated();
        if violated {
            self.stats.slo_violation_secs += dt;
        }
        let old = self.scale;
        if violated {
            // One multiplicative backoff per half window: the burst that
            // triggered it needs time to leave the window before it can
            // justify another cut.
            let held = self
                .last_decrease
                .is_some_and(|t| now.saturating_since(t).as_secs() < self.spec.window_secs / 2.0);
            if !held && self.scale > self.spec.floor {
                self.scale = (self.scale * self.spec.decrease_factor).max(self.spec.floor);
                self.last_decrease = Some(now);
            }
        } else {
            self.scale = (self.scale + self.spec.increase_per_sec * dt).min(1.0);
        }
        if self.scale == old {
            return None;
        }
        self.stats.throttle_changes += 1;
        // Notable: every backoff, plus the moments the throttle reaches the
        // floor or regains the ceiling; the smooth additive ramp in between
        // is sampled into the timeline but does not fire the observer hook.
        let notable = self.scale < old || self.scale >= 1.0 || self.scale <= self.spec.floor;
        if notable || (self.scale - self.last_timeline_scale).abs() >= 0.05 {
            if self.stats.throttle_timeline.len() < TIMELINE_CAP {
                self.stats
                    .throttle_timeline
                    .push((now.as_secs(), self.scale));
            } else {
                self.stats.timeline_dropped += 1;
            }
            self.last_timeline_scale = self.scale;
        }
        craid_obs::emit(|_| {
            craid_obs::TraceEvent::instant(craid_obs::SpanCategory::Throttle, "retarget", now)
                .arg("scale", self.scale)
                .arg("notable", notable)
        });
        craid_obs::counter_add("qos.retargets", 1);
        craid_obs::gauge_set("qos.scale", self.scale);
        Some(Retarget {
            scale: self.scale,
            notable,
        })
    }

    /// Closes the controller at the end of the measurement window and
    /// returns the accumulated [`QosStats`]. `end` is the last measured
    /// instant (the end-of-trace drain runs outside the controller's
    /// watch, like every other post-trace activity).
    pub fn finish(mut self, end: SimTime) -> QosStats {
        // Account the tail interval since the last decision at the final
        // scale.
        let tail = self
            .last_eval
            .map(|t| end.saturating_since(t).as_secs())
            .unwrap_or(0.0);
        if self.scale <= self.spec.floor {
            self.stats.time_at_floor_secs += tail;
        } else if self.scale >= 1.0 {
            self.stats.time_at_ceiling_secs += tail;
        }
        let controlled = self
            .first_seen
            .map(|t| end.saturating_since(t).as_secs())
            .unwrap_or(0.0);
        if controlled > 0.0 {
            self.stats.effective_maintenance_rate =
                self.stats.maintenance_blocks as f64 / controlled;
        }
        self.stats.final_scale = self.scale;
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observe_latency(c: &mut QosController, now: SimTime, worst_ms: f64) {
        c.observe(now, worst_ms, &[]);
    }

    #[test]
    fn spec_defaults_and_builders_compose() {
        let spec = SloSpec::latency_target(25.0)
            .with_floor(0.2)
            .with_window(3.0)
            .with_gains(0.1, 0.25);
        assert_eq!(spec.target_latency_ms, Some(25.0));
        assert_eq!(spec.percentile, 0.95);
        assert_eq!(spec.floor, 0.2);
        assert_eq!(spec.window_secs, 3.0);
        assert_eq!(spec.increase_per_sec, 0.1);
        assert_eq!(spec.decrease_factor, 0.25);
        assert!(spec.validate().is_ok());
        assert!(SloSpec::queue_depth_target(4.0).validate().is_ok());
    }

    #[test]
    fn spec_validation_catches_inconsistencies() {
        assert!(SloSpec::default().validate().is_err(), "no target set");
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(SloSpec::latency_target(bad).validate().is_err());
            assert!(SloSpec::queue_depth_target(bad).validate().is_err());
            assert!(SloSpec::latency_target(10.0)
                .with_window(bad)
                .validate()
                .is_err());
            assert!(SloSpec::latency_target(10.0)
                .with_gains(bad, 0.5)
                .validate()
                .is_err());
        }
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(SloSpec::latency_target(10.0)
                .with_floor(bad)
                .validate()
                .is_err());
        }
        for bad in [0.0, 1.0, 2.0, f64::NAN] {
            assert!(SloSpec::latency_target(10.0)
                .with_gains(0.05, bad)
                .validate()
                .is_err());
        }
        let mut spec = SloSpec::latency_target(10.0);
        spec.percentile = 1.5;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn spec_round_trips_and_defaults_missing_fields() {
        let spec = SloSpec::latency_target(40.0).with_floor(0.25);
        let back = SloSpec::deserialize(&spec.serialize()).unwrap();
        assert_eq!(back, spec);
        // A one-entry map gets defaults everywhere else.
        let sparse = Value::Map(vec![("target_latency_ms".to_string(), Value::Float(12.0))]);
        let parsed = SloSpec::deserialize(&sparse).unwrap();
        assert_eq!(parsed.target_latency_ms, Some(12.0));
        assert_eq!(parsed.floor, SloSpec::default().floor);
        assert_eq!(parsed.window_secs, SloSpec::default().window_secs);
        assert!(SloSpec::deserialize(&Value::Int(3)).is_err());
    }

    #[test]
    fn violations_back_off_multiplicatively_to_the_floor() {
        let spec = SloSpec::latency_target(10.0)
            .with_floor(0.125)
            .with_window(2.0);
        let mut c = QosController::new(spec);
        // Fill the window with slow completions.
        for i in 0..MIN_WINDOW_SAMPLES {
            observe_latency(&mut c, SimTime::from_millis(i as f64), 100.0);
        }
        let r = c.evaluate(SimTime::from_secs(0.1)).expect("a backoff");
        assert_eq!(r.scale, 0.5);
        assert!(r.notable);
        // Held off within half a window...
        assert!(c.evaluate(SimTime::from_secs(0.2)).is_none());
        // ...then, with the window still violated at each decision, the
        // next backoffs walk down to the floor and stop.
        for (t, expect) in [(1.2, 0.25), (2.3, 0.125)] {
            for i in 0..MIN_WINDOW_SAMPLES {
                observe_latency(
                    &mut c,
                    SimTime::from_secs(t - 0.001 * (MIN_WINDOW_SAMPLES - i) as f64),
                    100.0,
                );
            }
            assert_eq!(c.evaluate(SimTime::from_secs(t)).unwrap().scale, expect);
        }
        for i in 0..MIN_WINDOW_SAMPLES {
            observe_latency(
                &mut c,
                SimTime::from_secs(3.4 - 0.001 * (MIN_WINDOW_SAMPLES - i) as f64),
                100.0,
            );
        }
        assert!(
            c.evaluate(SimTime::from_secs(3.4)).is_none(),
            "at the floor"
        );
        assert!(c.scale() >= 0.125);
        let stats = c.finish(SimTime::from_secs(4.0));
        assert!(stats.enabled);
        assert!(stats.slo_violation_secs > 0.0);
        assert!(stats.time_at_floor_secs > 0.0);
        assert_eq!(stats.final_scale, 0.125);
        assert!(!stats.throttle_timeline.is_empty());
    }

    #[test]
    fn good_service_recovers_additively_to_the_ceiling() {
        let spec = SloSpec::latency_target(10.0)
            .with_window(2.0)
            .with_gains(0.25, 0.5);
        let mut c = QosController::new(spec);
        for i in 0..MIN_WINDOW_SAMPLES {
            observe_latency(&mut c, SimTime::from_millis(i as f64), 100.0);
        }
        c.evaluate(SimTime::from_secs(0.1)).expect("backoff");
        // The slow samples age out of the 2 s window; recovery is additive
        // at 0.25/s, so full rate returns after ~2 s of good service.
        let mut t = 3.0;
        let mut regained = false;
        while t < 10.0 {
            observe_latency(&mut c, SimTime::from_secs(t), 1.0);
            if let Some(r) = c.evaluate(SimTime::from_secs(t)) {
                assert!(r.scale > 0.0);
                if r.scale >= 1.0 {
                    assert!(r.notable, "regaining the ceiling is notable");
                    regained = true;
                    break;
                }
            }
            t += 0.5;
        }
        assert!(regained, "the throttle recovered to full rate");
        let stats = c.finish(SimTime::from_secs(t + 5.0));
        assert!(stats.time_at_ceiling_secs > 0.0);
        assert_eq!(stats.final_scale, 1.0);
    }

    #[test]
    fn sparse_windows_do_not_trigger_backoffs() {
        let mut c = QosController::new(SloSpec::latency_target(1.0));
        // A single terrible sample is below the evidence bar.
        observe_latency(&mut c, SimTime::from_secs(1.0), 1_000.0);
        assert!(c.evaluate(SimTime::from_secs(1.0)).is_none());
        assert_eq!(c.scale(), 1.0);
    }

    #[test]
    fn queue_depth_target_watches_device_events() {
        use crate::devices::DeviceIoEvent;
        use craid_diskmodel::IoKind;
        use craid_raid::IoPurpose;
        let mut c = QosController::new(SloSpec::queue_depth_target(2.0).with_window(10.0));
        let mut reports = Vec::new();
        for depth in 0..(MIN_WINDOW_SAMPLES as u64) {
            reports.push(RequestReport {
                events: vec![DeviceIoEvent {
                    device: 0,
                    start_block: 0,
                    blocks: 1,
                    kind: IoKind::Read,
                    purpose: IoPurpose::Data,
                    submitted: SimTime::from_secs(1.0),
                    finished: SimTime::from_secs(1.0),
                    queue_depth: 10 + depth,
                    internal_cache_hit: false,
                }],
                ..RequestReport::default()
            });
        }
        c.observe(SimTime::from_secs(1.0), 0.1, &reports);
        let r = c
            .evaluate(SimTime::from_secs(1.5))
            .expect("deep queues back off");
        assert!(r.scale < 1.0);
    }

    #[test]
    fn maintenance_rate_is_reported_over_the_controlled_window() {
        use craid_diskmodel::IoKind;
        use craid_raid::IoPurpose;
        let mut c = QosController::new(SloSpec::latency_target(10.0));
        observe_latency(&mut c, SimTime::from_secs(0.0), 1.0);
        c.note_maintenance(&[DeviceIoEvent {
            device: 1,
            start_block: 0,
            blocks: 500,
            kind: IoKind::Write,
            purpose: IoPurpose::MigrateWrite,
            submitted: SimTime::from_secs(1.0),
            finished: SimTime::from_secs(1.0),
            queue_depth: 0,
            internal_cache_hit: false,
        }]);
        let stats = c.finish(SimTime::from_secs(10.0));
        assert_eq!(stats.maintenance_blocks, 500);
        assert_eq!(stats.effective_maintenance_rate, 50.0);
    }
}
